//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Inclusive size bounds for collection strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub min: usize,
    /// Maximum length (inclusive).
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self { min: *r.start(), max: *r.end() }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
#[derive(Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64 + 1;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

/// Build a vector strategy from an element strategy and a size.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { elem, size: size.into() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_and_ranged_lengths() {
        let mut rng = TestRng::from_seed(31);
        for _ in 0..50 {
            assert_eq!(vec(0u8..4, 5).generate(&mut rng).len(), 5);
            let v = vec(0u8..4, 2..6).generate(&mut rng);
            assert!(v.len() >= 2 && v.len() <= 5);
        }
    }

    #[test]
    fn nested_vectors() {
        let mut rng = TestRng::from_seed(32);
        let v = vec(vec(0u8..3, 4), 2..4).generate(&mut rng);
        assert!(v.len() >= 2 && v.len() < 4);
        assert!(v.iter().all(|inner| inner.len() == 4));
    }
}
