//! The `Strategy` trait and the combinators used by this workspace.

use crate::string::generate_pattern;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of values. Unlike real proptest there is no shrinking: a
/// strategy is just a reproducible sampler.
pub trait Strategy: Clone {
    /// The generated value type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O + Clone,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then build a dependent strategy from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S + Clone,
    {
        FlatMap { inner: self, f }
    }

    /// Rejection-filter: resample until the predicate holds (bounded).
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool + Clone,
    {
        Filter { inner: self, f, reason }
    }
}

/// Always produce a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + Clone,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` combinator.
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2 + Clone,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// `prop_filter` combinator (bounded resampling).
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool + Clone,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter: predicate never satisfied ({})", self.reason);
    }
}

/// A type-erased `prop_oneof!` arm: a reference-counted generator closure.
pub type BoxedArm<T> = Rc<dyn Fn(&mut TestRng) -> T>;

/// Uniform choice among boxed strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    arms: Vec<BoxedArm<T>>,
}

impl<T> Union<T> {
    /// Build from boxed arms; panics on an empty arm list.
    pub fn new(arms: Vec<BoxedArm<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Self { arms: self.arms.clone() }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        (self.arms[i])(rng)
    }
}

/// Erase a strategy into a `prop_oneof!` arm.
pub fn boxed_strategy<S>(s: S) -> BoxedArm<S::Value>
where
    S: Strategy + 'static,
{
    Rc::new(move |rng| s.generate(rng))
}

// ---------------------------------------------------------------------
// Ranges over the primitive numeric types.
// ---------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty range strategy");
                let span = (hi - lo) as u128;
                let draw = (u128::from(rng.next_u64()) % span) as i128;
                (lo + draw) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u128 + 1;
                let draw = (u128::from(rng.next_u64()) % span) as i128;
                (lo + draw) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// ---------------------------------------------------------------------
// String patterns: a `&str` literal is a regex-subset strategy.
// ---------------------------------------------------------------------

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

// ---------------------------------------------------------------------
// Tuples of strategies.
// ---------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($n:ident $idx:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn just_clones() {
        let s = Just(vec![1, 2]);
        let mut rng = TestRng::from_seed(1);
        assert_eq!(s.generate(&mut rng), vec![1, 2]);
    }

    #[test]
    fn filter_resamples() {
        let s = (0u8..10).prop_filter("even", |v| v % 2 == 0);
        let mut rng = TestRng::from_seed(3);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn inclusive_range_hits_upper_bound() {
        let mut rng = TestRng::from_seed(5);
        let mut saw_hi = false;
        for _ in 0..200 {
            let v = (0u8..=1).generate(&mut rng);
            assert!(v <= 1);
            saw_hi |= v == 1;
        }
        assert!(saw_hi);
    }
}
