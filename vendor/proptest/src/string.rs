//! A tiny regex-subset generator backing `&str` strategies.
//!
//! Supported syntax (everything the workspace's patterns use):
//!
//! - literal characters
//! - character classes `[a-z0-9 ]` with ranges and `\t`/`\n`/`\r`/`\\`
//!   escapes
//! - `\PC` — any printable ASCII character (proptest's "any char that is
//!   not a control character" class, restricted to ASCII here)
//! - `\d`, `\w`, `\s` shorthand classes
//! - groups `( ... )`
//! - quantifiers `{n}`, `{m,n}`, `?`, `*`, `+` (`*`/`+` capped at 8)

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Node {
    Lit(char),
    /// Inclusive character ranges.
    Class(Vec<(char, char)>),
    Seq(Vec<Node>),
    Rep(Box<Node>, u32, u32),
}

/// Generate one string matching `pattern`.
pub fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0usize;
    let node = parse_seq(&chars, &mut pos, pattern);
    assert!(pos == chars.len(), "unsupported pattern syntax in {pattern:?} at {pos}");
    let mut out = String::new();
    gen(&node, rng, &mut out);
    out
}

fn parse_seq(chars: &[char], pos: &mut usize, pat: &str) -> Node {
    let mut items = Vec::new();
    while *pos < chars.len() && chars[*pos] != ')' {
        let atom = parse_atom(chars, pos, pat);
        let atom = parse_quantifier(chars, pos, atom, pat);
        items.push(atom);
    }
    Node::Seq(items)
}

fn parse_atom(chars: &[char], pos: &mut usize, pat: &str) -> Node {
    match chars[*pos] {
        '[' => {
            *pos += 1;
            let mut ranges = Vec::new();
            while chars[*pos] != ']' {
                let lo = class_char(chars, pos, pat);
                if chars[*pos] == '-' && chars[*pos + 1] != ']' {
                    *pos += 1;
                    let hi = class_char(chars, pos, pat);
                    ranges.push((lo, hi));
                } else {
                    ranges.push((lo, lo));
                }
            }
            *pos += 1; // ']'
            Node::Class(ranges)
        }
        '(' => {
            *pos += 1;
            let inner = parse_seq(chars, pos, pat);
            assert!(*pos < chars.len() && chars[*pos] == ')', "unclosed group in pattern {pat:?}");
            *pos += 1;
            inner
        }
        '\\' => {
            *pos += 1;
            let c = chars[*pos];
            *pos += 1;
            match c {
                'P' => {
                    // \PC / \pC: printable (non-control) character.
                    assert!(
                        chars.get(*pos) == Some(&'C'),
                        "unsupported escape \\P{:?} in {pat:?}",
                        chars.get(*pos)
                    );
                    *pos += 1;
                    Node::Class(vec![(' ', '~')])
                }
                'd' => Node::Class(vec![('0', '9')]),
                'w' => Node::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                's' => Node::Class(vec![(' ', ' '), ('\t', '\t'), ('\n', '\n')]),
                't' => Node::Lit('\t'),
                'n' => Node::Lit('\n'),
                'r' => Node::Lit('\r'),
                other => Node::Lit(other),
            }
        }
        c => {
            *pos += 1;
            Node::Lit(c)
        }
    }
}

fn class_char(chars: &[char], pos: &mut usize, pat: &str) -> char {
    let c = chars[*pos];
    *pos += 1;
    if c != '\\' {
        return c;
    }
    let e = chars[*pos];
    *pos += 1;
    match e {
        't' => '\t',
        'n' => '\n',
        'r' => '\r',
        other if !other.is_alphanumeric() => other,
        other => panic!("unsupported class escape \\{other} in {pat:?}"),
    }
}

fn parse_quantifier(chars: &[char], pos: &mut usize, atom: Node, pat: &str) -> Node {
    if *pos >= chars.len() {
        return atom;
    }
    match chars[*pos] {
        '?' => {
            *pos += 1;
            Node::Rep(Box::new(atom), 0, 1)
        }
        '*' => {
            *pos += 1;
            Node::Rep(Box::new(atom), 0, 8)
        }
        '+' => {
            *pos += 1;
            Node::Rep(Box::new(atom), 1, 8)
        }
        '{' => {
            *pos += 1;
            let mut lo = 0u32;
            while chars[*pos].is_ascii_digit() {
                lo = lo * 10 + chars[*pos].to_digit(10).unwrap();
                *pos += 1;
            }
            let hi = if chars[*pos] == ',' {
                *pos += 1;
                let mut hi = 0u32;
                while chars[*pos].is_ascii_digit() {
                    hi = hi * 10 + chars[*pos].to_digit(10).unwrap();
                    *pos += 1;
                }
                hi
            } else {
                lo
            };
            assert!(chars[*pos] == '}', "malformed quantifier in {pat:?}");
            *pos += 1;
            Node::Rep(Box::new(atom), lo, hi)
        }
        _ => atom,
    }
}

fn gen(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Lit(c) => out.push(*c),
        Node::Class(ranges) => {
            let total: u64 = ranges.iter().map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1).sum();
            let mut draw = rng.below(total);
            for (lo, hi) in ranges {
                let span = (*hi as u64) - (*lo as u64) + 1;
                if draw < span {
                    out.push(char::from_u32(*lo as u32 + draw as u32).unwrap());
                    return;
                }
                draw -= span;
            }
            unreachable!("class draw out of range");
        }
        Node::Seq(items) => {
            for item in items {
                gen(item, rng, out);
            }
        }
        Node::Rep(inner, lo, hi) => {
            let n = if lo == hi { *lo } else { *lo + rng.below(u64::from(hi - lo + 1)) as u32 };
            for _ in 0..n {
                gen(inner, rng, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(11)
    }

    #[test]
    fn class_with_ranges_and_space() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate_pattern("[a-z ]{1,32}", &mut r);
            assert!(!s.is_empty() && s.len() <= 32);
            assert!(s.chars().all(|c| c == ' ' || c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn digits() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate_pattern("[0-9]{1,18}", &mut r);
            assert!(!s.is_empty() && s.len() <= 18);
            assert!(s.chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn optional_group() {
        let mut r = rng();
        let mut seen_short = false;
        let mut seen_long = false;
        for _ in 0..200 {
            let s = generate_pattern("[a-z]{1,8}( [a-z]{1,8})?", &mut r);
            if s.contains(' ') {
                seen_long = true;
            } else {
                seen_short = true;
            }
        }
        assert!(seen_short && seen_long);
    }

    #[test]
    fn printable_class() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate_pattern("\\PC{0,48}", &mut r);
            assert!(s.len() <= 48);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn whitespace_class_escapes() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate_pattern("[ \\t\\n]{0,8}", &mut r);
            assert!(s.chars().all(|c| c == ' ' || c == '\t' || c == '\n'));
        }
    }
}
