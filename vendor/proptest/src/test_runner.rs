//! Deterministic RNG and run configuration.

/// Configuration accepted by `#![proptest_config(..)]`. Only `cases` is
/// honoured; the remaining fields exist for source compatibility.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32, max_shrink_iters: 0 }
    }
}

/// SplitMix64 — deterministic, dependency-free, seeded per test from the
/// test's fully qualified name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// Seed directly.
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift rejection-free mapping (Lemire); bias is
        // negligible for test generation purposes.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_is_bounded() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..1000 {
            assert!(rng.below(13) < 13);
        }
    }

    #[test]
    fn unit_is_bounded() {
        let mut rng = TestRng::from_seed(9);
        for _ in 0..1000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn names_decorrelate() {
        let a = TestRng::from_name("a").next_u64();
        let b = TestRng::from_name("b").next_u64();
        assert_ne!(a, b);
    }
}
