//! A dependency-free, offline subset of the `proptest` crate.
//!
//! The build environment for this workspace has no network access to a
//! cargo registry, so the real `proptest` cannot be fetched. This crate
//! implements the *subset of the proptest API that this workspace's tests
//! actually use* — `proptest!`, strategies (`Just`, ranges, tuples,
//! `prop_oneof!`, `prop_map`/`prop_flat_map`, `collection::vec`, string
//! patterns, `any::<T>()`), `ProptestConfig { cases, .. }`, and the
//! `prop_assert*`/`prop_assume!` macros — with deterministic per-test
//! seeding and **no shrinking** (failures report the generated case via
//! the panic message).
//!
//! Semantics: each `#[test]` inside `proptest! { .. }` runs
//! `ProptestConfig::cases` cases. Generation is seeded from the test's
//! module path and name, so runs are reproducible across processes.

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The main proptest entry point: a block of `#[test]` functions whose
/// arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__config.cases {
                    let _ = __case;
                    let mut __one_case = || {
                        $(
                            let $arg = $crate::strategy::Strategy::generate(
                                &($strat), &mut __rng,
                            );
                        )*
                        $body
                    };
                    __one_case();
                }
            }
        )*
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skip the current case when the assumption does not hold. (Inside the
/// generated per-case closure, `return` abandons just this case.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice between strategies that share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed_strategy($s)),+])
    };
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed_strategy($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// Ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in -5i64..5, z in 0.5f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.5..2.0).contains(&z));
        }

        /// Collection sizes respect their range; maps apply.
        #[test]
        fn vec_and_map(xs in crate::collection::vec((0u8..4).prop_map(|v| v * 2), 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|v| *v % 2 == 0 && *v < 8));
        }

        /// String patterns honour classes and repetition counts.
        #[test]
        fn string_patterns(s in "[a-c]{2,5}", t in "[0-9]{1,3}( [a-z]{1,2})?") {
            prop_assert!(s.len() >= 2 && s.len() <= 5);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            prop_assert!(!t.is_empty());
        }

        /// prop_oneof unions, Just, tuples and flat_map compose.
        #[test]
        fn unions_and_tuples(
            v in prop_oneof![Just(1u8), Just(2u8), (5u8..7)],
            pair in (1usize..3, 0u32..10).prop_flat_map(|(n, k)| {
                crate::collection::vec(Just(k), n)
            }),
        ) {
            prop_assert!(v == 1 || v == 2 || v == 5 || v == 6);
            prop_assert!(!pair.is_empty() && pair.len() < 3);
        }

        /// prop_assume skips cases without failing.
        #[test]
        fn assume_skips(x in 0u8..10) {
            prop_assume!(x < 5);
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::from_name("fixed");
        let mut b = crate::test_runner::TestRng::from_name("fixed");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
