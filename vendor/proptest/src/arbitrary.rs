//! `any::<T>()` for the primitive types used in this workspace.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text tokenizer-friendly.
        char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning several magnitudes.
        let mag = rng.unit_f64() * 1e6;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_int_covers_sign() {
        let mut rng = TestRng::from_seed(21);
        let mut neg = false;
        let mut pos = false;
        for _ in 0..100 {
            let v = i16::arbitrary(&mut rng);
            neg |= v < 0;
            pos |= v > 0;
        }
        assert!(neg && pos);
    }

    #[test]
    fn any_f64_is_finite() {
        let mut rng = TestRng::from_seed(22);
        for _ in 0..100 {
            assert!(f64::arbitrary(&mut rng).is_finite());
        }
    }
}
