//! A dependency-free, offline subset of the `criterion` crate.
//!
//! The build environment for this workspace has no network access to a
//! cargo registry, so the real `criterion` cannot be fetched. This crate
//! implements the subset of the criterion API the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`)
//! with a straightforward wall-clock sampler: per benchmark it calibrates
//! an iteration count targeting ~25 ms per sample, collects up to
//! `sample_size` samples, and prints `min / mean / max` per-iteration
//! times in a plain-text report.
//!
//! Set `CRITERION_SAMPLE_MS` to adjust the per-sample time target.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { default_sample_size: 10 }
    }
}

impl Criterion {
    /// Configure the default number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.default_sample_size = n.max(2);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup { name, sample_size: self.default_sample_size, _parent: self }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into().0, self.default_sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of measurement samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Accepted for API compatibility; the sampler is already time-boxed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility (throughput is not reported).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_bench(&label, self.sample_size, f);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_bench(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Timing context handed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` executions of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self(format!("{function}/{parameter}"))
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Internal: anything usable as a benchmark label.
pub struct BenchId(pub String);

impl From<&str> for BenchId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

impl From<BenchmarkId> for BenchId {
    fn from(id: BenchmarkId) -> Self {
        Self(id.0)
    }
}

/// Throughput hint (accepted, not reported).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

fn sample_target() -> Duration {
    std::env::var("CRITERION_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_millis(25))
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // Calibrate with a single iteration (doubles as warm-up).
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let target = sample_target();
    let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
    // Expensive benchmarks get fewer samples so the suite stays bounded.
    let samples = if once > 4 * target { 2 } else { sample_size.max(2) };

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "{label:<48} time: [{} {} {}]  ({} samples × {} iters)",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max),
        per_iter.len(),
        iters,
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Define a benchmark group function callable from `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function("count", |b| b.iter(|| black_box(calls += 1)));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
        assert_eq!(BenchmarkId::from_parameter("bert").0, "bert");
    }

    #[test]
    fn ns_formatting() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(2_500_000_000.0).ends_with("s"));
    }
}
