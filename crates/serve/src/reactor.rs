//! Thread-per-core epoll reactor: the `--net epoll` serving path.
//!
//! N shards (default: one per core, capped at 8) each own an epoll
//! instance, a completion [`Mailbox`], and a slab of connections. The
//! listener is registered in every shard with `EPOLLEXCLUSIVE`, so the
//! kernel spreads accepts across shards (`SO_REUSEPORT`-style sharding
//! without rebinding the socket — `Server::bind` and every test keep
//! their single `TcpListener`). Each shard thread is best-effort pinned
//! to one CPU.
//!
//! Per connection the shard runs a small state machine:
//!
//! ```text
//! readable ─▶ RequestParser::feed ─▶ next_request loop (pipelining)
//!    ├─ non-embed route  → response rendered immediately (or queued in
//!    │                     order behind still-pending embeds)
//!    └─ embed admitted   → park a Waiting reply slot; parsing continues
//!                          (up to PIPELINE_MAX embeds ride the batcher
//!                          concurrently per connection)
//! mailbox wake ─▶ render the matching slot ─▶ pump in-order slots into
//!                 the out buffer ─▶ resume pipelined parsing
//! writable ─▶ flush out buffer (writable interest only while nonempty)
//! ```
//!
//! Responses always leave in request order: each connection keeps an
//! ordered reply queue ([`ReplySlot`]), and only the contiguous
//! completed prefix is moved to the wire. Every buffer is bounded: the
//! parser enforces the 16 KiB / 8 MiB header/body caps, at most
//! [`PIPELINE_MAX`] requests are in flight per connection, and
//! pipelined parsing pauses while more than [`OUT_BACKPRESSURE_BYTES`]
//! of responses await the socket, with the read interest dropped so a
//! slow reader cannot balloon memory.
//!
//! The timeout ladder (checked by a sweep each loop tick):
//! 1. slow header/body: a partial request older than
//!    `ServeConfig::header_timeout` → 408, close (slowloris shield);
//! 2. idle keep-alive: no partial, nothing in flight, quiet longer than
//!    `ServeConfig::idle_timeout` → silent close;
//! 3. reply guard: a parked embed older than deadline + 60 s → 500
//!    (mirrors the thread path's `recv_timeout` grace).
//!
//! Drain: shards deregister the listener, close idle connections, keep
//! serving parked/pipelined work (responses forced to `Connection:
//! close`), and exit once their slab is empty or a 30 s cap passes.
//! Admission control is untouched — shards feed the same `Queue`, the
//! same batcher answers, and measures stay byte-identical across both
//! net modes.

use crate::epoll::{
    pin_to_core, Epoll, EpollEvent, WakeFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP,
};
use crate::http::{render_response, HttpError, Request, RequestParser};
use crate::queue::{Mailbox, ReplyTo};
use crate::{
    embed_reply_outcome, log_slow, route_async, valid_request_id, Outcome, Routed, Shared,
    MAX_REQUEST_ID_BYTES,
};
use observatory_obs as obs;
use observatory_obs::flight;
use observatory_obs::flight::FlightKind;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Token for listener readiness events.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Token for the shard's eventfd.
const TOKEN_WAKE: u64 = u64::MAX - 1;
/// Pause pipelined parsing while this many response bytes await flush.
const OUT_BACKPRESSURE_BYTES: usize = 1 << 20;
/// Compact the out buffer (drop its flushed prefix) once this many
/// consumed bytes accumulate without a full drain.
const OUT_COMPACT_BYTES: usize = 64 << 10;
/// Events drained per `epoll_wait`.
const MAX_EVENTS: usize = 256;
/// Read chunk size (stack buffer).
const READ_CHUNK: usize = 16 << 10;
/// Cap reads per readiness event so one firehose connection cannot
/// monopolize its shard; level-triggered epoll re-fires for the rest.
const MAX_READS_PER_EVENT: usize = 16;
/// In-flight pipelined requests per connection (parked embeds plus
/// responses queued behind them). Parsing pauses at the cap.
const PIPELINE_MAX: usize = 32;
/// Grace past the request deadline before a parked embed is answered
/// 500 (mirrors the thread path's `recv_timeout(deadline + 60s)`).
const REPLY_GRACE: Duration = Duration::from_secs(60);
/// How long a draining shard keeps flushing before force-closing.
const DRAIN_CAP: Duration = Duration::from_secs(30);

/// Running shard threads plus their wake handles.
pub(crate) struct ShardSet {
    handles: Vec<std::thread::JoinHandle<()>>,
    wakes: Vec<Arc<WakeFd>>,
}

impl ShardSet {
    /// Ring every shard's eventfd (e.g. after flipping the drain flag).
    pub fn wake_all(&self) {
        for w in &self.wakes {
            w.wake();
        }
    }

    /// Wake and join every shard.
    pub fn join(self) {
        self.wake_all();
        for h in self.handles {
            let _ = h.join();
        }
    }
}

/// Shard count: configured value, or one per core capped at 8.
pub(crate) fn effective_shards(configured: usize) -> usize {
    if configured > 0 {
        configured
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
    }
}

/// Spawn the shard event loops. Fails only if epoll/eventfd themselves
/// are unavailable.
pub(crate) fn spawn(
    shared: &Arc<Shared>,
    listener: &Arc<TcpListener>,
) -> std::io::Result<ShardSet> {
    let n = effective_shards(shared.config.net_shards);
    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    let mut handles = Vec::with_capacity(n);
    let mut wakes = Vec::with_capacity(n);
    for i in 0..n {
        let epoll = Epoll::new()?;
        let wake = Arc::new(WakeFd::new()?);
        let mb_wake = Arc::clone(&wake);
        let mailbox = Mailbox::new(Box::new(move || mb_wake.wake()));
        let shard = Shard {
            shared: Arc::clone(shared),
            listener: Arc::clone(listener),
            epoll,
            wake: Arc::clone(&wake),
            mailbox,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            accepting: false,
            drain_deadline: None,
        };
        wakes.push(wake);
        let core = i % cores;
        let h = std::thread::Builder::new()
            .name(format!("observatory-shard-{i}"))
            .spawn(move || {
                pin_to_core(core);
                shard.run();
            })
            .map_err(|e| std::io::Error::other(format!("spawn shard {i}: {e}")))?;
        handles.push(h);
    }
    Ok(ShardSet { handles, wakes })
}

/// A parked `/v1/embed` awaiting its batcher reply.
struct PendingWait {
    embed: crate::api::EmbedRequest,
    rid: Arc<str>,
    keep_alive: bool,
    req_start: Instant,
    submitted: Instant,
    deadline_in: Duration,
}

/// One entry in a connection's ordered reply queue. Requests enter in
/// parse order; a slot becomes `Ready` when its response is rendered,
/// and only the contiguous `Ready` prefix moves to the out buffer — so
/// pipelined responses leave in request order no matter how the
/// batcher reorders completions.
enum ReplySlot {
    /// A parked embed, keyed by its per-connection sequence number.
    Waiting(u16, PendingWait),
    /// A rendered response waiting for earlier slots; the flag is the
    /// response's keep-alive decision.
    Ready(Vec<u8>, bool),
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    fd: i32,
    parser: RequestParser,
    out: Vec<u8>,
    out_pos: usize,
    /// Interest mask currently registered with epoll.
    interest: u32,
    /// In-order reply queue (pipelining); empty in steady state.
    replies: VecDeque<ReplySlot>,
    /// Sequence source for `ReplySlot::Waiting` keys.
    next_seq: u16,
    /// First byte of the current partial request (slow-header clock).
    request_started: Option<Instant>,
    last_activity: Instant,
    /// The current response stream ends the connection once flushed.
    close_after_flush: bool,
    /// The kernel reported `EPOLLRDHUP`. Recorded so the interest can
    /// be dropped — level-triggered RDHUP re-fires on every wait while
    /// reads are paused (backpressure / pipeline cap), spinning the
    /// shard. `read()` still observes the EOF itself once reads resume.
    rdhup: bool,
    /// Peer shut down its write half (`read()` returned 0); serve what
    /// is parked, then close.
    peer_eof: bool,
    /// Unrecoverable socket error; tear down regardless of state.
    broken: bool,
    /// Counted in the `active` connection gauge (and `inflight`).
    active: bool,
}

impl Conn {
    fn backlog(&self) -> usize {
        self.out.len() - self.out_pos
    }

    fn has_waiting(&self) -> bool {
        self.replies.iter().any(|r| matches!(r, ReplySlot::Waiting(..)))
    }

    /// The newest queued reply already decided to close the connection,
    /// so no further request may be parsed. `close_after_flush` itself
    /// is only set once the close response reaches the front of the
    /// line — earlier in-flight replies keep their own keep-alive
    /// decision.
    fn tail_closed(&self) -> bool {
        match self.replies.back() {
            Some(ReplySlot::Ready(_, keep)) => !keep,
            Some(ReplySlot::Waiting(_, p)) => !p.keep_alive,
            None => false,
        }
    }

    fn wants_read(&self) -> bool {
        self.replies.len() < PIPELINE_MAX
            && !self.peer_eof
            && !self.close_after_flush
            && !self.tail_closed()
            && !self.broken
            && self.backlog() < OUT_BACKPRESSURE_BYTES
    }

    fn busy(&self) -> bool {
        !self.replies.is_empty() || self.backlog() > 0 || self.parser.has_partial()
    }

    /// Whether the connection has nothing left to do and must go.
    fn finished(&self) -> bool {
        self.broken
            || (self.backlog() == 0
                && self.replies.is_empty()
                && (self.close_after_flush || self.peer_eof))
    }

    fn desired_interest(&self) -> u32 {
        // Once RDHUP has been observed the event has nothing more to
        // say; deregister it so it stops re-firing while reads pause.
        let mut m = if self.rdhup { 0 } else { EPOLLRDHUP };
        if self.wants_read() {
            m |= EPOLLIN;
        }
        if self.backlog() > 0 {
            m |= EPOLLOUT;
        }
        m
    }
}

struct Slot {
    gen: u32,
    conn: Option<Conn>,
}

fn token_of(slot: usize, gen: u32) -> u64 {
    (slot as u64) | ((gen as u64) << 32)
}

/// Mailbox token: the epoll token's slot, the generation's low 16 bits,
/// and the request's sequence number. The truncated generation still
/// rejects stale completions — a collision would need 65k accept/close
/// cycles of one slot inside a single batcher round trip.
fn mailbox_token(conn_token: u64, seq: u16) -> u64 {
    (conn_token & 0xffff_ffff) | (((conn_token >> 32) & 0xffff) << 32) | ((seq as u64) << 48)
}

struct Shard {
    shared: Arc<Shared>,
    listener: Arc<TcpListener>,
    epoll: Epoll,
    wake: Arc<WakeFd>,
    mailbox: Arc<Mailbox>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    live: usize,
    accepting: bool,
    drain_deadline: Option<Instant>,
}

impl Shard {
    fn run(mut self) {
        if self.epoll.add(self.wake.fd(), EPOLLIN, TOKEN_WAKE).is_err() {
            return;
        }
        if self.epoll.add_listener(self.listener.as_raw_fd(), TOKEN_LISTENER).is_err() {
            return;
        }
        self.accepting = true;
        let mut events = vec![EpollEvent::new(0, 0); MAX_EVENTS];
        loop {
            let n = self.epoll.wait(&mut events, 50).unwrap_or(0);
            for ev in events.iter().take(n) {
                let (mask, token) = (ev.events(), ev.data());
                match token {
                    TOKEN_WAKE => self.wake.drain(),
                    TOKEN_LISTENER => self.accept_ready(),
                    _ => self.conn_event(token, mask),
                }
            }
            self.deliver_completions();
            self.sweep(Instant::now());
            if self.shared.draining.load(Ordering::SeqCst) {
                if self.accepting {
                    let _ = self.epoll.del(self.listener.as_raw_fd());
                    self.accepting = false;
                    self.drain_deadline = Some(Instant::now() + DRAIN_CAP);
                }
                if self.live == 0 {
                    break;
                }
                if self.drain_deadline.is_some_and(|d| Instant::now() >= d) {
                    for slot in 0..self.slots.len() {
                        self.teardown(slot);
                    }
                    break;
                }
            }
        }
    }

    fn accept_ready(&mut self) {
        if !self.accepting {
            return;
        }
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => self.register(stream),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    obs::event_with(obs::Level::Error, "serve", "accept_error", || {
                        vec![("error", e.to_string())]
                    });
                    break;
                }
            }
        }
    }

    fn register(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let slot = self.free.pop().unwrap_or_else(|| {
            self.slots.push(Slot { gen: 0, conn: None });
            self.slots.len() - 1
        });
        let gen = self.slots[slot].gen;
        let fd = stream.as_raw_fd();
        let conn = Conn {
            stream,
            fd,
            parser: RequestParser::new(),
            out: Vec::new(),
            out_pos: 0,
            interest: EPOLLIN | EPOLLRDHUP,
            replies: VecDeque::new(),
            next_seq: 0,
            request_started: None,
            last_activity: Instant::now(),
            close_after_flush: false,
            rdhup: false,
            peer_eof: false,
            broken: false,
            active: false,
        };
        if self.epoll.add(fd, conn.interest, token_of(slot, gen)).is_err() {
            self.free.push(slot);
            return;
        }
        self.slots[slot].conn = Some(conn);
        self.live += 1;
        self.shared.metrics.record_accept();
        self.shared.metrics.conn_opened();
        flight::record(FlightKind::ConnAccept, "conn", [0; 5], token_of(slot, gen));
    }

    /// Look up a live connection by token (slot + generation); stale
    /// generations (the slot was recycled) are ignored.
    fn check(&self, token: u64) -> Option<usize> {
        let slot = (token & 0xffff_ffff) as usize;
        let gen = (token >> 32) as u32;
        (slot < self.slots.len() && self.slots[slot].gen == gen && self.slots[slot].conn.is_some())
            .then_some(slot)
    }

    fn conn_event(&mut self, token: u64, mask: u32) {
        let Some(slot) = self.check(token) else { return };
        {
            let conn = self.slots[slot].conn.as_mut().expect("checked");
            if mask & (EPOLLERR | EPOLLHUP) != 0 {
                // ERR is unrecoverable; HUP means both halves are gone
                // (reset/abort) so the peer can never read a reply —
                // and unlike RDHUP the event cannot be masked out, so
                // lingering would spin the shard until teardown anyway.
                conn.broken = true;
            } else {
                if mask & EPOLLRDHUP != 0 {
                    // Note the half-close; settle() then drops the
                    // RDHUP interest so the level-triggered event stops
                    // re-firing while reads are paused.
                    conn.rdhup = true;
                }
                if mask & (EPOLLIN | EPOLLRDHUP) != 0 {
                    read_into(conn);
                    process_requests(conn, &self.shared, &self.mailbox, token);
                }
                if mask & EPOLLOUT != 0 {
                    try_flush(conn);
                }
            }
        }
        self.settle(slot, token);
    }

    /// Post-I/O bookkeeping for one connection: flush, gauge upkeep,
    /// interest re-registration, teardown when finished.
    fn settle(&mut self, slot: usize, token: u64) {
        let finished = {
            let conn = self.slots[slot].conn.as_mut().expect("live slot");
            pump_replies(conn);
            try_flush(conn);
            let busy = conn.busy();
            if busy != conn.active {
                conn.active = busy;
                if busy {
                    self.shared.metrics.conn_busy();
                    self.shared.inflight.fetch_add(1, Ordering::SeqCst);
                } else {
                    self.shared.metrics.conn_unbusy();
                    self.shared.inflight.fetch_sub(1, Ordering::SeqCst);
                }
            }
            if !conn.finished() {
                let want = conn.desired_interest();
                if want != conn.interest {
                    if self.epoll.modify(conn.fd, want, token).is_ok() {
                        conn.interest = want;
                    } else {
                        conn.broken = true;
                    }
                }
            }
            conn.finished()
        };
        if finished {
            self.teardown(slot);
        }
    }

    fn teardown(&mut self, slot: usize) {
        let Some(conn) = self.slots[slot].conn.take() else { return };
        let _ = self.epoll.del(conn.fd);
        if conn.active {
            self.shared.metrics.conn_unbusy();
            self.shared.inflight.fetch_sub(1, Ordering::SeqCst);
        }
        self.shared.metrics.conn_closed();
        self.slots[slot].gen = self.slots[slot].gen.wrapping_add(1);
        self.free.push(slot);
        self.live -= 1;
    }

    /// Route batcher replies parked in the mailbox back to their
    /// connections (matching each to its `Waiting` slot by sequence
    /// number), pump in-order responses out, and resume parsing.
    fn deliver_completions(&mut self) {
        for (mtoken, reply) in self.mailbox.drain() {
            let slot = (mtoken & 0xffff_ffff) as usize;
            let gen16 = ((mtoken >> 32) & 0xffff) as u32;
            let seq = (mtoken >> 48) as u16;
            if slot >= self.slots.len()
                || self.slots[slot].gen & 0xffff != gen16
                || self.slots[slot].conn.is_none()
            {
                continue;
            }
            let token = token_of(slot, self.slots[slot].gen);
            {
                let conn = self.slots[slot].conn.as_mut().expect("checked");
                if !complete_waiting(conn, seq, &self.shared, reply) {
                    continue;
                }
                pump_replies(conn);
                process_requests(conn, &self.shared, &self.mailbox, token);
            }
            self.settle(slot, token);
        }
    }

    /// The timeout ladder, walked once per loop tick.
    fn sweep(&mut self, now: Instant) {
        let draining = self.shared.draining.load(Ordering::SeqCst);
        for slot in 0..self.slots.len() {
            let token = token_of(slot, self.slots[slot].gen);
            let mut kill_idle = false;
            let mut touched = false;
            if let Some(conn) = self.slots[slot].conn.as_mut() {
                if conn.has_waiting() {
                    // Reply guard: the batcher always answers; this fires
                    // only on a path we haven't imagined, exactly like
                    // the thread path's recv_timeout.
                    let mut fired = false;
                    for r in conn.replies.iter_mut() {
                        let ReplySlot::Waiting(_, p) = r else { continue };
                        if now.saturating_duration_since(p.submitted) > p.deadline_in + REPLY_GRACE
                        {
                            let outcome =
                                Outcome::error("embed", 500, "batcher dropped the request");
                            let mut buf = Vec::new();
                            render_reply(
                                &mut buf,
                                outcome,
                                &p.rid,
                                false,
                                p.req_start,
                                &self.shared,
                            );
                            *r = ReplySlot::Ready(buf, false);
                            fired = true;
                        }
                    }
                    // The 500 closes the connection when it reaches the
                    // front of the line (pump sets close_after_flush).
                    if fired {
                        touched = true;
                    }
                } else if let Some(started) = conn.request_started {
                    // Slowloris shield: a header (or body) trickling in
                    // for too long gets 408, then close.
                    if now.saturating_duration_since(started) > self.shared.config.header_timeout {
                        self.shared.metrics.record_conn_timeout();
                        flight::record(FlightKind::ConnTimeout, "conn", [0; 5], 408);
                        conn.request_started = None;
                        let outcome = Outcome::error(
                            "timeout",
                            408,
                            "timed out waiting for a complete request",
                        );
                        finish_response(conn, outcome, "slow-request", false, now, &self.shared);
                        touched = true;
                    }
                } else if conn.backlog() == 0
                    && conn.replies.is_empty()
                    && !conn.parser.has_partial()
                {
                    // Idle keep-alive connection; draining closes these
                    // immediately, otherwise the idle timeout applies.
                    let cap =
                        if draining { Duration::ZERO } else { self.shared.config.idle_timeout };
                    if now.saturating_duration_since(conn.last_activity) >= cap {
                        if !draining {
                            self.shared.metrics.record_conn_timeout();
                            flight::record(FlightKind::ConnTimeout, "conn", [0; 5], 0);
                        }
                        kill_idle = true;
                    }
                }
            }
            if kill_idle {
                self.teardown(slot);
            } else if touched {
                self.settle(slot, token);
            }
        }
    }
}

/// Pull whatever the socket has (bounded per event) into the parser.
fn read_into(conn: &mut Conn) {
    if !conn.wants_read() {
        // Reads are paused (backpressure / pipeline cap / pending
        // close). The rdhup flag set by conn_event keeps the EOF
        // notification from re-firing; read() sees the EOF when reads
        // resume, so nothing is lost by returning here.
        return;
    }
    let mut buf = [0u8; READ_CHUNK];
    for _ in 0..MAX_READS_PER_EVENT {
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                conn.peer_eof = true;
                break;
            }
            Ok(n) => {
                conn.parser.feed(&buf[..n]);
                conn.last_activity = Instant::now();
                if conn.request_started.is_none() {
                    conn.request_started = Some(conn.last_activity);
                }
                if n < buf.len() {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.broken = true;
                break;
            }
        }
    }
}

/// Parse and dispatch as many pipelined requests as current state
/// allows (stops on a parked embed, backpressure, or a parse error).
fn process_requests(conn: &mut Conn, shared: &Shared, mailbox: &Arc<Mailbox>, token: u64) {
    loop {
        if conn.replies.len() >= PIPELINE_MAX
            || conn.close_after_flush
            || conn.tail_closed()
            || conn.broken
            || conn.backlog() >= OUT_BACKPRESSURE_BYTES
        {
            break;
        }
        match conn.parser.next_request() {
            Ok(Some(req)) => handle_request(conn, req, shared, mailbox, token),
            Ok(None) => break,
            Err(e) => {
                let (status, msg) = match e {
                    HttpError::HeadersTooLarge => {
                        (431, "request header block exceeds limits".to_string())
                    }
                    HttpError::TooLarge => (413, "request exceeds size limits".to_string()),
                    HttpError::Malformed(m) => (400, m),
                    HttpError::Io(m) => (400, format!("read failed: {m}")),
                    HttpError::Closed => (400, "connection closed".to_string()),
                };
                let req_start = conn.request_started.take().unwrap_or_else(Instant::now);
                let outcome = Outcome::error("malformed", status, &msg);
                // Framing is lost after a parse error: answer, then close.
                finish_response(conn, outcome, "malformed", false, req_start, shared);
                break;
            }
        }
    }
    // Slow-header clock: runs exactly while a partial request is parked.
    if conn.parser.has_partial() {
        if conn.request_started.is_none() {
            conn.request_started = Some(Instant::now());
        }
    } else {
        conn.request_started = None;
    }
}

/// Dispatch one complete request: identity, routing, and either an
/// immediate response or a parked embed.
fn handle_request(
    conn: &mut Conn,
    req: Request,
    shared: &Shared,
    mailbox: &Arc<Mailbox>,
    token: u64,
) {
    let now = Instant::now();
    let req_start = conn.request_started.take().unwrap_or(now);
    let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
    let rid: Arc<str> = match req.header("x-request-id") {
        Some(v) if valid_request_id(v) => Arc::from(v),
        Some(v) => {
            let msg = if v.len() > MAX_REQUEST_ID_BYTES {
                format!("x-request-id exceeds {MAX_REQUEST_ID_BYTES} bytes")
            } else {
                "x-request-id must be non-empty [A-Za-z0-9._-]".to_string()
            };
            let outcome = Outcome::error("malformed", 400, &msg);
            let keep = req.persist_connection();
            finish_response(conn, outcome, &format!("obs-{id}"), keep, req_start, shared);
            return;
        }
        None => Arc::from(format!("obs-{id}")),
    };
    let keep_alive = req.persist_connection();
    let mut span = obs::span(obs::Level::Info, "serve", "request")
        .with("request", id)
        .with("rid", &rid)
        .with("method", &req.method)
        .with("path", &req.path);
    let seq = conn.next_seq;
    let reply = ReplyTo::Mailbox(Arc::clone(mailbox), mailbox_token(token, seq));
    match route_async(&req, id, &rid, &mut span, shared, reply) {
        Routed::Done(outcome) => {
            span.record("status", outcome.status);
            drop(span);
            finish_response(conn, outcome, &rid, keep_alive, req_start, shared);
        }
        Routed::Pending(p) => {
            // The span ends at admission; the batcher's span links back
            // via span_parent, so the trace stays connected.
            drop(span);
            conn.next_seq = seq.wrapping_add(1);
            conn.replies.push_back(ReplySlot::Waiting(
                seq,
                PendingWait {
                    embed: p.embed_req,
                    rid,
                    keep_alive,
                    req_start,
                    submitted: now,
                    deadline_in: p.deadline_in,
                },
            ));
        }
    }
}

/// Render one finished outcome as wire bytes into `buf` and account
/// for it (stage metrics, slow log, request counters).
fn render_reply(
    buf: &mut Vec<u8>,
    outcome: Outcome,
    rid: &str,
    keep: bool,
    req_start: Instant,
    shared: &Shared,
) {
    let mut headers = outcome.extra;
    headers.push(("x-request-id", rid.to_string()));
    if let Some(stages) = &outcome.stages {
        headers.push(("x-stage-us", stages.header_value()));
        shared.metrics.record_stages(stages);
    }
    render_response(
        buf,
        outcome.status,
        outcome.content_type,
        &headers,
        outcome.body.as_bytes(),
        keep,
    );
    let total = req_start.elapsed();
    if total >= shared.config.slow {
        log_slow(rid, outcome.route, outcome.status, total, outcome.stages);
    }
    shared.metrics.record_request(outcome.route, outcome.status, total);
}

/// A response that is ready right now: it streams straight into the
/// out buffer when nothing is queued ahead of it, otherwise it joins
/// the reply queue so responses leave in request order.
fn finish_response(
    conn: &mut Conn,
    outcome: Outcome,
    rid: &str,
    keep_alive: bool,
    req_start: Instant,
    shared: &Shared,
) {
    let keep = keep_alive && !conn.close_after_flush && !shared.draining.load(Ordering::SeqCst);
    if conn.replies.is_empty() {
        render_reply(&mut conn.out, outcome, rid, keep, req_start, shared);
        if !keep {
            conn.close_after_flush = true;
        }
    } else {
        // Queued behind in-flight embeds: the close decision (if any)
        // takes effect when this response reaches the front of the
        // line; until then `tail_closed` keeps the parser stopped.
        let mut buf = Vec::new();
        render_reply(&mut buf, outcome, rid, keep, req_start, shared);
        conn.replies.push_back(ReplySlot::Ready(buf, keep));
    }
}

/// Resolve one batcher completion: find the `Waiting` slot carrying
/// this sequence number and render its response in place. Returns
/// false when the slot is gone (connection closed early and the slab
/// entry was recycled within the same 16-bit generation, or the queue
/// was cleared by a close response ahead of it).
fn complete_waiting(
    conn: &mut Conn,
    seq: u16,
    shared: &Shared,
    reply: crate::queue::Reply,
) -> bool {
    let Some(idx) =
        conn.replies.iter().position(|r| matches!(r, ReplySlot::Waiting(s, _) if *s == seq))
    else {
        return false;
    };
    let placeholder = ReplySlot::Ready(Vec::new(), false);
    let ReplySlot::Waiting(_, p) = std::mem::replace(&mut conn.replies[idx], placeholder) else {
        unreachable!("position matched a Waiting slot");
    };
    let outcome = embed_reply_outcome(&p.embed, reply);
    let keep = p.keep_alive && !conn.close_after_flush && !shared.draining.load(Ordering::SeqCst);
    let mut buf = Vec::new();
    render_reply(&mut buf, outcome, &p.rid, keep, p.req_start, shared);
    conn.replies[idx] = ReplySlot::Ready(buf, keep);
    true
}

/// Move the contiguous `Ready` prefix of the reply queue into the out
/// buffer. A close response ends the stream: everything queued behind
/// it is dropped, and its completions will no longer find a `Waiting`
/// slot (they are ignored).
fn pump_replies(conn: &mut Conn) {
    while matches!(conn.replies.front(), Some(ReplySlot::Ready(..))) {
        let Some(ReplySlot::Ready(buf, keep)) = conn.replies.pop_front() else {
            unreachable!("front matched Ready");
        };
        conn.out.extend_from_slice(&buf);
        if !keep {
            conn.close_after_flush = true;
            conn.replies.clear();
            break;
        }
    }
}

/// Write as much of the out buffer as the socket takes.
///
/// Flushed bytes are reclaimed even when the buffer never fully drains:
/// the backpressure bound applies to the unwritten backlog, so without
/// compaction a client that reads just slowly enough to keep the buffer
/// nonempty while pipelining could grow `out` without limit.
fn try_flush(conn: &mut Conn) {
    while conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => {
                conn.broken = true;
                break;
            }
            Ok(n) => {
                conn.out_pos += n;
                conn.last_activity = Instant::now();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.broken = true;
                break;
            }
        }
    }
    if conn.out_pos >= conn.out.len() {
        if !conn.out.is_empty() {
            conn.out.clear();
            conn.out_pos = 0;
        }
    } else if conn.out_pos >= OUT_COMPACT_BYTES {
        // Partial drain: drop the consumed prefix once it is large
        // enough to amortize the memmove of the remaining backlog.
        conn.out.drain(..conn.out_pos);
        conn.out_pos = 0;
    }
}
