//! Zero-dependency SIGTERM / SIGINT hookup.
//!
//! `std` exposes no signal API, and the workspace admits no external
//! crates, so on Unix the handler is registered through the C `signal`
//! function that `std` already links from libc. The handler body is
//! async-signal-safe: it performs exactly one relaxed atomic store into
//! a process-global flag, which the accept loop polls between accepts.
//! On non-Unix targets [`install`] returns a flag that is simply never
//! set by a signal (the admin endpoint still triggers drain).

use std::sync::atomic::AtomicBool;

/// Process-global "a termination signal arrived" flag.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::SIGNALLED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        /// `signal(2)` from the platform libc that std links anyway.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: async-signal-safe.
        SIGNALLED.store(true, Ordering::SeqCst);
    }

    pub(super) fn install_impl() {
        let handler = on_signal as *const () as usize;
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub(super) fn install_impl() {}
}

/// Install the SIGTERM/SIGINT handlers (idempotent) and return the flag
/// they set. Callers poll it with `Ordering::Relaxed`.
pub fn install() -> &'static AtomicBool {
    imp::install_impl();
    &SIGNALLED
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn install_returns_unset_flag() {
        // Registering must not, by itself, request shutdown.
        let flag = install();
        assert!(!flag.load(Ordering::Relaxed));
        // Idempotent.
        let again = install();
        assert!(std::ptr::eq(flag, again));
    }
}
