//! `observatory-serve`: the resident embedding service.
//!
//! Everything below is hand-rolled over `std` — the workspace admits no
//! external crates — and composes the existing layers instead of
//! duplicating them: tables come from `observatory-table`, models from
//! the zoo registry, encodes go through the shared
//! [`observatory_runtime::Engine`] (content-addressed cache + worker
//! pool), kNN through `observatory-search`, and every request is traced
//! with `observatory-obs` spans.
//!
//! ## Request path
//!
//! ```text
//! accept loop (nonblocking, polls shutdown+signal flags)
//!   └─ connection thread: read_request → parse → Queue::push
//!        ├─ Full   → 429 + Retry-After   (load shedding)
//!        ├─ Closed → 503                 (draining)
//!        └─ Ok     → block on the reply channel
//! batcher thread: Queue::pop_batch (dynamic micro-batching)
//!   └─ expire (408, never encoded) → group by model → Engine::encode_batch
//! ```
//!
//! The admission queue is the **only** coupling between connection
//! threads and the encoder: its depth bound keeps tail latency bounded
//! under overload (shed early, never backlog), and closing it is the
//! whole drain protocol — new work is refused while every admitted job
//! is still answered before [`Server::run`] returns.
//!
//! ## Endpoints
//!
//! | Route                    | Purpose                                      |
//! |--------------------------|----------------------------------------------|
//! | `POST /v1/embed`         | Encode one table, return embeddings          |
//! | `POST /v1/knn`           | Exact cosine kNN over request-supplied items |
//! | `GET /healthz`           | Liveness + drain state                       |
//! | `GET /metrics`           | Prometheus text (engine + server families)   |
//! | `GET /debug/flight`      | Flight-recorder ring as Chrome-trace JSON    |
//! | `GET /debug/profile`     | Profiler folded stacks (flamegraph input)    |
//! | `GET /debug/profile/top` | Profiler top-N self-time table               |
//! | `POST /admin/shutdown`   | Begin graceful drain (same as SIGTERM)       |
//!
//! ## Request identity and stage timings
//!
//! Every request gets an id: a client-supplied `x-request-id` header
//! (≤ 128 bytes of `[A-Za-z0-9._-]`; anything else is a 400) or a
//! generated `obs-{n}`. The id is echoed on every response, stamped on
//! flight-recorder events, and printed in the slow-request log line
//! (total latency ≥ `ServeConfig::slow`). Embed responses additionally
//! carry `x-stage-us`: the queue → batch-wait → encode → store → write
//! breakdown measured on monotonic clocks along the pipeline.

pub mod api;
pub mod batcher;
pub mod epoll;
pub mod http;
pub mod metrics;
pub mod queue;
#[cfg(target_os = "linux")]
mod reactor;
pub mod signal;

use crate::batcher::BatcherConfig;
use crate::http::{read_request, write_response, HttpError, Request};
use crate::metrics::{ServerMetrics, ServerTotals};
use crate::queue::{Job, Pushed, Queue, Reply, ReplyTo, Stages};
use observatory_jobs::{
    supported_property, AnalyzeSpec, JobConfig, JobScheduler, JobState, JobTotals, Submit,
    TableStore, SUPPORTED_PROPERTIES,
};
use observatory_models::registry::is_known_model;
use observatory_obs as obs;
use observatory_obs::flight;
use observatory_obs::flight::FlightKind;
use observatory_obs::json::{escape, Json};
use observatory_obs::Manifest;
use observatory_runtime::Engine;
use observatory_search::{AnnIndex, HnswConfig, ShardedHnsw};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Why an admitted job was not answered with an encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The deadline passed while the job sat in the queue (→ 408).
    DeadlineExpired,
    /// The encode failed server-side, e.g. a recovered panic (→ 500).
    Internal(String),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::DeadlineExpired => write!(f, "deadline expired while queued"),
            JobError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

/// How connections are served: a thread per connection, or the
/// thread-per-core epoll reactor (`--net`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetMode {
    /// One blocking thread per connection (one request per connection).
    Thread,
    /// Sharded epoll event loops with keep-alive and pipelining
    /// ([`crate::reactor`]); Linux only.
    Epoll,
}

impl NetMode {
    /// Parse a `--net` flag value.
    pub fn parse(s: &str) -> Option<NetMode> {
        match s {
            "thread" => Some(NetMode::Thread),
            "epoll" => Some(NetMode::Epoll),
            _ => None,
        }
    }

    /// The flag spelling, for banners and manifests.
    pub fn as_str(self) -> &'static str {
        match self {
            NetMode::Thread => "thread",
            NetMode::Epoll => "epoll",
        }
    }
}

/// Everything `observatory serve` can tune.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7700` (port 0 = ephemeral).
    pub addr: String,
    /// Largest micro-batch handed to `Engine::encode_batch`.
    pub max_batch: usize,
    /// How long a forming batch waits for stragglers.
    pub batch_delay: Duration,
    /// Admission queue bound; beyond it requests are shed with 429.
    pub queue_depth: usize,
    /// Default per-request deadline (clients may lower it with the
    /// `x-deadline-ms` header; overrides are capped at 5 minutes).
    pub deadline: Duration,
    /// Install SIGTERM/SIGINT handlers that trigger graceful drain.
    /// Tests leave this off; the CLI turns it on.
    pub handle_signals: bool,
    /// Requests slower than this get a structured `slow-request` log
    /// line on stderr (`--slow-ms`).
    pub slow: Duration,
    /// Run the span-sampling profiler for the server's lifetime; the
    /// report lands in [`DrainStats::profile`].
    pub profile: bool,
    /// Profiler sampling interval (`--profile-interval-ms`).
    pub profile_interval: Duration,
    /// Build a corpus ANN index from the attached store at startup
    /// (`--ann-warm`): every stored table-level encoding becomes an
    /// HNSW item keyed by its fingerprint hex, served by
    /// `/v1/knn {"corpus":true}`.
    pub ann_warm: bool,
    /// Shard count for the warm corpus index (`--ann-shards`).
    pub ann_shards: usize,
    /// Bound on queued analysis jobs; submits beyond it get 429
    /// (`--max-jobs`).
    pub max_jobs: usize,
    /// Deadline for analysis jobs that do not carry their own
    /// (`--job-deadline-ms`), measured from submission.
    pub job_deadline: Duration,
    /// Directory for job records and ingested tables (`<store-dir>/jobs`
    /// when a store is attached); `None` = in-memory only.
    pub jobs_dir: Option<std::path::PathBuf>,
    /// Connection-serving strategy (`--net`). Defaults to the epoll
    /// reactor where supported (Linux), threads elsewhere.
    pub net: NetMode,
    /// Reactor shard count (`--net-shards`); 0 = one per core, capped
    /// at 8. Ignored in thread mode.
    pub net_shards: usize,
    /// Epoll mode: close a keep-alive connection idle this long.
    pub idle_timeout: Duration,
    /// Epoll mode: a partial request older than this gets 408 and the
    /// connection is closed (slowloris shield).
    pub header_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7700".to_string(),
            max_batch: 16,
            batch_delay: Duration::from_micros(2000),
            queue_depth: 256,
            deadline: Duration::from_millis(5000),
            handle_signals: false,
            slow: Duration::from_secs(1),
            profile: false,
            profile_interval: Duration::from_millis(10),
            ann_warm: false,
            ann_shards: 4,
            max_jobs: 16,
            job_deadline: Duration::from_secs(300),
            jobs_dir: None,
            net: if epoll::supported() { NetMode::Epoll } else { NetMode::Thread },
            net_shards: 0,
            idle_timeout: Duration::from_secs(60),
            header_timeout: Duration::from_secs(10),
        }
    }
}

/// What the server did with its life, reported after drain.
#[derive(Debug, Clone)]
pub struct DrainStats {
    /// Frozen server counters.
    pub totals: ServerTotals,
    /// Wall time from bind to drain completion.
    pub uptime: Duration,
    /// Profiler report when [`ServeConfig::profile`] was on and this
    /// server owned the (process-global) profiler session.
    pub profile: Option<obs::ProfileReport>,
    /// Analysis-job accounting at drain: every admitted job must be
    /// covered by done + failed + cancelled (`outstanding() == 0`).
    pub jobs: JobTotals,
}

/// State shared by the accept loop, connection threads, and the batcher.
struct Shared {
    engine: Arc<Engine>,
    queue: Queue,
    metrics: ServerMetrics,
    /// Set by [`ServerHandle::shutdown`] or `POST /admin/shutdown`.
    shutdown: AtomicBool,
    /// Flipped once drain begins (exported as a gauge; healthz reports it).
    draining: AtomicBool,
    /// Connections currently being handled.
    inflight: AtomicUsize,
    /// Monotone request id source (spans + logs).
    next_id: AtomicU64,
    started: Instant,
    config: ServeConfig,
    manifest: Manifest,
    /// Warm-started corpus ANN index ([`ServeConfig::ann_warm`]); `None`
    /// when disabled, no store is attached, or the store was empty.
    ann: Option<observatory_search::ShardedHnsw>,
    /// Ingested tables (`POST /v1/tables`), shared with the scheduler.
    tables: Arc<TableStore>,
    /// The analysis-job scheduler behind `/v1/analyze` and `/v1/jobs`.
    jobs: JobScheduler,
}

/// Cloneable remote control for a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begin graceful drain: stop accepting, answer everything admitted.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether drain has started.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Live server counters (also available after `run` returns).
    pub fn totals(&self) -> ServerTotals {
        self.shared.metrics.totals()
    }
}

/// A bound (but not yet running) service.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    signal_flag: Option<&'static AtomicBool>,
}

impl Server {
    /// Bind the listen socket and assemble shared state. The engine is
    /// taken as a parameter (not `runtime::global()`) so tests can run
    /// several isolated servers in one process.
    pub fn bind(config: ServeConfig, engine: Arc<Engine>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let signal_flag = if config.handle_signals { Some(signal::install()) } else { None };
        let mut manifest = Manifest::for_run();
        manifest.set("command", "serve");
        manifest.set("max_batch", config.max_batch.to_string());
        manifest.set("queue_depth", config.queue_depth.to_string());
        manifest.set("simd", observatory_linalg::simd::decision().describe());
        match engine.store() {
            Some(store) => {
                manifest.set("store", "attached");
                manifest.set("store_generation", store.generation().to_string());
            }
            None => {
                manifest.set("store", "none");
            }
        }
        let ann = if config.ann_warm { build_corpus_ann(&engine, config.ann_shards) } else { None };
        match &ann {
            Some(idx) => {
                manifest.set("ann", "hnsw");
                manifest.set("ann_items", idx.len().to_string());
                manifest.set("ann_shards", idx.num_shards().to_string());
            }
            None => {
                manifest.set("ann", "none");
            }
        }
        // Jobs subsystem: ingested tables + the analysis scheduler share
        // the engine (and through it, the encoding cache and store tier).
        let tables =
            Arc::new(TableStore::open(config.jobs_dir.as_ref().map(|d| d.join("tables")))?);
        let jobs = JobScheduler::start(
            JobConfig {
                max_jobs: config.max_jobs,
                default_deadline: config.job_deadline,
                dir: config.jobs_dir.clone(),
                ..JobConfig::default()
            },
            Arc::clone(&engine),
            Arc::clone(&tables),
        )?;
        manifest.set("max_jobs", config.max_jobs.to_string());
        let shared = Arc::new(Shared {
            engine,
            queue: Queue::new(config.queue_depth),
            metrics: ServerMetrics::new(),
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            next_id: AtomicU64::new(1),
            started: Instant::now(),
            config,
            manifest,
            ann,
            tables,
            jobs,
        });
        Ok(Server { listener, shared, signal_flag })
    }

    /// The bound address (resolves port 0 to the ephemeral port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// `(items, shards, dim)` of the warm corpus index, when one was
    /// built — for the startup banner.
    pub fn ann_summary(&self) -> Option<(usize, usize, usize)> {
        self.shared.ann.as_ref().map(|i| (i.len(), i.num_shards(), i.dim()))
    }

    /// A remote control usable from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: Arc::clone(&self.shared) }
    }

    /// Serve until a shutdown is requested (handle, admin endpoint, or
    /// signal), then drain: refuse new admissions, answer every admitted
    /// job, wait for in-flight connections, and join the batcher.
    pub fn run(self) -> DrainStats {
        let shared = self.shared;
        let config = shared.config.clone();
        obs::event_with(obs::Level::Info, "serve", "listening", || {
            vec![("addr", format!("{:?}", config.addr)), ("net", config.net.as_str().to_string())]
        });
        // The profiler is process-global; only stop it on drain if this
        // server's start actually claimed the session.
        let profiling = config.profile && obs::profiler::start(config.profile_interval);

        // The single consumer of the admission queue.
        let batcher_shared = Arc::clone(&shared);
        let batcher = std::thread::Builder::new()
            .name("observatory-batcher".to_string())
            .spawn(move || {
                batcher::batcher_loop(
                    &batcher_shared.queue,
                    &batcher_shared.engine,
                    &batcher_shared.metrics,
                    BatcherConfig { max_batch: config.max_batch, batch_delay: config.batch_delay },
                );
            })
            .expect("spawn batcher thread");

        #[cfg(target_os = "linux")]
        if config.net == NetMode::Epoll {
            return run_epoll(shared, self.listener, self.signal_flag, batcher, profiling);
        }
        #[cfg(not(target_os = "linux"))]
        if config.net == NetMode::Epoll {
            // Requested but unsupported on this target: serve anyway.
            obs::event(obs::Level::Warn, "serve", "epoll_unsupported_thread_fallback");
        }
        run_threads(shared, self.listener, self.signal_flag, batcher, profiling)
    }
}

/// The classic serving path: one blocking thread per connection.
fn run_threads(
    shared: Arc<Shared>,
    listener: TcpListener,
    signal_flag: Option<&'static AtomicBool>,
    batcher: std::thread::JoinHandle<()>,
    profiling: bool,
) -> DrainStats {
    // Accept loop: nonblocking so shutdown flags are polled ~200×/s.
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst)
            || signal_flag.is_some_and(|f| f.load(Ordering::Relaxed))
        {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.inflight.fetch_add(1, Ordering::SeqCst);
                shared.metrics.record_accept();
                shared.metrics.conn_opened();
                // Thread mode serves one request per connection, so an
                // open connection is always an active one.
                shared.metrics.conn_busy();
                let conn_shared = Arc::clone(&shared);
                let h = std::thread::Builder::new()
                    .name("observatory-conn".to_string())
                    .spawn(move || {
                        handle_conn(stream, &conn_shared);
                        conn_shared.metrics.conn_unbusy();
                        conn_shared.metrics.conn_closed();
                        conn_shared.inflight.fetch_sub(1, Ordering::SeqCst);
                    })
                    .expect("spawn connection thread");
                conns.push(h);
                // Opportunistically reap finished threads so the vec
                // stays bounded on long runs.
                conns.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                obs::event_with(obs::Level::Error, "serve", "accept_error", || {
                    vec![("error", e.to_string())]
                });
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }

    shared.draining.store(true, Ordering::SeqCst);
    obs::event(obs::Level::Info, "serve", "drain_begin");
    flight::record(FlightKind::Drain, "drain", [0; 5], 0);
    // Stop accepting: drop the listener (closes the socket).
    drop(listener);
    let wait_shared = Arc::clone(&shared);
    drain_tail(&shared, batcher, profiling, move || {
        let shared = wait_shared;
        // Wait for connection threads to flush their responses.
        let wait_start = Instant::now();
        while shared.inflight.load(Ordering::SeqCst) > 0
            && wait_start.elapsed() < Duration::from_secs(30)
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        for h in conns {
            if h.is_finished() {
                let _ = h.join();
            }
        }
    })
}

/// The epoll serving path: shard event loops own the connections; this
/// thread only watches the shutdown flags and then conducts the drain.
#[cfg(target_os = "linux")]
fn run_epoll(
    shared: Arc<Shared>,
    listener: TcpListener,
    signal_flag: Option<&'static AtomicBool>,
    batcher: std::thread::JoinHandle<()>,
    profiling: bool,
) -> DrainStats {
    let listener = Arc::new(listener);
    let shards = reactor::spawn(&shared, &listener).expect("spawn epoll shards");
    loop {
        if shared.shutdown.load(Ordering::SeqCst)
            || signal_flag.is_some_and(|f| f.load(Ordering::Relaxed))
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    shared.draining.store(true, Ordering::SeqCst);
    obs::event(obs::Level::Info, "serve", "drain_begin");
    flight::record(FlightKind::Drain, "drain", [0; 5], 0);
    // Shards see the flag on their next tick: they deregister the
    // listener, close idle connections, and force `Connection: close`
    // on everything still flushing.
    shards.wake_all();
    drain_tail(&shared, batcher, profiling, move || {
        // Every parked embed has been answered into its shard mailbox by
        // now (the batcher exited); shards flush them and exit once their
        // connection slabs are empty (30 s cap).
        shards.join();
        // The last Arc closes the listen socket.
        drop(listener);
    })
}

/// The shared back half of the drain protocol, after accepting stopped.
fn drain_tail(
    shared: &Arc<Shared>,
    batcher: std::thread::JoinHandle<()>,
    profiling: bool,
    wait_conns: impl FnOnce(),
) -> DrainStats {
    // Refuse new admissions; admitted jobs remain poppable, and
    // pop_batch skips the straggler window once closed.
    shared.queue.close();
    // The batcher answers everything admitted, then exits.
    let _ = batcher.join();
    // Drain the job scheduler: queued jobs are cancelled before start, a
    // running job is cancelled cooperatively at its next checkpoint, and
    // every terminal record is persisted — an admitted job is never
    // lost, only finished or cancelled.
    let job_totals = shared.jobs.drain();
    // Everything the batcher acked is now in the tier-2 store's WAL (if
    // one is attached); fsync it so the corpus survives a machine
    // restart, not just this process exit.
    if let Err(e) = shared.engine.flush_store() {
        obs::event_with(obs::Level::Error, "serve", "store_flush_error", || {
            vec![("error", e.to_string())]
        });
    }
    // Let in-flight connections finish flushing their responses.
    wait_conns();
    let totals = shared.metrics.totals();
    obs::event_with(obs::Level::Info, "serve", "drain_complete", || {
        vec![
            ("requests", totals.requests.to_string()),
            ("shed", totals.shed.to_string()),
            ("expired", totals.expired.to_string()),
            ("batches", totals.batches.to_string()),
            ("accepted", totals.accepted.to_string()),
            ("timeouts", totals.timeouts.to_string()),
            ("jobs_submitted", job_totals.submitted.to_string()),
            ("jobs_outstanding", job_totals.outstanding().to_string()),
        ]
    });
    let profile = if profiling { obs::profiler::stop() } else { None };
    DrainStats { totals, uptime: shared.started.elapsed(), profile, jobs: job_totals }
}

/// Longest accepted `x-request-id` value, in bytes.
pub const MAX_REQUEST_ID_BYTES: usize = 128;

/// Whether a client-supplied request id is acceptable: non-empty, at
/// most [`MAX_REQUEST_ID_BYTES`], charset `[A-Za-z0-9._-]`. The charset
/// keeps ids safe to echo in headers, log lines, and JSON without
/// escaping.
fn valid_request_id(v: &str) -> bool {
    !v.is_empty()
        && v.len() <= MAX_REQUEST_ID_BYTES
        && v.bytes().all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

/// Per-connection deadline override: `x-deadline-ms`, capped at 5 min.
fn request_deadline(req: &Request, default: Duration) -> Duration {
    match req.header("x-deadline-ms").and_then(|v| v.parse::<u64>().ok()) {
        Some(ms) => Duration::from_millis(ms.min(300_000)),
        None => default,
    }
}

/// A response ready to write: status, content type, extra headers, body,
/// and (for embed) the pipeline stage breakdown echoed as `x-stage-us`.
struct Outcome {
    route: &'static str,
    status: u16,
    content_type: &'static str,
    extra: Vec<(&'static str, String)>,
    body: String,
    stages: Option<Stages>,
}

impl Outcome {
    fn json(route: &'static str, status: u16, body: String) -> Self {
        Outcome {
            route,
            status,
            content_type: "application/json",
            extra: Vec::new(),
            body,
            stages: None,
        }
    }

    fn error(route: &'static str, status: u16, msg: &str) -> Self {
        Self::json(route, status, api::error_body(msg))
    }

    fn with_stages(mut self, stages: Stages) -> Self {
        self.stages = Some(stages);
        self
    }
}

/// Handle one connection: read a request, route it, write the response.
fn handle_conn(stream: TcpStream, shared: &Shared) {
    let start = Instant::now();
    // A dead or glacial client must not pin this thread forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    // One request per connection: Nagle only adds delayed-ACK stalls.
    let _ = stream.set_nodelay(true);
    let mut reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut stream = stream;
    let req = match read_request(&mut reader) {
        Ok(r) => r,
        Err(HttpError::Closed) => return,
        Err(e) => {
            let (status, msg) = match e {
                HttpError::HeadersTooLarge => {
                    (431, "request header block exceeds limits".to_string())
                }
                HttpError::TooLarge => (413, "request exceeds size limits".to_string()),
                HttpError::Malformed(m) => (400, m),
                HttpError::Io(m) => (400, format!("read failed: {m}")),
                HttpError::Closed => unreachable!(),
            };
            let body = api::error_body(&msg);
            let _ = write_response(&mut stream, status, "application/json", &[], body.as_bytes());
            shared.metrics.record_request("malformed", status, start.elapsed());
            return;
        }
    };
    let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
    // Request identity: validate the client's x-request-id or mint one.
    let rid: Arc<str> = match req.header("x-request-id") {
        Some(v) if valid_request_id(v) => Arc::from(v),
        Some(v) => {
            let msg = if v.len() > MAX_REQUEST_ID_BYTES {
                format!("x-request-id exceeds {MAX_REQUEST_ID_BYTES} bytes")
            } else {
                "x-request-id must be non-empty [A-Za-z0-9._-]".to_string()
            };
            let body = api::error_body(&msg);
            let _ = write_response(&mut stream, 400, "application/json", &[], body.as_bytes());
            shared.metrics.record_request("malformed", 400, start.elapsed());
            return;
        }
        None => Arc::from(format!("obs-{id}")),
    };
    let mut span = obs::span(obs::Level::Info, "serve", "request")
        .with("request", id)
        .with("rid", &rid)
        .with("method", &req.method)
        .with("path", &req.path);
    let outcome = route(&req, id, &rid, &mut span, shared);
    span.record("status", outcome.status);
    let mut headers = outcome.extra;
    headers.push(("x-request-id", rid.to_string()));
    if let Some(stages) = &outcome.stages {
        headers.push(("x-stage-us", stages.header_value()));
        shared.metrics.record_stages(stages);
    }
    let _ = write_response(
        &mut stream,
        outcome.status,
        outcome.content_type,
        &headers,
        outcome.body.as_bytes(),
    );
    let total = start.elapsed();
    if total >= shared.config.slow {
        log_slow(&rid, outcome.route, outcome.status, total, outcome.stages);
    }
    shared.metrics.record_request(outcome.route, outcome.status, total);
}

/// The structured slow-request log line, shared by both net paths.
fn log_slow(rid: &str, route: &str, status: u16, total: Duration, stages: Option<Stages>) {
    let st = stages.unwrap_or_default();
    eprintln!(
        "slow-request id={} route={} status={} total_ms={:.1} queue_us={} batch_wait_us={} encode_us={} store_us={} write_us={}",
        rid,
        route,
        status,
        total.as_secs_f64() * 1e3,
        st.queue_us,
        st.batch_wait_us,
        st.encode_us,
        st.store_us,
        st.write_us,
    );
}

/// The method set a known path accepts, as an `Allow` header value;
/// `None` means the path itself is unknown (404 territory).
fn allowed_methods(path: &str) -> Option<&'static str> {
    match path {
        "/healthz" | "/metrics" | "/debug/flight" | "/debug/profile" | "/debug/profile/top" => {
            Some("GET")
        }
        "/v1/embed" | "/v1/knn" | "/v1/tables" | "/v1/analyze" | "/admin/shutdown" => Some("POST"),
        p if p.starts_with("/v1/jobs/") => Some("GET, DELETE"),
        _ => None,
    }
}

/// What routing produced: either a finished response, or an admitted
/// embed whose reply will arrive on the [`ReplyTo`] sink the caller
/// supplied (thread path: a channel it blocks on; epoll path: the
/// shard's mailbox).
enum Routed {
    Done(Outcome),
    Pending(PendingEmbed),
}

/// An admitted `/v1/embed` awaiting its batcher reply.
struct PendingEmbed {
    /// The parsed request, kept to render the response around the
    /// encoding once the reply lands.
    embed_req: api::EmbedRequest,
    /// The (possibly header-overridden) deadline, for the reply guard.
    deadline_in: Duration,
}

/// Dispatch one parsed request, blocking until the response is ready —
/// the thread path. Everything but an admitted embed completes inline;
/// for an admitted embed this parks on a rendezvous channel exactly as
/// the pre-reactor server did.
fn route(req: &Request, id: u64, rid: &Arc<str>, span: &mut obs::Span, shared: &Shared) -> Outcome {
    let (tx, rx) = mpsc::channel();
    match route_async(req, id, rid, span, shared, ReplyTo::from(tx)) {
        Routed::Done(outcome) => outcome,
        Routed::Pending(p) => {
            // The batcher always answers (reply, or drops the sender on a
            // path we haven't imagined — then recv errors and we 500).
            // The extra minute covers encode time after a met deadline.
            match rx.recv_timeout(p.deadline_in + Duration::from_secs(60)) {
                Ok(reply) => embed_reply_outcome(&p.embed_req, reply),
                Err(_) => Outcome::error("embed", 500, "batcher dropped the request"),
            }
        }
    }
}

/// Render the final embed outcome from a batcher reply.
fn embed_reply_outcome(embed_req: &api::EmbedRequest, reply: Reply) -> Outcome {
    match reply {
        (Ok(enc), stages) => {
            Outcome::json("embed", 200, api::render_embed_response(embed_req, &enc))
                .with_stages(stages)
        }
        (Err(JobError::DeadlineExpired), stages) => {
            Outcome::error("embed", 408, "deadline expired before encode").with_stages(stages)
        }
        (Err(JobError::Internal(m)), stages) => {
            Outcome::error("embed", 500, &m).with_stages(stages)
        }
    }
}

/// Dispatch one parsed request to its endpoint without ever blocking on
/// the batcher: an admitted embed comes back as [`Routed::Pending`] and
/// its reply is delivered to `reply`.
fn route_async(
    req: &Request,
    id: u64,
    rid: &Arc<str>,
    span: &mut obs::Span,
    shared: &Shared,
    reply: ReplyTo,
) -> Routed {
    if let ("POST", "/v1/embed") = (req.method.as_str(), req.path.as_str()) {
        return embed(req, id, rid, span, shared, reply);
    }
    Routed::Done(match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => healthz(shared),
        ("GET", "/metrics") => metrics_page(shared),
        ("GET", "/debug/flight") => flight_page(),
        ("GET", "/debug/profile") => profile_page(false),
        ("GET", "/debug/profile/top") => profile_page(true),
        ("POST", "/v1/knn") => knn(req, shared),
        ("POST", "/v1/tables") => tables_ingest(req, shared),
        ("POST", "/v1/analyze") => analyze(req, shared),
        (_, p) if p.starts_with("/v1/jobs/") => jobs_route(req, shared),
        ("POST", "/admin/shutdown") => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Outcome::json("admin", 200, "{\"draining\":true}".to_string())
        }
        (method, path) => match allowed_methods(path) {
            // Known path, wrong verb: 405 with the honest Allow set.
            Some(allow) => {
                let mut o = Outcome::error(
                    "other",
                    405,
                    &format!("method {method} not allowed for '{path}'"),
                );
                o.extra.push(("Allow", allow.to_string()));
                o
            }
            // Unknown path: JSON 404, same error envelope as everything
            // else, so clients never have to parse a bare-text body.
            None => Outcome::error("other", 404, &format!("no route for '{path}'")),
        },
    })
}

/// `POST /v1/tables`: ingest a table (CSV or JSON), reply with its
/// content-addressed id. Re-ingesting identical content is idempotent:
/// 200 with the existing id instead of 201.
fn tables_ingest(req: &Request, shared: &Shared) -> Outcome {
    if req.header("content-length").is_none() {
        return Outcome::error("tables", 411, "POST /v1/tables requires Content-Length");
    }
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => return Outcome::error("tables", 400, "body must be UTF-8"),
    };
    let is_csv =
        req.header("content-type").is_some_and(|ct| ct.to_ascii_lowercase().contains("csv"));
    let table = if is_csv {
        // The table name participates in the content fingerprint, so an
        // `x-table-name` header lets a client reproduce the exact id the
        // CLI would compute for the same file path.
        let name = req.header("x-table-name").unwrap_or("upload");
        match observatory_table::csv::parse_csv(name, body) {
            Ok(t) => t,
            Err(e) => return Outcome::error("tables", 400, &format!("bad CSV: {e}")),
        }
    } else {
        let v = match obs::json::parse(body) {
            Ok(v) => v,
            Err(e) => return Outcome::error("tables", 400, &e),
        };
        match api::table_from_json(&v) {
            Ok(t) => t,
            Err(api::ApiError::TooLarge) => {
                return Outcome::error("tables", 413, &api::ApiError::TooLarge.to_string())
            }
            Err(api::ApiError::Bad(m)) => return Outcome::error("tables", 400, &m),
        }
    };
    if table.num_rows().saturating_mul(table.num_cols()) > api::MAX_CELLS {
        return Outcome::error("tables", 413, &api::ApiError::TooLarge.to_string());
    }
    let (name, rows, cols) = (table.name.clone(), table.num_rows(), table.num_cols());
    match shared.tables.add(table) {
        Ok((id, created)) => Outcome::json(
            "tables",
            if created { 201 } else { 200 },
            format!(
                "{{\"id\":\"{id}\",\"name\":\"{}\",\"rows\":{rows},\"cols\":{cols},\"created\":{created}}}",
                escape(&name)
            ),
        ),
        Err(e) => Outcome::error("tables", 500, &format!("persist failed: {e}")),
    }
}

/// `POST /v1/analyze`: validate the request, build an [`AnalyzeSpec`],
/// and submit it — 202 with the job id, or 429/503/404 from admission.
fn analyze(req: &Request, shared: &Shared) -> Outcome {
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => return Outcome::error("analyze", 400, "body must be UTF-8 JSON"),
    };
    let v = match obs::json::parse(body) {
        Ok(v) => v,
        Err(e) => return Outcome::error("analyze", 400, &e),
    };
    let Some(table) = v.get("table").and_then(Json::as_str) else {
        return Outcome::error("analyze", 400, "missing string field 'table'");
    };
    let Some(props) = v.get("properties").and_then(Json::as_array) else {
        return Outcome::error("analyze", 400, "missing array field 'properties'");
    };
    if props.is_empty() {
        return Outcome::error("analyze", 400, "'properties' must not be empty");
    }
    let mut properties = Vec::with_capacity(props.len());
    for p in props {
        let Some(id) = p.as_str() else {
            return Outcome::error("analyze", 400, "'properties' entries must be strings");
        };
        if !supported_property(id) {
            return Outcome::error(
                "analyze",
                400,
                &format!(
                    "unsupported property '{id}' (supported: {})",
                    SUPPORTED_PROPERTIES.join(", ")
                ),
            );
        }
        properties.push(id.to_string());
    }
    let model = v.get("model").and_then(Json::as_str).unwrap_or("bert").to_string();
    if !is_known_model(&model) {
        return Outcome::error("analyze", 400, &format!("unknown model '{model}'"));
    }
    let defaults = AnalyzeSpec::default();
    let seed = match v.get("seed") {
        None => defaults.seed,
        Some(s) => match s.as_f64() {
            Some(n) if n >= 0.0 && n.fract() == 0.0 => n as u64,
            _ => return Outcome::error("analyze", 400, "'seed' must be a non-negative integer"),
        },
    };
    let permutations = match v.get("permutations") {
        None => defaults.permutations,
        Some(s) => match s.as_f64() {
            Some(n) if n >= 2.0 && n.fract() == 0.0 => n as usize,
            _ => return Outcome::error("analyze", 400, "'permutations' must be an integer >= 2"),
        },
    };
    let deadline = match v.get("deadline_ms") {
        None => shared.config.job_deadline,
        Some(s) => match s.as_f64() {
            // Cap at one hour: a job deadline bounds how long drain can
            // possibly wait on a runaway analysis.
            Some(n) if n >= 1.0 && n.fract() == 0.0 => {
                Duration::from_millis((n as u64).min(3_600_000))
            }
            _ => return Outcome::error("analyze", 400, "'deadline_ms' must be an integer >= 1"),
        },
    };
    let downstream = match v.get("downstream") {
        None => false,
        Some(Json::Bool(b)) => *b,
        Some(_) => return Outcome::error("analyze", 400, "'downstream' must be a boolean"),
    };
    let spec = AnalyzeSpec {
        table: table.to_string(),
        model,
        properties,
        seed,
        permutations,
        deadline,
        downstream,
    };
    match shared.jobs.submit(spec) {
        Submit::Queued { id, depth } => Outcome::json(
            "analyze",
            202,
            format!("{{\"job\":\"{id}\",\"state\":\"queued\",\"depth\":{depth}}}"),
        ),
        Submit::Full => {
            flight::record(FlightKind::Shed, "analyze", [0; 5], 429);
            flight::dump("shed");
            let mut o = Outcome::error("analyze", 429, "job queue full, retry shortly");
            o.extra.push(("Retry-After", "1".to_string()));
            o
        }
        Submit::Closed => Outcome::error("analyze", 503, "server is draining"),
        Submit::UnknownTable => Outcome::error(
            "analyze",
            404,
            &format!("unknown table '{table}' (ingest it via POST /v1/tables)"),
        ),
    }
}

/// `/v1/jobs/<id>[/result]`: status (GET), result (GET …/result), and
/// cancellation (DELETE).
fn jobs_route(req: &Request, shared: &Shared) -> Outcome {
    let rest = &req.path["/v1/jobs/".len()..];
    let (id, tail) = match rest.split_once('/') {
        Some((id, tail)) => (id, Some(tail)),
        None => (rest, None),
    };
    match (req.method.as_str(), tail) {
        ("GET", None) => job_status(id, shared),
        ("GET", Some("result")) => job_result(id, shared),
        ("DELETE", None) => job_cancel(id, shared),
        (_, Some(t)) if t != "result" => {
            Outcome::error("jobs", 404, &format!("no route for '{}'", req.path))
        }
        (method, _) => {
            let mut o = Outcome::error(
                "jobs",
                405,
                &format!("method {method} not allowed for '{}'", req.path),
            );
            o.extra.push(("Allow", "GET, DELETE".to_string()));
            o
        }
    }
}

/// `GET /v1/jobs/<id>`: live status + progress + stage timings. The
/// stage breakdown reuses the request-path [`Stages`] vocabulary
/// (queue → encode → write), rendered in the same `x-stage-us` format.
fn job_status(id: &str, shared: &Shared) -> Outcome {
    let Some(s) = shared.jobs.status(id) else {
        return Outcome::error("jobs", 404, &format!("no such job '{id}'"));
    };
    let stages = Stages {
        queue_us: s.timings.queued_us,
        batch_wait_us: 0,
        encode_us: s.timings.run_us,
        store_us: 0,
        write_us: s.timings.persist_us,
    };
    let props: Vec<String> =
        s.spec.properties.iter().map(|p| format!("\"{}\"", escape(p))).collect();
    let error = match &s.error {
        Some(e) => format!("\"{}\"", escape(e)),
        None => "null".to_string(),
    };
    let body = format!(
        "{{\"job\":\"{}\",\"state\":\"{}\",\"progress\":{:.4},\"attempts\":{},\"table\":\"{}\",\"model\":\"{}\",\"properties\":[{}],\"seed\":{},\"permutations\":{},\"deadline_ms\":{},\"downstream\":{},\"error\":{},\"stage_us\":\"{}\"}}",
        escape(&s.id),
        s.state.as_str(),
        s.progress,
        s.attempts,
        escape(&s.spec.table),
        escape(&s.spec.model),
        props.join(","),
        s.spec.seed,
        s.spec.permutations,
        s.spec.deadline.as_millis(),
        s.spec.downstream,
        error,
        stages.header_value(),
    );
    Outcome::json("jobs", 200, body)
}

/// `GET /v1/jobs/<id>/result`: the persisted record, verbatim — exactly
/// the bytes that survive a restart. Only meaningful once `done`.
fn job_result(id: &str, shared: &Shared) -> Outcome {
    match shared.jobs.record_json(id) {
        None => Outcome::error("jobs", 404, &format!("no such job '{id}'")),
        Some((JobState::Done, json)) => Outcome::json("jobs", 200, json.as_ref().clone()),
        Some((state, _)) => Outcome::error(
            "jobs",
            409,
            &format!("job '{id}' is {}; result is only available once done", state.as_str()),
        ),
    }
}

/// `DELETE /v1/jobs/<id>`: cancel. Queued jobs cancel immediately (200);
/// a running job gets a cooperative request honored at its next
/// checkpoint (202 — poll the status to observe it land).
fn job_cancel(id: &str, shared: &Shared) -> Outcome {
    match shared.jobs.cancel(id) {
        observatory_jobs::Cancel::Unknown => {
            Outcome::error("jobs", 404, &format!("no such job '{id}'"))
        }
        observatory_jobs::Cancel::AlreadyTerminal(state) => {
            Outcome::error("jobs", 409, &format!("job '{id}' is already {}", state.as_str()))
        }
        observatory_jobs::Cancel::Cancelled => Outcome::json(
            "jobs",
            200,
            format!("{{\"job\":\"{}\",\"state\":\"cancelled\"}}", escape(id)),
        ),
        observatory_jobs::Cancel::Cancelling => Outcome::json(
            "jobs",
            202,
            format!("{{\"job\":\"{}\",\"state\":\"cancelling\"}}", escape(id)),
        ),
    }
}

/// `GET /debug/flight`: the current ring as Chrome-trace JSON, without
/// waiting for an anomaly.
fn flight_page() -> Outcome {
    Outcome::json("debug", 200, flight::render(None, "on-demand"))
}

/// `GET /debug/profile[/top]`: live profiler output, or 409 when no
/// profiling session is running.
fn profile_page(top: bool) -> Outcome {
    if !obs::profiler::is_running() {
        return Outcome::error(
            "debug",
            409,
            "profiler not running; start the server with --profile-out or --profile-interval-ms",
        );
    }
    let report = obs::profiler::report();
    Outcome {
        route: "debug",
        status: 200,
        content_type: "text/plain",
        extra: Vec::new(),
        body: if top { report.top } else { report.folded },
        stages: None,
    }
}

/// Build the corpus ANN index from the engine's attached store: every
/// live fingerprint's table-level readout becomes one item, keyed by
/// the fingerprint hex — the same key `/v1/embed` clients can compute
/// from their own content. No re-encoding happens here: vectors come
/// straight out of the persisted segments. Returns `None` when there is
/// no store or nothing usable in it (cold start, not an error).
fn build_corpus_ann(engine: &Engine, shards: usize) -> Option<ShardedHnsw> {
    let store = engine.store()?;
    let fingerprints = store.fingerprints();
    if fingerprints.is_empty() {
        return None;
    }
    let mut span = obs::span(obs::Level::Info, "serve", "ann_warm")
        .with("fingerprints", fingerprints.len())
        .with("shards", shards);
    let mut items: Vec<(String, Vec<f64>)> = Vec::with_capacity(fingerprints.len());
    let mut dim = None;
    let mut skipped = 0usize;
    for fp in fingerprints {
        // Unreadable records and non-table encodings are skipped, as are
        // dimension strays (mixed-model stores): the index only holds
        // mutually comparable vectors.
        let vector = match store.load(fp).and_then(|enc| enc.table()) {
            Some(v) if !v.is_empty() => v,
            _ => {
                skipped += 1;
                continue;
            }
        };
        match dim {
            None => dim = Some(vector.len()),
            Some(d) if d != vector.len() => {
                skipped += 1;
                continue;
            }
            Some(_) => {}
        }
        items.push((fp.to_hex(), vector));
    }
    span.record("items", items.len());
    span.record("skipped", skipped);
    let dim = dim?;
    Some(ShardedHnsw::build(dim, shards.max(1), HnswConfig::default(), &items, engine.jobs()))
}

fn healthz(shared: &Shared) -> Outcome {
    // Store sub-object so orchestration can check warm-restart readiness
    // from the same probe it already scrapes; `null` when serving
    // without persistence.
    let store = match shared.engine.store() {
        Some(store) => {
            let t = store.tier_stats();
            format!(
                "{{\"records\":{},\"segments\":{},\"generation\":{}}}",
                t.records, t.segments, t.generation
            )
        }
        None => "null".to_string(),
    };
    // ANN sub-object: which index kind `/v1/knn {"corpus":true}` would
    // hit, and how big it is. `null` until a warm start built one.
    let ann = match &shared.ann {
        Some(idx) => format!(
            "{{\"kind\":\"{}\",\"items\":{},\"shards\":{},\"dim\":{}}}",
            idx.kind(),
            idx.len(),
            idx.num_shards(),
            idx.dim(),
        ),
        None => "null".to_string(),
    };
    // Jobs sub-object: scheduler gauges, so the same probe covers the
    // async-analysis plane (queue depth, running, terminal tallies).
    let jc = shared.jobs.counts();
    let jobs = format!(
        "{{\"queued\":{},\"running\":{},\"done\":{},\"failed\":{},\"cancelled\":{},\"capacity\":{},\"tables\":{}}}",
        jc.queued,
        jc.running,
        jc.done,
        jc.failed,
        jc.cancelled,
        jc.capacity,
        shared.tables.len(),
    );
    // Connections sub-object: live gauges plus lifetime counters, in
    // both net modes (thread mode simply never has idle connections).
    let cs = shared.metrics.conn_snapshot();
    let connections = format!(
        "{{\"open\":{},\"idle\":{},\"active\":{},\"accepted\":{},\"timeouts\":{}}}",
        cs.open,
        cs.idle(),
        cs.active,
        cs.accepted,
        cs.timeouts,
    );
    let body = format!(
        "{{\"status\":\"ok\",\"draining\":{},\"net\":\"{}\",\"queue_depth\":{},\"queue_capacity\":{},\"uptime_seconds\":{:.3},\"workers\":{},\"connections\":{},\"jobs\":{},\"simd\":\"{}\",\"store\":{},\"ann\":{}}}",
        shared.draining.load(Ordering::SeqCst),
        shared.config.net.as_str(),
        shared.queue.len(),
        shared.queue.capacity(),
        shared.started.elapsed().as_secs_f64(),
        shared.engine.jobs(),
        connections,
        jobs,
        observatory_linalg::simd::decision().describe(),
        store,
        ann,
    );
    Outcome::json("healthz", 200, body)
}

fn metrics_page(shared: &Shared) -> Outcome {
    // Engine families first, then the server's own; both documents are
    // PromBuf-rendered so the concatenation validates as one exposition.
    let engine_text = observatory_runtime::prometheus_text(
        &shared.engine.metrics_snapshot(),
        &shared.engine.cache_stats(),
        &shared.manifest,
        None,
    );
    let server_text = shared.metrics.prometheus_text(
        shared.queue.len(),
        shared.queue.capacity(),
        shared.inflight.load(Ordering::SeqCst),
        shared.draining.load(Ordering::SeqCst),
        shared.jobs.counts(),
        shared.jobs.totals(),
    );
    let mut body = engine_text;
    body.push_str(&server_text);
    Outcome {
        route: "metrics",
        status: 200,
        content_type: "text/plain; version=0.0.4",
        extra: Vec::new(),
        body,
        stages: None,
    }
}

/// `POST /v1/embed`: validate and admit. Admission is the only async
/// edge in the server — on `Pushed::Ok` the batcher owns the job and
/// will deliver its reply to the supplied [`ReplyTo`] sink.
fn embed(
    req: &Request,
    id: u64,
    rid: &Arc<str>,
    span: &mut obs::Span,
    shared: &Shared,
    reply: ReplyTo,
) -> Routed {
    if req.header("content-length").is_none() {
        return Routed::Done(Outcome::error(
            "embed",
            411,
            "POST /v1/embed requires Content-Length",
        ));
    }
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => return Routed::Done(Outcome::error("embed", 400, "body must be UTF-8 JSON")),
    };
    let parsed = {
        let mut parse_span = obs::span(obs::Level::Debug, "serve", "parse");
        let r = api::parse_embed(body);
        if let Err(e) = &r {
            parse_span.record("error", e);
        }
        r
    };
    let embed_req = match parsed {
        Ok(r) => r,
        Err(api::ApiError::TooLarge) => {
            return Routed::Done(Outcome::error("embed", 413, &api::ApiError::TooLarge.to_string()))
        }
        Err(api::ApiError::Bad(m)) => return Routed::Done(Outcome::error("embed", 400, &m)),
    };
    // Name check only — constructing the model here would regenerate its
    // weights on every request; the batcher builds and caches adapters.
    if !is_known_model(&embed_req.model) {
        return Routed::Done(Outcome::error(
            "embed",
            400,
            &format!("unknown model '{}'", embed_req.model),
        ));
    }
    span.record("model", &embed_req.model);
    span.record("rows", embed_req.table.num_rows());
    span.record("cols", embed_req.table.num_cols());
    let deadline_in = request_deadline(req, shared.config.deadline);
    let now = Instant::now();
    let job = Job {
        id,
        rid: Arc::clone(rid),
        model: embed_req.model.clone(),
        table: embed_req.table.clone(),
        enqueued: now,
        deadline: now + deadline_in,
        reply,
        span_parent: span.id(),
    };
    match shared.queue.push(job) {
        Pushed::Full => {
            obs::event_with(obs::Level::Info, "serve", "shed", || {
                vec![("request", id.to_string()), ("rid", rid.to_string())]
            });
            // Load shedding is an anomaly worth a flight dump: the ring
            // holds the admissions that filled the queue.
            flight::record(FlightKind::Shed, rid, [0; 5], 429);
            flight::dump("shed");
            let mut o = Outcome::error("embed", 429, "admission queue full, retry shortly");
            o.extra.push(("Retry-After", "1".to_string()));
            Routed::Done(o)
        }
        Pushed::Closed => {
            flight::record(FlightKind::Shed, rid, [0; 5], 503);
            flight::dump("shed");
            Routed::Done(Outcome::error("embed", 503, "server is draining"))
        }
        Pushed::Ok { depth } => {
            span.record("queue_depth", depth);
            flight::record(FlightKind::Admit, rid, [0; 5], depth as u64);
            Routed::Pending(PendingEmbed { embed_req, deadline_in })
        }
    }
}

fn knn(req: &Request, shared: &Shared) -> Outcome {
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => return Outcome::error("knn", 400, "body must be UTF-8 JSON"),
    };
    match api::parse_knn(body) {
        Ok(parsed) => {
            let mut span = obs::span(obs::Level::Debug, "serve", "knn")
                .with("items", parsed.items.len())
                .with("queries", parsed.queries.len())
                .with("mode", parsed.mode.as_str())
                .with("corpus", parsed.corpus)
                .with("k", parsed.k);
            let out = if parsed.corpus {
                let Some(index) = &shared.ann else {
                    return Outcome::error(
                        "knn",
                        409,
                        "no corpus index: start the server with --ann-warm and an attached store",
                    );
                };
                if let Some(q) = parsed.queries.first() {
                    if q.len() != index.dim() {
                        return Outcome::error(
                            "knn",
                            400,
                            &format!(
                                "corpus index has dim {}, queries have dim {}",
                                index.dim(),
                                q.len()
                            ),
                        );
                    }
                }
                api::run_knn_on(&parsed, index)
            } else {
                api::run_knn(&parsed, shared.engine.jobs())
            };
            span.record("bytes", out.len());
            Outcome::json("knn", 200, out)
        }
        Err(e) => Outcome::error("knn", 400, &e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use observatory_obs::json::parse as jparse;
    use observatory_runtime::EngineConfig;
    use std::io::Write;

    fn spawn_server(
        config: ServeConfig,
    ) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<DrainStats>) {
        let engine = Arc::new(Engine::new(EngineConfig { jobs: 2, cache_bytes: 1 << 22 }));
        let server = Server::bind(config, engine).expect("bind ephemeral");
        let addr = server.local_addr().unwrap();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run());
        (addr, handle, join)
    }

    fn ephemeral() -> ServeConfig {
        ServeConfig { addr: "127.0.0.1:0".to_string(), ..ServeConfig::default() }
    }

    /// One request over a fresh connection; returns (status, headers, body).
    fn send(addr: SocketAddr, raw: &str) -> (u16, String, String) {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(raw.as_bytes()).unwrap();
        let mut buf = String::new();
        use std::io::Read;
        s.read_to_string(&mut buf).expect("read response");
        let status: u16 = buf
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("no status in {buf:?}"));
        let (head, body) = buf.split_once("\r\n\r\n").unwrap_or((buf.as_str(), ""));
        (status, head.to_string(), body.to_string())
    }

    fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
        send(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
    }

    fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String, String) {
        post_with(addr, path, body, "")
    }

    fn post_with(addr: SocketAddr, path: &str, body: &str, extra: &str) -> (u16, String, String) {
        send(
            addr,
            &format!(
                "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n{extra}\r\n{body}",
                body.len()
            ),
        )
    }

    fn embed_body(tag: u64) -> String {
        format!(
            r#"{{"model":"bert","level":"column","id":"req-{tag}",
               "table":{{"name":"t{tag}","columns":[
                 {{"header":"id","values":[{tag},2,3]}},
                 {{"header":"name","values":["a-{tag}","b",null]}}]}}}}"#
        )
    }

    fn shutdown_and_join(
        handle: &ServerHandle,
        join: std::thread::JoinHandle<DrainStats>,
    ) -> DrainStats {
        handle.shutdown();
        join.join().expect("server thread")
    }

    #[test]
    fn healthz_embed_knn_metrics_round_trip() {
        let (addr, handle, join) = spawn_server(ephemeral());

        let (status, _, body) = get(addr, "/healthz");
        assert_eq!(status, 200, "{body}");
        let h = jparse(&body).unwrap();
        assert_eq!(h.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(h.get("draining"), Some(&observatory_obs::json::Json::Bool(false)));
        // The SIMD dispatch decision is part of liveness output so an
        // operator can confirm which kernel tier a replica is running.
        let simd = h.get("simd").unwrap().as_str().unwrap();
        assert_eq!(simd, observatory_linalg::simd::decision().describe());
        // No tier-2 store attached in unit tests: the probe reports that
        // explicitly rather than omitting the key.
        assert_eq!(h.get("store"), Some(&observatory_obs::json::Json::Null));

        let (status, _, body) = post(addr, "/v1/embed", &embed_body(7));
        assert_eq!(status, 200, "{body}");
        let v = jparse(&body).unwrap();
        assert_eq!(v.get("id").unwrap().as_str(), Some("req-7"));
        assert_eq!(v.get("model").unwrap().as_str(), Some("bert"));
        assert_eq!(v.get("count").unwrap().as_f64(), Some(2.0));
        let embeddings = v.get("embeddings").unwrap().as_array().unwrap();
        assert_eq!(embeddings.len(), 2);
        assert!(!embeddings[0].as_array().unwrap().is_empty());

        let knn_body = r#"{"k":1,"items":[{"key":"a","vector":[1,0]},{"key":"b","vector":[0,1]}],"queries":[[0.9,0.1]]}"#;
        let (status, _, body) = post(addr, "/v1/knn", knn_body);
        assert_eq!(status, 200, "{body}");
        let v = jparse(&body).unwrap();
        let hits = v.get("results").unwrap().as_array().unwrap()[0].as_array().unwrap();
        assert_eq!(hits[0].get("key").unwrap().as_str(), Some("a"));

        let (status, _, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        let summary = observatory_obs::prom::validate(&body).expect("exposition validates");
        assert!(summary.has("observatory_encodes_total"), "engine families present");
        assert!(summary.has("observatory_server_requests_total"), "server families present");

        let stats = shutdown_and_join(&handle, join);
        assert!(stats.totals.requests >= 4);
        assert_eq!(stats.totals.shed, 0);
    }

    #[test]
    fn bad_requests_get_bad_statuses() {
        let (addr, handle, join) = spawn_server(ephemeral());
        // Unknown route and wrong method.
        assert_eq!(get(addr, "/nope").0, 404);
        assert_eq!(get(addr, "/v1/embed").0, 405);
        // Malformed JSON and unknown model.
        assert_eq!(post(addr, "/v1/embed", "{not json").0, 400);
        let body = embed_body(1).replace("bert", "no-such-model");
        let (status, _, resp) = post(addr, "/v1/embed", &body);
        assert_eq!(status, 400);
        assert!(resp.contains("unknown model"), "{resp}");
        // POST without Content-Length.
        assert_eq!(send(addr, "POST /v1/embed HTTP/1.1\r\nHost: t\r\n\r\n").0, 411);
        // Bad kNN.
        assert_eq!(post(addr, "/v1/knn", r#"{"k":0,"items":[],"queries":[]}"#).0, 400);
        shutdown_and_join(&handle, join);
    }

    #[test]
    fn zero_deadline_is_408_and_never_encoded() {
        let (addr, handle, join) = spawn_server(ephemeral());
        let (status, _, body) =
            post_with(addr, "/v1/embed", &embed_body(3), "x-deadline-ms: 0\r\n");
        assert_eq!(status, 408, "{body}");
        let stats = shutdown_and_join(&handle, join);
        assert_eq!(stats.totals.expired, 1);
    }

    #[test]
    fn draining_server_refuses_then_exits() {
        let (addr, handle, join) = spawn_server(ephemeral());
        assert_eq!(get(addr, "/healthz").0, 200);
        let (status, _, body) = post(addr, "/admin/shutdown", "");
        assert_eq!(status, 200);
        assert!(body.contains("draining"));
        let stats = join.join().expect("server thread drains and exits");
        assert!(stats.totals.requests >= 2);
        assert!(handle.is_draining());
        // The socket is closed: new connections fail or are reset.
        assert!(
            TcpStream::connect(addr)
                .map(|mut s| {
                    use std::io::Read;
                    let _ = s.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
                    let mut out = String::new();
                    matches!(s.read_to_string(&mut out), Ok(0)) || out.is_empty()
                })
                .unwrap_or(true),
            "listener must be closed after drain"
        );
    }

    #[test]
    fn full_queue_sheds_with_429_and_never_hangs() {
        // Tiny queue + serial engine + non-trivial tables: concurrent
        // clients must overrun admission, and every one of them still
        // gets an answer (200 or 429 + Retry-After) promptly.
        let config = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            max_batch: 1,
            batch_delay: Duration::ZERO,
            queue_depth: 2,
            ..ServeConfig::default()
        };
        let engine = Arc::new(Engine::new(EngineConfig { jobs: 1, cache_bytes: 0 }));
        let server = Server::bind(config, engine).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run());

        let values: Vec<String> = (0..400).map(|i| format!("\"cell-{i}\"")).collect();
        let clients: Vec<_> = (0..16)
            .map(|i| {
                let vals = values.join(",");
                std::thread::spawn(move || {
                    let body = format!(
                        r#"{{"model":"bert","table":{{"name":"big{i}","columns":[{{"header":"c","values":[{vals}]}}]}}}}"#
                    );
                    post(addr, "/v1/embed", &body).0
                })
            })
            .collect();
        let statuses: Vec<u16> = clients.into_iter().map(|c| c.join().unwrap()).collect();
        assert!(
            statuses.iter().all(|s| *s == 200 || *s == 429),
            "only 200/429 expected, got {statuses:?}"
        );
        let stats = shutdown_and_join(&handle, join);
        assert_eq!(stats.totals.shed, statuses.iter().filter(|s| **s == 429).count() as u64);
        assert!(stats.totals.shed >= 1, "queue_depth=2 under 16 clients must shed");
    }

    #[test]
    fn retry_after_header_present_on_429() {
        // Drive the shed path deterministically through route().
        let engine = Arc::new(Engine::new(EngineConfig { jobs: 1, cache_bytes: 0 }));
        let server = Server::bind(
            ServeConfig { addr: "127.0.0.1:0".into(), queue_depth: 1, ..ServeConfig::default() },
            engine,
        )
        .unwrap();
        let shared = &server.shared;
        // Fill the queue directly (no batcher is draining it).
        let (tx, _rx) = mpsc::channel();
        let now = Instant::now();
        let table = api::parse_embed(&embed_body(1)).unwrap().table;
        assert!(matches!(
            shared.queue.push(Job {
                id: 1,
                rid: "r1".into(),
                model: "bert".into(),
                table,
                enqueued: now,
                deadline: now + Duration::from_secs(5),
                reply: tx.into(),
                span_parent: None,
            }),
            Pushed::Ok { .. }
        ));
        let body = embed_body(2);
        let raw = format!(
            "POST /v1/embed HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        let req = read_request(&mut BufReader::new(raw.as_bytes())).unwrap();
        let mut span = obs::span(obs::Level::Debug, "serve", "test");
        let rid: Arc<str> = "r2".into();
        let out = route(&req, 2, &rid, &mut span, shared);
        assert_eq!(out.status, 429);
        assert!(out.extra.iter().any(|(k, v)| *k == "Retry-After" && v == "1"));
    }

    /// Pull one header value (case-insensitive name) out of a raw head.
    fn header_value(head: &str, name: &str) -> Option<String> {
        head.lines().find_map(|l| {
            let (k, v) = l.split_once(':')?;
            (k.trim().eq_ignore_ascii_case(name)).then(|| v.trim().to_string())
        })
    }

    #[test]
    fn request_id_round_trips_and_stages_are_echoed() {
        let (addr, handle, join) = spawn_server(ephemeral());
        // Client-supplied id round-trips on the embed response, along
        // with the full five-stage breakdown.
        let (status, head, body) =
            post_with(addr, "/v1/embed", &embed_body(11), "x-request-id: cli-abc.123\r\n");
        assert_eq!(status, 200, "{body}");
        assert_eq!(header_value(&head, "x-request-id").as_deref(), Some("cli-abc.123"));
        let stages = header_value(&head, "x-stage-us").expect("stage header on embed");
        for key in ["queue=", "batch_wait=", "encode=", "store=", "write="] {
            assert!(stages.contains(key), "{key} missing in {stages}");
        }
        // Absent id → generated, echoed, and distinct per request.
        let (_, head_a, _) = get(addr, "/healthz");
        let (_, head_b, _) = get(addr, "/healthz");
        let a = header_value(&head_a, "x-request-id").expect("generated id");
        let b = header_value(&head_b, "x-request-id").expect("generated id");
        assert!(a.starts_with("obs-") && b.starts_with("obs-"), "{a} {b}");
        assert_ne!(a, b);
        // Non-embed routes carry the id but no stage header.
        assert!(header_value(&head_a, "x-stage-us").is_none());
        shutdown_and_join(&handle, join);
    }

    #[test]
    fn malformed_request_ids_are_rejected() {
        let (addr, handle, join) = spawn_server(ephemeral());
        let (status, _, body) =
            post_with(addr, "/v1/embed", &embed_body(1), "x-request-id: bad id with spaces\r\n");
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("x-request-id"), "{body}");
        let long = "x".repeat(MAX_REQUEST_ID_BYTES + 1);
        let (status, _, body) =
            post_with(addr, "/v1/embed", &embed_body(1), &format!("x-request-id: {long}\r\n"));
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("exceeds"), "{body}");
        // Exactly at the limit is fine — even on a GET.
        let max = "y".repeat(MAX_REQUEST_ID_BYTES);
        let (status, head, _) =
            send(addr, &format!("GET /healthz HTTP/1.1\r\nHost: t\r\nx-request-id: {max}\r\n\r\n"));
        assert_eq!(status, 200);
        assert_eq!(header_value(&head, "x-request-id"), Some(max));
        shutdown_and_join(&handle, join);
    }

    /// Poll a job until it reaches a terminal state; returns the final
    /// status document.
    fn poll_terminal(addr: SocketAddr, job: &str) -> observatory_obs::json::Json {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let (status, _, body) = get(addr, &format!("/v1/jobs/{job}"));
            assert_eq!(status, 200, "{body}");
            let s = jparse(&body).unwrap();
            let state = s.get("state").unwrap().as_str().unwrap();
            if matches!(state, "done" | "failed" | "cancelled") {
                return s;
            }
            assert!(Instant::now() < deadline, "job {job} stuck in '{state}'");
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    #[test]
    fn tables_analyze_job_lifecycle() {
        let (addr, handle, join) = spawn_server(ephemeral());
        // CSV ingest with an explicit table name (part of the identity).
        let csv = "city,pop\nparis,2100000\nlyon,520000\nnice,340000\n";
        let hdr = "Content-Type: text/csv\r\nx-table-name: cities\r\n";
        let (status, _, body) = post_with(addr, "/v1/tables", csv, hdr);
        assert_eq!(status, 201, "{body}");
        let v = jparse(&body).unwrap();
        let table_id = v.get("id").unwrap().as_str().unwrap().to_string();
        assert!(table_id.starts_with("tbl-"), "{table_id}");
        assert_eq!(v.get("name").unwrap().as_str(), Some("cities"));
        assert_eq!(v.get("rows").unwrap().as_f64(), Some(3.0));
        // Re-ingesting identical content is idempotent: 200, same id.
        let (status, _, body) = post_with(addr, "/v1/tables", csv, hdr);
        assert_eq!(status, 200, "{body}");
        assert_eq!(jparse(&body).unwrap().get("id").unwrap().as_str(), Some(table_id.as_str()));

        let req =
            format!(r#"{{"table":"{table_id}","properties":["P1"],"seed":7,"permutations":4}}"#);
        let (status, _, body) = post(addr, "/v1/analyze", &req);
        assert_eq!(status, 202, "{body}");
        let job = jparse(&body).unwrap().get("job").unwrap().as_str().unwrap().to_string();
        assert!(job.starts_with("job-"), "{job}");

        let s = poll_terminal(addr, &job);
        assert_eq!(s.get("state").unwrap().as_str(), Some("done"), "{s:?}");
        assert_eq!(s.get("progress").unwrap().as_f64(), Some(1.0));
        assert!(s.get("stage_us").unwrap().as_str().unwrap().contains("encode="));

        let (status, _, body) = get(addr, &format!("/v1/jobs/{job}/result"));
        assert_eq!(status, 200, "{body}");
        let r = jparse(&body).unwrap();
        let reports = r.get("result").unwrap().get("reports").unwrap().as_array().unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].get("property").unwrap().as_str(), Some("P1"));
        assert!(!reports[0].get("measures").unwrap().as_array().unwrap().is_empty());

        // The liveness probe now carries the jobs plane.
        let (_, _, hb) = get(addr, "/healthz");
        let h = jparse(&hb).unwrap();
        let jobs = h.get("jobs").unwrap();
        assert_eq!(jobs.get("done").unwrap().as_f64(), Some(1.0), "{hb}");
        assert_eq!(jobs.get("tables").unwrap().as_f64(), Some(1.0));
        assert!(h.get("workers").unwrap().as_f64().unwrap() >= 1.0);
        // And /metrics exports the job families.
        let (_, _, mb) = get(addr, "/metrics");
        assert!(mb.contains("observatory_server_jobs_submitted_total 1"), "job counters exported");

        let stats = shutdown_and_join(&handle, join);
        assert_eq!(stats.jobs.submitted, 1);
        assert_eq!(stats.jobs.done, 1);
        assert_eq!(stats.jobs.outstanding(), 0);
    }

    #[test]
    fn unknown_routes_404_json_and_wrong_methods_405_with_allow() {
        let (addr, handle, join) = spawn_server(ephemeral());
        // Unknown path: JSON error envelope, not bare text.
        let (status, head, body) = get(addr, "/v1/nope");
        assert_eq!(status, 404);
        assert!(header_value(&head, "content-type").unwrap().contains("application/json"));
        assert!(jparse(&body).unwrap().get("error").is_some(), "{body}");
        // Known paths with the wrong verb: 405 + honest Allow sets.
        let (status, head, _) = get(addr, "/v1/tables");
        assert_eq!(status, 405);
        assert_eq!(header_value(&head, "allow").as_deref(), Some("POST"));
        let (status, head, _) = send(addr, "DELETE /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 405);
        assert_eq!(header_value(&head, "allow").as_deref(), Some("GET"));
        let (status, head, _) = post(addr, "/v1/jobs/job-00000001", "");
        assert_eq!(status, 405);
        assert_eq!(header_value(&head, "allow").as_deref(), Some("GET, DELETE"));
        // Unknown job id and unknown job sub-path are 404, not 405.
        assert_eq!(get(addr, "/v1/jobs/job-ffffffff").0, 404);
        assert_eq!(get(addr, "/v1/jobs/job-ffffffff/nope").0, 404);
        assert_eq!(send(addr, "DELETE /v1/jobs/job-ffffffff HTTP/1.1\r\nHost: t\r\n\r\n").0, 404);
        shutdown_and_join(&handle, join);
    }

    #[test]
    fn analyze_validates_requests() {
        let (addr, handle, join) = spawn_server(ephemeral());
        // Unknown table id → 404.
        let (status, _, body) =
            post(addr, "/v1/analyze", r#"{"table":"tbl-missing","properties":["P1"]}"#);
        assert_eq!(status, 404, "{body}");
        let (status, _, body) =
            post(addr, "/v1/tables", r#"{"name":"j","columns":[{"header":"a","values":[1,2,3]}]}"#);
        assert_eq!(status, 201, "{body}");
        let id = jparse(&body).unwrap().get("id").unwrap().as_str().unwrap().to_string();
        for (req, frag) in [
            (format!(r#"{{"table":"{id}","properties":["P3"]}}"#), "unsupported property"),
            (format!(r#"{{"table":"{id}","properties":[]}}"#), "must not be empty"),
            (
                format!(r#"{{"table":"{id}","properties":["P1"],"model":"no-such"}}"#),
                "unknown model",
            ),
            (format!(r#"{{"table":"{id}","properties":["P1"],"permutations":1}}"#), "permutations"),
            (format!(r#"{{"table":"{id}","properties":["P1"],"deadline_ms":0}}"#), "deadline_ms"),
            ("{\"properties\":[\"P1\"]}".to_string(), "table"),
        ] {
            let (status, _, body) = post(addr, "/v1/analyze", &req);
            assert_eq!(status, 400, "{req} -> {body}");
            assert!(body.contains(frag), "{req} -> {body}");
        }
        shutdown_and_join(&handle, join);
    }

    #[test]
    fn job_cancellation_and_result_conflict() {
        let (addr, handle, join) = spawn_server(ephemeral());
        // A table big enough that one analysis takes real time, so the
        // second submit is still queued when we cancel it.
        let cols: Vec<String> = (0..6)
            .map(|c| {
                let vals: Vec<String> = (0..30).map(|r| format!("\"v-{c}-{r}\"")).collect();
                format!("{{\"header\":\"c{c}\",\"values\":[{}]}}", vals.join(","))
            })
            .collect();
        let table_json = format!("{{\"name\":\"slow\",\"columns\":[{}]}}", cols.join(","));
        let (status, _, body) = post(addr, "/v1/tables", &table_json);
        assert_eq!(status, 201, "{body}");
        let id = jparse(&body).unwrap().get("id").unwrap().as_str().unwrap().to_string();
        let req = format!(r#"{{"table":"{id}","properties":["P1","P2"],"permutations":24}}"#);
        let (status, _, _) = post(addr, "/v1/analyze", &req);
        assert_eq!(status, 202);
        let (status, _, body) = post(addr, "/v1/analyze", &req);
        assert_eq!(status, 202, "{body}");
        let job_b = jparse(&body).unwrap().get("job").unwrap().as_str().unwrap().to_string();
        // Cancel: 200 when still queued, 202 when the runner already
        // picked it up (then the cancel lands at the next checkpoint).
        let (status, _, body) =
            send(addr, &format!("DELETE /v1/jobs/{job_b} HTTP/1.1\r\nHost: t\r\n\r\n"));
        assert!(status == 200 || status == 202, "{status} {body}");
        let s = poll_terminal(addr, &job_b);
        assert_eq!(s.get("state").unwrap().as_str(), Some("cancelled"), "{s:?}");
        let err = s.get("error").unwrap().as_str().unwrap();
        assert!(err.contains("cancelled"), "{err}");
        // A cancelled job has no result, and cancelling again conflicts.
        let (status, _, body) = get(addr, &format!("/v1/jobs/{job_b}/result"));
        assert_eq!(status, 409, "{body}");
        assert!(body.contains("cancelled"), "{body}");
        let (status, _, _) =
            send(addr, &format!("DELETE /v1/jobs/{job_b} HTTP/1.1\r\nHost: t\r\n\r\n"));
        assert_eq!(status, 409);
        let stats = shutdown_and_join(&handle, join);
        assert_eq!(stats.jobs.submitted, 2);
        assert_eq!(stats.jobs.outstanding(), 0, "drain must never lose an admitted job");
    }

    #[test]
    fn debug_flight_returns_chrome_trace() {
        let (addr, handle, join) = spawn_server(ephemeral());
        // Generate at least one admitted request so the ring has events.
        assert_eq!(post(addr, "/v1/embed", &embed_body(21)).0, 200);
        let (status, _, body) = get(addr, "/debug/flight");
        assert_eq!(status, 200);
        let doc = jparse(&body).expect("flight page is JSON");
        assert!(doc.get("traceEvents").unwrap().as_array().is_some());
        // Wrong method is 405, not 404.
        assert_eq!(post(addr, "/debug/flight", "").0, 405);
        shutdown_and_join(&handle, join);
    }

    /// Read exactly one Content-Length-framed response off a persistent
    /// connection (keep-alive tests can't read to EOF).
    fn read_framed(s: &mut TcpStream) -> (u16, String, String) {
        let mut carry = Vec::new();
        read_framed_carry(s, &mut carry)
    }

    /// Read one Content-Length-framed response; over-read bytes (the start of
    /// the next pipelined response) stay in `carry` for the following call.
    fn read_framed_carry(s: &mut TcpStream, carry: &mut Vec<u8>) -> (u16, String, String) {
        use std::io::Read;
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let header_end = loop {
            if let Some(pos) = carry.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos + 4;
            }
            let mut chunk = [0u8; 1024];
            let n = s.read(&mut chunk).expect("read head");
            assert!(n > 0, "EOF before headers: {:?}", String::from_utf8_lossy(carry));
            carry.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&carry[..header_end]).to_string();
        let cl: usize = header_value(&head, "content-length")
            .and_then(|v| v.parse().ok())
            .expect("content-length on every response");
        while carry.len() < header_end + cl {
            let mut chunk = [0u8; 4096];
            let n = s.read(&mut chunk).expect("read body");
            assert!(n > 0, "EOF mid-body");
            carry.extend_from_slice(&chunk[..n]);
        }
        let status: u16 =
            head.split_whitespace().nth(1).and_then(|v| v.parse().ok()).expect("status line");
        let body = String::from_utf8_lossy(&carry[header_end..header_end + cl]).to_string();
        carry.drain(..header_end + cl);
        (status, head, body)
    }

    /// Block until the peer closes the connection (and assert it does).
    fn expect_eof(s: &mut TcpStream) {
        use std::io::Read;
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut rest = Vec::new();
        match s.read_to_end(&mut rest) {
            Ok(n) => {
                assert_eq!(n, 0, "unexpected trailing bytes: {:?}", String::from_utf8_lossy(&rest))
            }
            Err(e) => panic!("expected clean close, got {e}"),
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn keep_alive_serves_many_requests_on_one_socket() {
        let (addr, handle, join) = spawn_server(ephemeral());
        let mut s = TcpStream::connect(addr).unwrap();
        for i in 0..3 {
            let body = embed_body(40 + i);
            s.write_all(
                format!(
                    "POST /v1/embed HTTP/1.1\r\nHost: t\r\nConnection: keep-alive\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            )
            .unwrap();
            let (status, head, body) = read_framed(&mut s);
            assert_eq!(status, 200, "{body}");
            assert_eq!(header_value(&head, "connection").as_deref(), Some("keep-alive"));
            assert!(header_value(&head, "x-stage-us").is_some(), "embed carries stages");
        }
        // Without the keep-alive token the server closes after answering.
        s.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let (status, head, _) = read_framed(&mut s);
        assert_eq!(status, 200);
        assert_eq!(header_value(&head, "connection").as_deref(), Some("close"));
        expect_eof(&mut s);
        let stats = shutdown_and_join(&handle, join);
        assert!(stats.totals.requests >= 4);
        // Four requests rode a single accepted connection.
        assert_eq!(stats.totals.accepted, 1, "keep-alive must reuse the connection");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn pipelined_requests_are_answered_in_order() {
        let (addr, handle, join) = spawn_server(ephemeral());
        let mut s = TcpStream::connect(addr).unwrap();
        // Three requests in one write; responses must come back in
        // request order even though the middle one crosses the batcher.
        let body = embed_body(50);
        let pipeline = format!(
            "GET /healthz HTTP/1.1\r\nHost: t\r\nx-request-id: first\r\nConnection: keep-alive\r\n\r\n\
             POST /v1/embed HTTP/1.1\r\nHost: t\r\nx-request-id: second\r\nConnection: keep-alive\r\nContent-Length: {}\r\n\r\n{body}\
             GET /healthz HTTP/1.1\r\nHost: t\r\nx-request-id: third\r\n\r\n",
            body.len()
        );
        s.write_all(pipeline.as_bytes()).unwrap();
        let mut rids = Vec::new();
        let mut carry = Vec::new();
        for want in [200u16, 200, 200] {
            let (status, head, body) = read_framed_carry(&mut s, &mut carry);
            assert_eq!(status, want, "{body}");
            rids.push(header_value(&head, "x-request-id").unwrap());
        }
        assert_eq!(rids, ["first", "second", "third"], "responses in request order");
        expect_eof(&mut s);
        shutdown_and_join(&handle, join);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn half_close_after_pipelined_burst_still_serves_all_replies() {
        // Pipeline a burst of embeds, then shut down the client's write
        // half while they are still in flight. EPOLLRDHUP fires while
        // the replies are parked; the reactor must note the EOF without
        // re-firing the event (busy-spin regression) and still deliver
        // every response before closing.
        let (addr, handle, join) = spawn_server(ephemeral());
        let mut s = TcpStream::connect(addr).unwrap();
        const BURST: usize = 6;
        let mut pipeline = String::new();
        for i in 0..BURST {
            let body = embed_body(900 + i as u64);
            pipeline.push_str(&format!(
                "POST /v1/embed HTTP/1.1\r\nHost: t\r\nx-request-id: hc-{i}\r\nConnection: keep-alive\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ));
        }
        s.write_all(pipeline.as_bytes()).unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut carry = Vec::new();
        for i in 0..BURST {
            let (status, head, body) = read_framed_carry(&mut s, &mut carry);
            assert_eq!(status, 200, "reply {i}: {body}");
            assert_eq!(header_value(&head, "x-request-id").as_deref(), Some(&*format!("hc-{i}")));
        }
        expect_eof(&mut s);
        let stats = shutdown_and_join(&handle, join);
        assert!(stats.totals.requests >= BURST as u64);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn connection_header_conformance_over_the_wire() {
        let (addr, handle, join) = spawn_server(ephemeral());
        // HTTP/1.0 → close, even with nothing asked.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET /healthz HTTP/1.0\r\nHost: t\r\n\r\n").unwrap();
        let (status, head, _) = read_framed(&mut s);
        assert_eq!(status, 200);
        assert_eq!(header_value(&head, "connection").as_deref(), Some("close"));
        expect_eof(&mut s);
        // `Connection: keep-alive, close` → close wins.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: keep-alive, close\r\n\r\n")
            .unwrap();
        let (status, head, _) = read_framed(&mut s);
        assert_eq!(status, 200);
        assert_eq!(header_value(&head, "connection").as_deref(), Some("close"));
        expect_eof(&mut s);
        shutdown_and_join(&handle, join);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn oversized_headers_get_431_then_close() {
        let (addr, handle, join) = spawn_server(ephemeral());
        let mut s = TcpStream::connect(addr).unwrap();
        let huge = "x".repeat(http::MAX_HEADER_BYTES + 1024);
        s.write_all(
            format!("GET /healthz HTTP/1.1\r\nHost: t\r\nx-filler: {huge}\r\n\r\n").as_bytes(),
        )
        .unwrap();
        let (status, head, _) = read_framed(&mut s);
        assert_eq!(status, 431);
        assert_eq!(header_value(&head, "connection").as_deref(), Some("close"));
        expect_eof(&mut s);
        shutdown_and_join(&handle, join);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn slow_header_times_out_with_408_then_close() {
        let config = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            header_timeout: Duration::from_millis(100),
            ..ServeConfig::default()
        };
        let (addr, handle, join) = spawn_server(config);
        let mut s = TcpStream::connect(addr).unwrap();
        // A slowloris: some header bytes, then silence.
        s.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nx-tri").unwrap();
        let (status, head, _) = read_framed(&mut s);
        assert_eq!(status, 408);
        assert_eq!(header_value(&head, "connection").as_deref(), Some("close"));
        expect_eof(&mut s);
        let stats = shutdown_and_join(&handle, join);
        assert!(stats.totals.timeouts >= 1, "timeout counter must tick");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn idle_keep_alive_connection_is_reaped() {
        let config = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            idle_timeout: Duration::from_millis(100),
            ..ServeConfig::default()
        };
        let (addr, handle, join) = spawn_server(config);
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: keep-alive\r\n\r\n").unwrap();
        let (status, head, _) = read_framed(&mut s);
        assert_eq!(status, 200);
        assert_eq!(header_value(&head, "connection").as_deref(), Some("keep-alive"));
        // Parked and silent: the idle sweep closes it without a response.
        expect_eof(&mut s);
        let stats = shutdown_and_join(&handle, join);
        assert!(stats.totals.timeouts >= 1, "idle reap must tick the timeout counter");
    }

    #[test]
    fn thread_mode_still_serves_identically() {
        let config = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            net: NetMode::Thread,
            ..ServeConfig::default()
        };
        let (addr, handle, join) = spawn_server(config);
        let (status, _, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        assert!(body.contains("\"net\":\"thread\""), "{body}");
        let (status, _, body) = post(addr, "/v1/embed", &embed_body(60));
        assert_eq!(status, 200, "{body}");
        assert_eq!(get(addr, "/nope").0, 404);
        let stats = shutdown_and_join(&handle, join);
        assert!(stats.totals.requests >= 3);
        assert_eq!(stats.totals.accepted, 3, "thread mode accepts per request");
    }

    #[test]
    fn profile_endpoints_serve_folded_stacks_when_enabled() {
        // The profiler is process-global: this is the only serve test
        // that turns it on, and it stops it again via drain.
        let config = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            profile: true,
            profile_interval: Duration::from_millis(2),
            ..ServeConfig::default()
        };
        let (addr, handle, join) = spawn_server(config);
        // The profiler is started by run() on the server thread; give it
        // a moment rather than racing the spawn.
        let wait = Instant::now();
        while !obs::profiler::is_running() && wait.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(obs::profiler::is_running());
        // Hold a frame on this thread so the sampler deterministically
        // observes at least one non-empty stack during the run.
        let pushed = obs::profiler::push_frame("test", "serve_profile_hold");
        for i in 0..3 {
            assert_eq!(post(addr, "/v1/embed", &embed_body(30 + i)).0, 200);
        }
        std::thread::sleep(Duration::from_millis(20));
        let (status, _, _folded) = get(addr, "/debug/profile");
        assert_eq!(status, 200);
        if pushed {
            obs::profiler::pop_frame();
        }
        let (status, _, _top) = get(addr, "/debug/profile/top");
        assert_eq!(status, 200);
        let stats = shutdown_and_join(&handle, join);
        let report = stats.profile.expect("profile report after drain");
        assert!(report.samples > 0, "sampler ran during the server's lifetime");
    }
}
