//! Server-side metrics: request counters by route/status, shed and
//! deadline counters, batch-size accounting, a request-latency
//! histogram, and per-stage pipeline histograms
//! (`observatory_serve_stage_us{stage=...}`), rendered as Prometheus
//! families alongside the engine's exposition from `runtime::expose`.

use crate::queue::Stages;
use observatory_jobs::{JobCounts, JobTotals};
use observatory_obs::PromBuf;
use observatory_runtime::metrics::{Histogram, HistogramSnapshot, BUCKET_BOUNDS_NS};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Stage label values, aligned with [`Stages::as_array`] (and with
/// `observatory_obs::STAGE_NAMES`, minus the `_us` suffix the family
/// name already carries).
pub const STAGE_LABELS: [&str; 5] = ["queue", "batch_wait", "encode", "store", "write"];

/// Counters for one serving process. All methods take `&self`.
#[derive(Default)]
pub struct ServerMetrics {
    /// (route, status) → count. One short lock per finished request.
    requests: Mutex<BTreeMap<(&'static str, u16), u64>>,
    total: AtomicU64,
    shed: AtomicU64,
    expired: AtomicU64,
    panics: AtomicU64,
    batches: AtomicU64,
    batched_jobs: AtomicU64,
    max_batch: AtomicU64,
    latency: Histogram,
    /// One histogram per pipeline stage, [`STAGE_LABELS`] order.
    stages: [Histogram; 5],
    /// Connections accepted since startup.
    accepted: AtomicU64,
    /// Connections closed by the server's timeout ladder (slow headers,
    /// idle keep-alive).
    timeouts: AtomicU64,
    /// Currently open connections (gauge).
    conns_open: AtomicU64,
    /// Open connections currently carrying a request (gauge;
    /// `open - active` = idle keep-alive connections).
    conns_active: AtomicU64,
}

/// A point-in-time view of the connection gauges and counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// Currently open connections.
    pub open: u64,
    /// Open connections currently carrying a request.
    pub active: u64,
    /// Connections accepted since startup.
    pub accepted: u64,
    /// Connections closed by a server-side timeout.
    pub timeouts: u64,
}

impl ConnStats {
    /// Open connections with no request in flight (keep-alive parking).
    pub fn idle(&self) -> u64 {
        self.open.saturating_sub(self.active)
    }
}

/// Frozen totals, used by the drain report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerTotals {
    /// Requests answered (any route, any status).
    pub requests: u64,
    /// Requests shed with 429 (admission queue full).
    pub shed: u64,
    /// Requests expired with 408 (deadline passed while queued).
    pub expired: u64,
    /// Batches the micro-batcher dispatched.
    pub batches: u64,
    /// Encode jobs carried by those batches.
    pub batched_jobs: u64,
    /// Largest single batch dispatched.
    pub max_batch: u64,
    /// Handler panics recovered by the batcher.
    pub panics: u64,
    /// Connections accepted over the server's lifetime.
    pub accepted: u64,
    /// Connections closed by a server-side timeout (slow headers or
    /// idle keep-alive).
    pub timeouts: u64,
    /// Per-stage timing snapshots, `(stage label, histogram)` in
    /// [`STAGE_LABELS`] order. Fuel for the drain report's p50/p95/p99
    /// table (via `HistogramSnapshot::percentile` and `merge`).
    pub stages: Vec<(&'static str, HistogramSnapshot)>,
}

impl ServerTotals {
    /// Mean dispatched batch size (0 when no batches ran).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_jobs as f64 / self.batches as f64
        }
    }
}

impl ServerMetrics {
    /// A zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one finished request.
    pub fn record_request(&self, route: &'static str, status: u16, latency: Duration) {
        self.total.fetch_add(1, Ordering::Relaxed);
        self.latency.record(latency);
        if status == 429 {
            self.shed.fetch_add(1, Ordering::Relaxed);
        }
        if status == 408 {
            self.expired.fetch_add(1, Ordering::Relaxed);
        }
        let mut map = self.requests.lock().unwrap_or_else(|e| e.into_inner());
        *map.entry((route, status)).or_insert(0) += 1;
    }

    /// Record one dispatched batch of `size` encode jobs.
    pub fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_jobs.fetch_add(size as u64, Ordering::Relaxed);
        self.max_batch.fetch_max(size as u64, Ordering::Relaxed);
    }

    /// Record a batcher-recovered handler panic.
    pub fn record_panic(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one accepted connection.
    pub fn record_accept(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one connection closed by the server's timeout ladder.
    pub fn record_conn_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection opened (pair with [`ServerMetrics::conn_closed`]).
    pub fn conn_opened(&self) {
        self.conns_open.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection closed.
    pub fn conn_closed(&self) {
        self.conns_open.fetch_sub(1, Ordering::Relaxed);
    }

    /// A connection began carrying a request (pair with
    /// [`ServerMetrics::conn_unbusy`]).
    pub fn conn_busy(&self) {
        self.conns_active.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection went idle again.
    pub fn conn_unbusy(&self) {
        self.conns_active.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current connection gauges + lifetime counters.
    pub fn conn_snapshot(&self) -> ConnStats {
        ConnStats {
            open: self.conns_open.load(Ordering::Relaxed),
            active: self.conns_active.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
        }
    }

    /// Record one request's per-stage breakdown.
    pub fn record_stages(&self, s: &Stages) {
        for (h, us) in self.stages.iter().zip(s.as_array()) {
            h.record(Duration::from_micros(us));
        }
    }

    /// Frozen totals.
    pub fn totals(&self) -> ServerTotals {
        ServerTotals {
            requests: self.total.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_jobs: self.batched_jobs.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            stages: STAGE_LABELS
                .iter()
                .zip(&self.stages)
                .map(|(&n, h)| (n, h.snapshot()))
                .collect(),
        }
    }

    /// Render the server families as Prometheus text. Live gauges
    /// (queue depth, in-flight connections, draining flag, job-scheduler
    /// snapshots) are passed in by the caller, which owns them.
    pub fn prometheus_text(
        &self,
        queue_depth: usize,
        queue_capacity: usize,
        inflight: usize,
        draining: bool,
        jobs: JobCounts,
        job_totals: JobTotals,
    ) -> String {
        let mut buf = PromBuf::new();
        buf.family(
            "observatory_server_requests_total",
            "counter",
            "Requests answered, by route and status.",
        );
        {
            let map = self.requests.lock().unwrap_or_else(|e| e.into_inner());
            for (&(route, status), &n) in map.iter() {
                let status = status.to_string();
                buf.sample(
                    "observatory_server_requests_total",
                    &[("route", route), ("status", &status)],
                    n as f64,
                );
            }
        }
        buf.scalar(
            "observatory_server_queue_depth",
            "gauge",
            "Jobs currently waiting in the admission queue.",
            queue_depth as f64,
        );
        buf.scalar(
            "observatory_server_queue_capacity",
            "gauge",
            "Admission queue depth bound (--queue-depth).",
            queue_capacity as f64,
        );
        buf.scalar(
            "observatory_server_inflight_connections",
            "gauge",
            "Connections currently being handled.",
            inflight as f64,
        );
        buf.scalar(
            "observatory_server_draining",
            "gauge",
            "1 while the server is draining, else 0.",
            if draining { 1.0 } else { 0.0 },
        );
        // Connection plane: live gauges by state plus lifetime counters.
        // In thread mode every open connection is active; in epoll mode
        // idle counts parked keep-alive connections.
        let cs = self.conn_snapshot();
        buf.family(
            "observatory_server_connections",
            "gauge",
            "Open connections by state (open = idle + active).",
        );
        for (state, v) in [("open", cs.open), ("idle", cs.idle()), ("active", cs.active)] {
            buf.sample("observatory_server_connections", &[("state", state)], v as f64);
        }
        buf.scalar(
            "observatory_server_accepted_total",
            "counter",
            "Connections accepted since startup.",
            cs.accepted as f64,
        );
        buf.scalar(
            "observatory_server_timeouts_total",
            "counter",
            "Connections closed by the timeout ladder (slow headers, idle keep-alive).",
            cs.timeouts as f64,
        );
        // Analysis-job plane: live scheduler gauges plus monotone
        // admission accounting (submitted must equal done + failed +
        // cancelled after a clean drain).
        buf.scalar(
            "observatory_server_jobs_queued",
            "gauge",
            "Analysis jobs waiting for the runner.",
            jobs.queued as f64,
        );
        buf.scalar(
            "observatory_server_jobs_running",
            "gauge",
            "Analysis jobs currently executing (0 or 1).",
            jobs.running as f64,
        );
        buf.scalar(
            "observatory_server_jobs_capacity",
            "gauge",
            "Job queue bound (--max-jobs).",
            jobs.capacity as f64,
        );
        buf.scalar(
            "observatory_server_jobs_submitted_total",
            "counter",
            "Analysis jobs admitted since startup.",
            job_totals.submitted as f64,
        );
        buf.scalar(
            "observatory_server_jobs_done_total",
            "counter",
            "Analysis jobs completed successfully.",
            job_totals.done as f64,
        );
        buf.scalar(
            "observatory_server_jobs_failed_total",
            "counter",
            "Analysis jobs that ended in failure.",
            job_totals.failed as f64,
        );
        buf.scalar(
            "observatory_server_jobs_cancelled_total",
            "counter",
            "Analysis jobs cancelled before or during execution.",
            job_totals.cancelled as f64,
        );
        buf.scalar(
            "observatory_server_shed_total",
            "counter",
            "Requests shed with 429 because the queue was full.",
            self.shed.load(Ordering::Relaxed) as f64,
        );
        buf.scalar(
            "observatory_server_deadline_expired_total",
            "counter",
            "Requests expired with 408 before being encoded.",
            self.expired.load(Ordering::Relaxed) as f64,
        );
        buf.scalar(
            "observatory_server_handler_panics_total",
            "counter",
            "Encode panics recovered by the batcher.",
            self.panics.load(Ordering::Relaxed) as f64,
        );
        buf.scalar(
            "observatory_server_batches_total",
            "counter",
            "Micro-batches dispatched to the engine.",
            self.batches.load(Ordering::Relaxed) as f64,
        );
        buf.scalar(
            "observatory_server_batched_requests_total",
            "counter",
            "Encode jobs carried by dispatched batches.",
            self.batched_jobs.load(Ordering::Relaxed) as f64,
        );
        buf.scalar(
            "observatory_server_batch_size_max",
            "gauge",
            "Largest batch dispatched this run.",
            self.max_batch.load(Ordering::Relaxed) as f64,
        );
        let lat = self.latency.snapshot();
        buf.histogram_ns(
            "observatory_server_request_latency_seconds",
            "Wall time from accept to response flush.",
            &[],
            &BUCKET_BOUNDS_NS,
            &lat.buckets,
            lat.sum_ns,
            lat.count,
        );
        buf.family(
            "observatory_server_request_latency_quantile_seconds",
            "gauge",
            "Request latency quantiles estimated from the fixed buckets.",
        );
        for (q, v) in [("0.5", lat.p50_ns()), ("0.95", lat.p95_ns()), ("0.99", lat.p99_ns())] {
            buf.sample(
                "observatory_server_request_latency_quantile_seconds",
                &[("quantile", q)],
                v / 1e9,
            );
        }
        // Per-stage pipeline histograms, one labeled child per stage.
        // Stage timings are recorded in microseconds, so the family is
        // rendered in µs (bounds are BUCKET_BOUNDS_NS ÷ 1000).
        buf.family(
            "observatory_serve_stage_us",
            "histogram",
            "Per-request pipeline stage time in microseconds, by stage.",
        );
        for (stage, h) in STAGE_LABELS.iter().zip(&self.stages) {
            let s = h.snapshot();
            let mut cumulative = 0u64;
            for (&bound, &n) in BUCKET_BOUNDS_NS.iter().zip(&s.buckets) {
                cumulative += n;
                let le = if bound == u64::MAX {
                    "+Inf".to_string()
                } else {
                    format!("{}", bound as f64 / 1e3)
                };
                buf.sample(
                    "observatory_serve_stage_us_bucket",
                    &[("stage", stage), ("le", &le)],
                    cumulative as f64,
                );
            }
            buf.sample(
                "observatory_serve_stage_us_sum",
                &[("stage", stage)],
                s.sum_ns as f64 / 1e3,
            );
            buf.sample("observatory_serve_stage_us_count", &[("stage", stage)], s.count as f64);
        }
        buf.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use observatory_obs::prom::validate;

    #[test]
    fn exposition_validates_and_counts() {
        let m = ServerMetrics::new();
        m.record_request("embed", 200, Duration::from_millis(3));
        m.record_request("embed", 429, Duration::from_micros(40));
        m.record_request("healthz", 200, Duration::from_micros(10));
        m.record_request("embed", 408, Duration::from_millis(9));
        m.record_batch(4);
        m.record_batch(2);
        m.record_panic();
        m.record_stages(&Stages {
            queue_us: 12,
            batch_wait_us: 3,
            encode_us: 190,
            store_us: 0,
            write_us: 0,
        });
        // Three connections seen: two still open, one of them active,
        // one closed by a timeout.
        for _ in 0..3 {
            m.record_accept();
            m.conn_opened();
        }
        m.conn_busy();
        m.record_conn_timeout();
        m.conn_closed();
        let jc = JobCounts { queued: 2, running: 1, capacity: 16, ..JobCounts::default() };
        let jt = JobTotals { submitted: 5, done: 3, failed: 1, cancelled: 1 };
        let text = m.prometheus_text(3, 256, 2, false, jc, jt);
        let summary = validate(&text).expect("server exposition must validate");
        for family in [
            "observatory_server_requests_total",
            "observatory_server_connections",
            "observatory_server_accepted_total",
            "observatory_server_timeouts_total",
            "observatory_server_queue_depth",
            "observatory_server_queue_capacity",
            "observatory_server_inflight_connections",
            "observatory_server_draining",
            "observatory_server_jobs_queued",
            "observatory_server_jobs_running",
            "observatory_server_jobs_capacity",
            "observatory_server_jobs_submitted_total",
            "observatory_server_jobs_done_total",
            "observatory_server_jobs_failed_total",
            "observatory_server_jobs_cancelled_total",
            "observatory_server_shed_total",
            "observatory_server_deadline_expired_total",
            "observatory_server_handler_panics_total",
            "observatory_server_batches_total",
            "observatory_server_batched_requests_total",
            "observatory_server_batch_size_max",
            "observatory_server_request_latency_seconds_bucket",
            "observatory_server_request_latency_quantile_seconds",
            "observatory_serve_stage_us_bucket",
            "observatory_serve_stage_us_sum",
            "observatory_serve_stage_us_count",
        ] {
            assert!(summary.has(family), "missing {family}\n{text}");
        }
        assert!(text.contains("route=\"embed\",status=\"200\"} 1"));
        assert!(text.contains("observatory_server_jobs_queued 2"));
        assert!(text.contains("observatory_server_jobs_submitted_total 5"));
        assert!(text.contains("observatory_server_shed_total 1"));
        assert!(text.contains("observatory_server_deadline_expired_total 1"));
        assert!(text.contains("observatory_server_batch_size_max 4"));
        assert!(text.contains("observatory_server_connections{state=\"open\"} 2"));
        assert!(text.contains("observatory_server_connections{state=\"idle\"} 1"));
        assert!(text.contains("observatory_server_connections{state=\"active\"} 1"));
        assert!(text.contains("observatory_server_accepted_total 3"));
        assert!(text.contains("observatory_server_timeouts_total 1"));
        let cs = m.conn_snapshot();
        assert_eq!((cs.open, cs.active, cs.idle()), (2, 1, 1));
        assert_eq!((cs.accepted, cs.timeouts), (3, 1));
        let t = m.totals();
        assert_eq!(t.requests, 4);
        assert_eq!((t.shed, t.expired, t.panics), (1, 1, 1));
        assert_eq!((t.accepted, t.timeouts), (3, 1));
        assert_eq!((t.batches, t.batched_jobs, t.max_batch), (2, 6, 4));
        assert!((t.mean_batch() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn stage_histograms_track_each_stage_independently() {
        let m = ServerMetrics::new();
        m.record_stages(&Stages {
            queue_us: 5,
            batch_wait_us: 2,
            encode_us: 5_000,
            store_us: 0,
            write_us: 0,
        });
        m.record_stages(&Stages {
            queue_us: 7,
            batch_wait_us: 1,
            encode_us: 9_000,
            store_us: 120,
            write_us: 340,
        });
        let t = m.totals();
        assert_eq!(t.stages.len(), 5);
        for (name, snap) in &t.stages {
            assert!(STAGE_LABELS.contains(name));
            assert_eq!(snap.count, 2, "every stage sees every request");
        }
        let encode = &t.stages[2].1;
        assert_eq!(t.stages[2].0, "encode");
        assert_eq!(encode.sum_ns, 14_000_000, "µs recorded as ns");
        assert!(encode.p50_ns() > t.stages[0].1.p50_ns(), "encode dominates queue");
        // The drain report merges stages into one aggregate distribution.
        let mut merged = HistogramSnapshot::default();
        for (_, s) in &t.stages {
            merged.merge(s);
        }
        assert_eq!(merged.count, 10);
        // The exposition carries one child per stage and validates.
        let text = m.prometheus_text(0, 1, 0, false, JobCounts::default(), JobTotals::default());
        validate(&text).expect("stage children validate");
        for stage in STAGE_LABELS {
            assert!(
                text.contains(&format!("observatory_serve_stage_us_count{{stage=\"{stage}\"}} 2")),
                "missing child for {stage}\n{text}"
            );
        }
    }

    #[test]
    fn draining_gauge_flips() {
        let m = ServerMetrics::new();
        let (jc, jt) = (JobCounts::default(), JobTotals::default());
        assert!(m
            .prometheus_text(0, 1, 0, false, jc, jt)
            .contains("observatory_server_draining 0"));
        assert!(m.prometheus_text(0, 1, 0, true, jc, jt).contains("observatory_server_draining 1"));
    }
}
