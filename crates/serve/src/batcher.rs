//! The micro-batcher: the single consumer of the admission queue.
//!
//! One dedicated thread pops dynamically coalesced batches
//! ([`crate::queue::Queue::pop_batch`]), expires jobs whose deadline
//! passed while queued (they are answered 408 and **never encoded** —
//! cancelled work must not burn encode capacity), groups the survivors
//! by model, and hands each group to the shared engine's
//! `encode_batch_timed`, whose results are bit-identical to a serial
//! encode loop at any `--jobs` value. Model adapters are constructed
//! once and cached for the lifetime of the batcher (deterministic weight
//! generation is expensive relative to a small encode).
//!
//! Every reply carries a [`Stages`] breakdown: `queue_us` (admission →
//! pop) and `batch_wait_us` (pop → encode call) are stamped here from
//! monotonic clocks; `encode_us`/`store_us`/`write_us` come from the
//! engine's per-position [`observatory_runtime::EncodeTiming`]. The
//! flight recorder sees an event per terminal outcome (done / expired /
//! panic), and expiry and panic trigger an anomaly dump.
//!
//! A panicking encode is caught with `catch_unwind`: the affected jobs
//! are answered 500 and the batcher keeps serving — combined with the
//! poison-recovering locks in `runtime::cache` and `obs::collector`,
//! one bad table cannot take the server down.

use crate::metrics::ServerMetrics;
use crate::queue::{Job, Queue, Stages};
use crate::JobError;
use observatory_models::registry::model_by_name;
use observatory_models::TableEncoder;
use observatory_obs as obs;
use observatory_obs::flight;
use observatory_obs::flight::FlightKind;
use observatory_runtime::Engine;
use observatory_table::Table;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Batcher parameters (a slice of the server config).
#[derive(Debug, Clone, Copy)]
pub struct BatcherConfig {
    /// Largest batch handed to `encode_batch`.
    pub max_batch: usize,
    /// How long a forming batch waits for stragglers.
    pub batch_delay: Duration,
}

/// Extract a human-readable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "encode panicked".to_string()
    }
}

/// Saturating microsecond conversion for stage stamps.
fn as_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Run the batcher until the queue is closed and fully drained.
pub fn batcher_loop(
    queue: &Queue,
    engine: &Engine,
    metrics: &ServerMetrics,
    config: BatcherConfig,
) {
    let mut models: HashMap<String, Box<dyn TableEncoder>> = HashMap::new();
    while let Some(batch) = queue.pop_batch(config.max_batch, config.batch_delay) {
        if batch.is_empty() {
            continue;
        }
        dispatch(batch, engine, metrics, &mut models);
    }
}

/// Expire, group, and encode one popped batch.
fn dispatch(
    batch: Vec<Job>,
    engine: &Engine,
    metrics: &ServerMetrics,
    models: &mut HashMap<String, Box<dyn TableEncoder>>,
) {
    let popped = Instant::now();
    let mut live: Vec<Job> = Vec::with_capacity(batch.len());
    let mut expired_any = false;
    for job in batch {
        if job.deadline <= popped {
            // Deadline passed while queued: answer 408, never encode.
            // The reply still carries the queue time so the 408 response
            // (and the flight dump) show where the budget went.
            let stages = Stages {
                queue_us: as_us(popped.saturating_duration_since(job.enqueued)),
                ..Stages::default()
            };
            obs::event_with(obs::Level::Debug, "serve", "deadline_expired", || {
                vec![("request", job.id.to_string()), ("rid", job.rid.to_string())]
            });
            flight::record(FlightKind::Expired, &job.rid, stages.as_array(), 408);
            expired_any = true;
            job.reply.send((Err(JobError::DeadlineExpired), stages));
        } else {
            live.push(job);
        }
    }
    if expired_any {
        // A deadline violation is an anomaly: snapshot the recent past.
        flight::dump("deadline");
    }
    if live.is_empty() {
        return;
    }
    metrics.record_batch(live.len());
    // Group by model, preserving first-seen order for determinism.
    let mut order: Vec<String> = Vec::new();
    let mut groups: HashMap<String, Vec<Job>> = HashMap::new();
    for job in live {
        if !groups.contains_key(&job.model) {
            order.push(job.model.clone());
        }
        groups.entry(job.model.clone()).or_default().push(job);
    }
    for name in order {
        let jobs = groups.remove(&name).expect("group exists");
        encode_group(&name, jobs, engine, metrics, models, popped);
    }
}

/// Encode one same-model group and answer every job in it.
fn encode_group(
    name: &str,
    jobs: Vec<Job>,
    engine: &Engine,
    metrics: &ServerMetrics,
    models: &mut HashMap<String, Box<dyn TableEncoder>>,
    popped: Instant,
) {
    let first_parent = jobs.first().and_then(|j| j.span_parent);
    // The batch span lives on the batcher thread; `encode_batch` opens
    // its own span beneath it via thread-local parentage, so the Chrome
    // trace shows request → … → batch → encode_batch → encode.
    let mut span = obs::span(obs::Level::Info, "serve", "batch")
        .with_parent(first_parent)
        .with("model", name)
        .with("requests", jobs.len());
    let ids: Vec<String> = jobs.iter().map(|j| j.id.to_string()).collect();
    span.record("request_ids", ids.join(","));
    let model: &dyn TableEncoder = match models.get(name) {
        Some(m) => m.as_ref(),
        None => match model_by_name(name) {
            Some(m) => {
                models.insert(name.to_string(), m);
                models[name].as_ref()
            }
            None => {
                // Admission validates names against the registry; this is
                // defence in depth for a registry/admission drift.
                for job in jobs {
                    let stages = Stages {
                        queue_us: as_us(popped.saturating_duration_since(job.enqueued)),
                        ..Stages::default()
                    };
                    job.reply.send((
                        Err(JobError::Internal(format!(
                            "model '{name}' disappeared from the registry"
                        ))),
                        stages,
                    ));
                }
                return;
            }
        },
    };
    let mut tables: Vec<Table> = Vec::with_capacity(jobs.len());
    // (reply, rid, enqueued) per position, aligned with `tables`.
    let mut meta = Vec::with_capacity(jobs.len());
    for j in jobs {
        tables.push(j.table);
        meta.push((j.reply, j.rid, j.enqueued));
    }
    let encode_start = Instant::now();
    let batch_wait_us = as_us(encode_start.saturating_duration_since(popped));
    let result = catch_unwind(AssertUnwindSafe(|| engine.encode_batch_timed(model, &tables)));
    match result {
        Ok((encodings, timings)) => {
            for (((reply, rid, enqueued), enc), t) in meta.into_iter().zip(encodings).zip(timings) {
                let stages = Stages {
                    queue_us: as_us(popped.saturating_duration_since(enqueued)),
                    batch_wait_us,
                    encode_us: t.encode_us,
                    store_us: t.store_us,
                    write_us: t.write_us,
                };
                flight::record(FlightKind::Done, &rid, stages.as_array(), 200);
                reply.send((Ok(enc), stages));
            }
        }
        Err(payload) => {
            let msg = panic_message(payload);
            metrics.record_panic();
            span.record("panicked", &msg);
            obs::event_with(obs::Level::Error, "serve", "encode_panic", || {
                vec![("message", msg.clone())]
            });
            for (reply, rid, enqueued) in meta {
                let stages = Stages {
                    queue_us: as_us(popped.saturating_duration_since(enqueued)),
                    batch_wait_us,
                    ..Stages::default()
                };
                flight::record(FlightKind::Panic, &rid, stages.as_array(), 500);
                reply.send((Err(JobError::Internal(msg.clone())), stages));
            }
            // A caught handler panic is an anomaly: dump the flight ring.
            flight::dump("panic");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::{Pushed, Reply};
    use observatory_runtime::EngineConfig;
    use observatory_table::{Column, Value};
    use std::sync::mpsc;

    fn table(tag: i64) -> Table {
        Table::new(
            format!("t{tag}"),
            vec![
                Column::new("id", (0..3).map(|i| Value::Int(i + tag)).collect()),
                Column::new("name", (0..3).map(|i| Value::text(format!("r{i}-{tag}"))).collect()),
            ],
        )
    }

    fn push_job(
        queue: &Queue,
        id: u64,
        model: &str,
        table: Table,
        deadline: Instant,
    ) -> mpsc::Receiver<Reply> {
        let (tx, rx) = mpsc::channel();
        let job = Job {
            id,
            rid: format!("r{id}").into(),
            model: model.to_string(),
            table,
            enqueued: Instant::now(),
            deadline,
            reply: tx.into(),
            span_parent: None,
        };
        let want_depth = queue.len() + 1;
        assert_eq!(queue.push(job), Pushed::Ok { depth: want_depth });
        rx
    }

    /// Drive the batcher over whatever is queued, then close and drain.
    fn run_drained(queue: &Queue, engine: &Engine, metrics: &ServerMetrics, max_batch: usize) {
        queue.close();
        batcher_loop(
            queue,
            engine,
            metrics,
            BatcherConfig { max_batch, batch_delay: Duration::ZERO },
        );
    }

    #[test]
    fn batched_replies_match_serial_encode_bitwise() {
        let engine = Engine::new(EngineConfig { jobs: 2, cache_bytes: 1 << 22 });
        let reference_engine = Engine::new(EngineConfig::serial_uncached());
        let queue = Queue::new(64);
        let metrics = ServerMetrics::new();
        let rxs: Vec<_> =
            (0..10).map(|i| push_job(&queue, i, "bert", table(i as i64), far())).collect();
        run_drained(&queue, &engine, &metrics, 4);
        let model = model_by_name("bert").unwrap();
        for (i, rx) in rxs.into_iter().enumerate() {
            let (result, _stages) = rx.try_recv().expect("reply present");
            let enc = result.expect("encode ok");
            let want = reference_engine.encode_table(model.as_ref(), &table(i as i64));
            assert_eq!(enc.embeddings, want.embeddings, "request {i} drifted from serial");
        }
        assert!(metrics.totals().batches >= 3, "10 jobs at max_batch 4 → >= 3 batches");
    }

    fn far() -> Instant {
        Instant::now() + Duration::from_secs(600)
    }

    #[test]
    fn expired_jobs_answered_408_and_never_encoded() {
        let engine = Engine::new(EngineConfig { jobs: 1, cache_bytes: 0 });
        let queue = Queue::new(8);
        let metrics = ServerMetrics::new();
        let past = Instant::now() - Duration::from_millis(1);
        let rx_dead = push_job(&queue, 1, "bert", table(1), past);
        let rx_live = push_job(&queue, 2, "bert", table(2), far());
        run_drained(&queue, &engine, &metrics, 8);
        let (dead, _) = rx_dead.try_recv().unwrap();
        assert!(matches!(dead, Err(JobError::DeadlineExpired)));
        assert!(rx_live.try_recv().unwrap().0.is_ok());
        // Only the live job was encoded.
        assert_eq!(engine.metrics_snapshot().encodes, 1, "expired work must not be encoded");
    }

    #[test]
    fn replies_carry_stage_breakdown() {
        let engine = Engine::new(EngineConfig { jobs: 1, cache_bytes: 1 << 22 });
        let queue = Queue::new(8);
        let metrics = ServerMetrics::new();
        let rx_cold = push_job(&queue, 1, "bert", table(7), far());
        let rx_warm = push_job(&queue, 2, "bert", table(7), far());
        run_drained(&queue, &engine, &metrics, 1);
        let (cold, cold_stages) = rx_cold.try_recv().unwrap();
        assert!(cold.is_ok());
        assert!(cold_stages.encode_us > 0, "cold encode spends model time");
        let (warm, warm_stages) = rx_warm.try_recv().unwrap();
        assert!(warm.is_ok());
        assert_eq!(warm_stages.encode_us, 0, "cache hit skips the model");
        assert_eq!(warm_stages.as_array()[2..], [0, 0, 0], "hit has no encode/store/write time");
    }

    #[test]
    fn mixed_model_batch_groups_correctly() {
        let engine = Engine::new(EngineConfig { jobs: 1, cache_bytes: 0 });
        let queue = Queue::new(8);
        let metrics = ServerMetrics::new();
        let rx_a = push_job(&queue, 1, "bert", table(5), far());
        let rx_b = push_job(&queue, 2, "roberta", table(5), far());
        let rx_c = push_job(&queue, 3, "bert", table(6), far());
        run_drained(&queue, &engine, &metrics, 8);
        let a = rx_a.try_recv().unwrap().0.unwrap();
        let b = rx_b.try_recv().unwrap().0.unwrap();
        let c = rx_c.try_recv().unwrap().0.unwrap();
        assert_ne!(a.embeddings, b.embeddings, "different models differ on the same table");
        assert_ne!(a.embeddings, c.embeddings, "different tables differ under one model");
        let s = engine.metrics_snapshot();
        assert_eq!(s.encodes, 3);
        assert_eq!(s.batches, 2, "one engine batch per model group");
    }

    #[test]
    fn unknown_model_is_answered_not_dropped() {
        // Admission normally filters these; the batcher must still answer
        // rather than hang the connection if one slips through.
        let engine = Engine::new(EngineConfig { jobs: 1, cache_bytes: 0 });
        let queue = Queue::new(4);
        let metrics = ServerMetrics::new();
        let rx = push_job(&queue, 1, "no-such-model", table(1), far());
        run_drained(&queue, &engine, &metrics, 4);
        assert!(matches!(rx.try_recv().unwrap().0, Err(JobError::Internal(_))));
    }
}
