//! Zero-dep epoll/eventfd bindings, declared `extern "C"` against the
//! libc that `std` already links — the same idiom as the SIGTERM hook in
//! [`crate::signal`] and the mmap wrapper in `observatory-store`. Only
//! the handful of calls the reactor needs are bound; everything else
//! (nonblocking sockets, accept, read/write on streams) goes through
//! `std::net`.
//!
//! Linux-only: on other targets [`supported`] returns `false` and the
//! server falls back to the thread-per-connection path.

/// Whether the epoll reactor can run on this target.
pub fn supported() -> bool {
    cfg!(target_os = "linux")
}

#[cfg(target_os = "linux")]
pub use imp::{
    pin_to_core, Epoll, EpollEvent, WakeFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP,
};

#[cfg(target_os = "linux")]
mod imp {
    use std::io;
    use std::os::raw::{c_int, c_void};

    // The kernel packs struct epoll_event *only on x86_64* (a 12-byte
    // record, data at offset 4); every other architecture uses natural
    // alignment (16 bytes, data at offset 8). Mirroring the right
    // layout per arch is what keeps the raw syscall ABI-correct —
    // getting it wrong means epoll_wait writes past the Vec's stride.
    /// One readiness event: an interest mask and the caller's token.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        events: u32,
        data: u64,
    }

    /// One readiness event: an interest mask and the caller's token.
    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        events: u32,
        _pad: u32,
        data: u64,
    }

    // Compile-time guard against drifting from the kernel ABI.
    const _: () = assert!(
        std::mem::size_of::<EpollEvent>() == if cfg!(target_arch = "x86_64") { 12 } else { 16 },
        "EpollEvent must match the kernel's struct epoll_event layout"
    );

    impl EpollEvent {
        /// An event record with the given interest mask and token.
        pub fn new(events: u32, data: u64) -> EpollEvent {
            #[cfg(target_arch = "x86_64")]
            {
                EpollEvent { events, data }
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                EpollEvent { events, _pad: 0, data }
            }
        }

        /// Readiness bits (`EPOLLIN | ...`).
        pub fn events(&self) -> u32 {
            self.events
        }

        /// Caller-chosen token, returned verbatim by `epoll_wait`.
        pub fn data(&self) -> u64 {
            self.data
        }
    }

    /// Readable.
    pub const EPOLLIN: u32 = 0x001;
    /// Writable.
    pub const EPOLLOUT: u32 = 0x004;
    /// Error condition.
    pub const EPOLLERR: u32 = 0x008;
    /// Hangup.
    pub const EPOLLHUP: u32 = 0x010;
    /// Peer shut down its write half.
    pub const EPOLLRDHUP: u32 = 0x2000;
    /// Kernel-level accept sharding (one waiter woken per event); on
    /// kernels without it the add falls back to a plain level-triggered
    /// interest, which is merely a thundering herd, not a bug.
    const EPOLLEXCLUSIVE: u32 = 1 << 28;

    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EFD_CLOEXEC: c_int = 0o2000000;
    const EFD_NONBLOCK: c_int = 0o4000;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn eventfd(initval: u32, flags: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
        fn sched_setaffinity(pid: c_int, cpusetsize: usize, mask: *const u64) -> c_int;
    }

    /// An epoll instance (closed on drop).
    pub struct Epoll {
        fd: c_int,
    }

    impl Epoll {
        /// A fresh close-on-exec epoll instance.
        pub fn new() -> io::Result<Epoll> {
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Epoll { fd })
        }

        fn ctl(&self, op: c_int, fd: i32, events: u32, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent::new(events, token);
            let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Register `fd` with the given interest mask and token.
        pub fn add(&self, fd: i32, events: u32, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, events, token)
        }

        /// Register a listener with `EPOLLEXCLUSIVE` accept sharding,
        /// falling back to a plain shared interest on old kernels.
        pub fn add_listener(&self, fd: i32, token: u64) -> io::Result<()> {
            match self.ctl(EPOLL_CTL_ADD, fd, EPOLLIN | EPOLLEXCLUSIVE, token) {
                Ok(()) => Ok(()),
                Err(_) => self.ctl(EPOLL_CTL_ADD, fd, EPOLLIN, token),
            }
        }

        /// Change the interest mask for a registered `fd`.
        pub fn modify(&self, fd: i32, events: u32, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, events, token)
        }

        /// Deregister `fd`.
        pub fn del(&self, fd: i32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Wait up to `timeout_ms` for readiness; fills `events` and
        /// returns how many fired. EINTR surfaces as 0 events.
        pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
            let n = unsafe {
                epoll_wait(self.fd, events.as_mut_ptr(), events.len() as c_int, timeout_ms)
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(err);
            }
            Ok(n as usize)
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            unsafe { close(self.fd) };
        }
    }

    /// An eventfd wake handle: other threads [`WakeFd::wake`] it; the
    /// owning event loop registers [`WakeFd::fd`] for `EPOLLIN` and
    /// [`WakeFd::drain`]s on wakeup.
    pub struct WakeFd {
        fd: c_int,
    }

    impl WakeFd {
        /// A fresh nonblocking eventfd.
        pub fn new() -> io::Result<WakeFd> {
            let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(WakeFd { fd })
        }

        /// The raw fd, for epoll registration.
        pub fn fd(&self) -> i32 {
            self.fd
        }

        /// Ring the eventfd (adds 1 to its counter). Safe from any
        /// thread; an EAGAIN on a saturated counter still leaves the fd
        /// readable, so the wakeup is never lost.
        pub fn wake(&self) {
            let one: u64 = 1;
            unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
        }

        /// Clear the counter so the next wake fires a fresh event.
        pub fn drain(&self) {
            let mut buf: u64 = 0;
            unsafe { read(self.fd, (&mut buf as *mut u64).cast(), 8) };
        }
    }

    impl Drop for WakeFd {
        fn drop(&mut self) {
            unsafe { close(self.fd) };
        }
    }

    // WakeFd is shared behind an Arc between the shard (drain) and the
    // mailbox wake hook (write); both calls are thread-safe syscalls.
    unsafe impl Send for WakeFd {}
    unsafe impl Sync for WakeFd {}

    /// Best-effort pin of the calling thread to one CPU. Returns whether
    /// the kernel accepted the mask; failure (e.g. restricted cpusets)
    /// is harmless — the shard just stays migratable.
    pub fn pin_to_core(core: usize) -> bool {
        // cpu_set_t is a 1024-bit mask = 16 u64 words.
        let mut mask = [0u64; 16];
        let word = core / 64;
        if word >= mask.len() {
            return false;
        }
        mask[word] = 1u64 << (core % 64);
        unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) == 0 }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn wakefd_roundtrip_through_epoll() {
            let ep = Epoll::new().unwrap();
            let wk = WakeFd::new().unwrap();
            ep.add(wk.fd(), EPOLLIN, 42).unwrap();
            let mut events = [EpollEvent::new(0, 0); 4];
            // Nothing pending: times out empty.
            assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
            wk.wake();
            wk.wake();
            let n = ep.wait(&mut events, 1000).unwrap();
            assert_eq!(n, 1);
            let (ev, data) = (events[0].events(), events[0].data());
            assert_ne!(ev & EPOLLIN, 0);
            assert_eq!(data, 42);
            wk.drain();
            assert_eq!(ep.wait(&mut events, 0).unwrap(), 0, "drained eventfd is quiet");
            // Interest can be rewritten and removed.
            ep.modify(wk.fd(), EPOLLIN | EPOLLOUT, 43).unwrap();
            ep.del(wk.fd()).unwrap();
        }

        #[test]
        fn pin_to_core_zero_is_accepted() {
            // Core 0 always exists; a restricted cpuset may still refuse,
            // so only assert the call does not crash.
            let _ = pin_to_core(0);
        }
    }
}
