//! Bounded admission queue between connection handlers and the
//! micro-batcher.
//!
//! Admission control is the queue's whole job: it has a hard depth bound
//! (set by `--queue-depth`), and [`Queue::push`] never blocks — when the
//! queue is full the caller gets [`Pushed::Full`] and sheds the request
//! with a `429 Retry-After`, which keeps tail latency bounded instead of
//! letting an overloaded server accumulate an unbounded backlog. During
//! drain the queue is [`Queue::close`]d: new pushes are refused
//! ([`Pushed::Closed`] → 503) while [`Queue::pop_batch`] keeps returning
//! the already-admitted jobs until the queue is empty, so every admitted
//! request is answered before the process exits.
//!
//! [`Queue::pop_batch`] implements the *dynamic micro-batching* policy:
//! it blocks for the first job, then keeps collecting until either
//! `max_batch` jobs are in hand or `batch_delay` has elapsed since the
//! first pop — under load batches fill instantly (no added latency), and
//! a lone request waits at most one delay window.

use crate::JobError;
use observatory_models::ModelEncoding;
use observatory_table::Table;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// The batcher's reply to one request: the shared encoding on success,
/// always paired with the per-stage timing breakdown (even failures
/// carry what was measured before the failure — a 408 still reports how
/// long the job sat in the queue).
pub type Reply = (Result<Arc<ModelEncoding>, JobError>, Stages);

/// Per-stage wall timings for one request, in microseconds. Field order
/// matches [`observatory_obs::STAGE_NAMES`]; [`Stages::as_array`]
/// produces the flight-recorder layout.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stages {
    /// Admission (`Queue::push`) to batch pop.
    pub queue_us: u64,
    /// Batch pop to the group's encode call (expiry sweep + grouping).
    pub batch_wait_us: u64,
    /// Model forward pass (0 on any cache hit).
    pub encode_us: u64,
    /// Tier-2 store read attempt (0 when the LRU hit or no store).
    pub store_us: u64,
    /// Tier-2 write-through (0 on hits or no store).
    pub write_us: u64,
}

impl Stages {
    /// The five timings in [`observatory_obs::STAGE_NAMES`] order.
    pub fn as_array(&self) -> [u64; 5] {
        [self.queue_us, self.batch_wait_us, self.encode_us, self.store_us, self.write_us]
    }

    /// Sum of all stage timings, in microseconds.
    pub fn total_us(&self) -> u64 {
        self.as_array().iter().fold(0u64, |a, &v| a.saturating_add(v))
    }

    /// Compact `x-stage-us` header value:
    /// `queue=12;batch_wait=3;encode=190;store=0;write=0`.
    pub fn header_value(&self) -> String {
        format!(
            "queue={};batch_wait={};encode={};store={};write={}",
            self.queue_us, self.batch_wait_us, self.encode_us, self.store_us, self.write_us
        )
    }
}

/// Where the batcher's reply for one job goes.
///
/// The legacy thread path parks its connection thread on an mpsc
/// receiver ([`ReplyTo::Channel`]). The epoll reactor cannot block, so
/// its jobs carry a [`ReplyTo::Mailbox`]: the batcher deposits the reply
/// in the owning shard's completion mailbox and rings its eventfd, and
/// the shard finishes the response on its next wakeup.
pub enum ReplyTo {
    /// Blocking path: a per-request mpsc channel.
    Channel(mpsc::Sender<Reply>),
    /// Reactor path: the shard's completion mailbox plus an opaque
    /// connection token (slot + generation) routing the reply back to
    /// the right connection.
    Mailbox(Arc<Mailbox>, u64),
}

impl ReplyTo {
    /// Deliver the reply. Delivery failures (receiver dropped) are
    /// swallowed exactly like `mpsc::Sender::send` call sites did: the
    /// requester gave up; the work is already done.
    pub fn send(&self, reply: Reply) {
        match self {
            ReplyTo::Channel(tx) => {
                let _ = tx.send(reply);
            }
            ReplyTo::Mailbox(mb, token) => mb.push(*token, reply),
        }
    }
}

impl From<mpsc::Sender<Reply>> for ReplyTo {
    fn from(tx: mpsc::Sender<Reply>) -> Self {
        ReplyTo::Channel(tx)
    }
}

/// A shard's completion mailbox: batcher threads deposit `(token,
/// reply)` pairs and invoke the wake hook (an eventfd write on Linux) so
/// the shard's `epoll_wait` returns and drains the box.
pub struct Mailbox {
    items: Mutex<Vec<(u64, Reply)>>,
    wake: Box<dyn Fn() + Send + Sync>,
}

impl Mailbox {
    /// A mailbox whose `wake` hook interrupts the owning event loop.
    pub fn new(wake: Box<dyn Fn() + Send + Sync>) -> Arc<Self> {
        Arc::new(Self { items: Mutex::new(Vec::new()), wake })
    }

    /// Deposit one completion and wake the owner.
    pub fn push(&self, token: u64, reply: Reply) {
        self.items.lock().unwrap_or_else(|e| e.into_inner()).push((token, reply));
        (self.wake)();
    }

    /// Take everything deposited so far.
    pub fn drain(&self) -> Vec<(u64, Reply)> {
        std::mem::take(&mut *self.items.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

/// One admitted encode request, waiting in the queue.
pub struct Job {
    /// Server-assigned request id (monotone; used in traces).
    pub id: u64,
    /// Client-visible request id: the validated `x-request-id` header
    /// value, or a generated `obs-{id}` when the client sent none.
    pub rid: Arc<str>,
    /// Registry model name, validated against the zoo before admission.
    pub model: String,
    /// The table to encode.
    pub table: Table,
    /// Admission time.
    pub enqueued: Instant,
    /// Absolute deadline; jobs still queued past it are expired (408)
    /// without ever being encoded.
    pub deadline: Instant,
    /// Where the batcher's answer goes (blocking channel or shard
    /// mailbox).
    pub reply: ReplyTo,
    /// Span id of the request's root span, for cross-thread trace edges.
    pub span_parent: Option<u64>,
}

/// Outcome of an admission attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum Pushed {
    /// Admitted; `depth` is the queue length after the push.
    Ok {
        /// Queue length after the push.
        depth: usize,
    },
    /// Queue at capacity — shed (429).
    Full,
    /// Server draining — refused (503).
    Closed,
}

struct State {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// Bounded, closable MPSC queue with batch-coalescing pop.
pub struct Queue {
    state: Mutex<State>,
    cond: Condvar,
    depth: usize,
    /// Mirror of the queue length for lock-free gauge reads.
    len: AtomicUsize,
}

impl Queue {
    /// A queue admitting at most `depth` jobs (`depth >= 1`).
    pub fn new(depth: usize) -> Self {
        Self {
            state: Mutex::new(State { jobs: VecDeque::new(), closed: false }),
            cond: Condvar::new(),
            depth: depth.max(1),
            len: AtomicUsize::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        // Recover from poisoning: the state is a request buffer; a
        // panicking thread must not wedge admission for the whole server.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Configured depth bound.
    pub fn capacity(&self) -> usize {
        self.depth
    }

    /// Current queue length (approximate under concurrency).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking admission attempt.
    pub fn push(&self, job: Job) -> Pushed {
        let mut s = self.lock();
        if s.closed {
            return Pushed::Closed;
        }
        if s.jobs.len() >= self.depth {
            return Pushed::Full;
        }
        s.jobs.push_back(job);
        let depth = s.jobs.len();
        self.len.store(depth, Ordering::Relaxed);
        drop(s);
        self.cond.notify_one();
        Pushed::Ok { depth }
    }

    /// Refuse new admissions; already-queued jobs remain poppable.
    pub fn close(&self) {
        self.lock().closed = true;
        self.cond.notify_all();
    }

    /// Whether [`Queue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Block until at least one job is available, then coalesce up to
    /// `max_batch` jobs, waiting at most `batch_delay` after the first
    /// pop for stragglers. Returns `None` exactly once the queue is
    /// closed *and* empty — the batcher's exit signal. When the queue is
    /// closed the delay window is skipped so drain completes quickly.
    pub fn pop_batch(&self, max_batch: usize, batch_delay: Duration) -> Option<Vec<Job>> {
        let max_batch = max_batch.max(1);
        let mut s = self.lock();
        loop {
            if !s.jobs.is_empty() {
                break;
            }
            if s.closed {
                return None;
            }
            let (guard, _timeout) = self
                .cond
                .wait_timeout(s, Duration::from_millis(50))
                .unwrap_or_else(|e| e.into_inner());
            s = guard;
        }
        let mut batch = Vec::with_capacity(max_batch.min(s.jobs.len()));
        while batch.len() < max_batch {
            match s.jobs.pop_front() {
                Some(j) => batch.push(j),
                None => break,
            }
        }
        if batch.len() < max_batch && !batch_delay.is_zero() && !s.closed {
            let window_end = Instant::now() + batch_delay;
            loop {
                let now = Instant::now();
                if now >= window_end || batch.len() >= max_batch || s.closed {
                    break;
                }
                let (guard, _timeout) =
                    self.cond.wait_timeout(s, window_end - now).unwrap_or_else(|e| e.into_inner());
                s = guard;
                while batch.len() < max_batch {
                    match s.jobs.pop_front() {
                        Some(j) => batch.push(j),
                        None => break,
                    }
                }
            }
        }
        self.len.store(s.jobs.len(), Ordering::Relaxed);
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use observatory_table::{Column, Value};
    use std::sync::Arc;

    fn job(id: u64) -> (Job, mpsc::Receiver<Reply>) {
        let (tx, rx) = mpsc::channel();
        let table =
            Table::new(format!("t{id}"), vec![Column::new("c", vec![Value::Int(id as i64)])]);
        let now = Instant::now();
        let j = Job {
            id,
            rid: format!("r{id}").into(),
            model: "bert".into(),
            table,
            enqueued: now,
            deadline: now + Duration::from_secs(60),
            reply: tx.into(),
            span_parent: None,
        };
        (j, rx)
    }

    #[test]
    fn push_until_full_then_sheds() {
        let q = Queue::new(2);
        let (j1, _r1) = job(1);
        let (j2, _r2) = job(2);
        let (j3, _r3) = job(3);
        assert_eq!(q.push(j1), Pushed::Ok { depth: 1 });
        assert_eq!(q.push(j2), Pushed::Ok { depth: 2 });
        assert_eq!(q.push(j3), Pushed::Full);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn closed_queue_refuses_but_drains() {
        let q = Queue::new(4);
        let (j1, _r1) = job(1);
        assert!(matches!(q.push(j1), Pushed::Ok { .. }));
        q.close();
        let (j2, _r2) = job(2);
        assert_eq!(q.push(j2), Pushed::Closed);
        // Already-admitted jobs still drain...
        let batch = q.pop_batch(8, Duration::from_millis(50)).unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].id, 1);
        // ...and then the queue reports exhaustion.
        assert!(q.pop_batch(8, Duration::ZERO).is_none());
    }

    #[test]
    fn pop_coalesces_up_to_max_batch() {
        let q = Queue::new(16);
        let mut rxs = Vec::new();
        for i in 0..5 {
            let (j, r) = job(i);
            assert!(matches!(q.push(j), Pushed::Ok { .. }));
            rxs.push(r);
        }
        let batch = q.pop_batch(3, Duration::ZERO).unwrap();
        assert_eq!(batch.iter().map(|j| j.id).collect::<Vec<_>>(), vec![0, 1, 2]);
        let batch = q.pop_batch(3, Duration::ZERO).unwrap();
        assert_eq!(batch.iter().map(|j| j.id).collect::<Vec<_>>(), vec![3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn delay_window_collects_stragglers() {
        let q = Arc::new(Queue::new(16));
        let (j, _r) = job(0);
        assert!(matches!(q.push(j), Pushed::Ok { .. }));
        let q2 = Arc::clone(&q);
        let feeder = std::thread::spawn(move || {
            // Arrives inside the 200ms delay window.
            std::thread::sleep(Duration::from_millis(30));
            let (j, r) = job(1);
            assert!(matches!(q2.push(j), Pushed::Ok { .. }));
            r
        });
        let batch = q.pop_batch(4, Duration::from_millis(200)).unwrap();
        let _r = feeder.join().unwrap();
        assert_eq!(batch.len(), 2, "straggler joined the forming batch");
    }

    #[test]
    fn full_batch_returns_without_waiting() {
        let q = Queue::new(16);
        let mut rxs = Vec::new();
        for i in 0..4 {
            let (j, r) = job(i);
            assert!(matches!(q.push(j), Pushed::Ok { .. }));
            rxs.push(r);
        }
        let start = Instant::now();
        let batch = q.pop_batch(4, Duration::from_secs(5)).unwrap();
        assert_eq!(batch.len(), 4);
        assert!(start.elapsed() < Duration::from_secs(1), "no delay once the batch is full");
    }

    #[test]
    fn blocking_pop_wakes_on_push() {
        let q = Arc::new(Queue::new(4));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || q2.pop_batch(2, Duration::ZERO).map(|b| b.len()));
        std::thread::sleep(Duration::from_millis(20));
        let (j, _r) = job(9);
        assert!(matches!(q.push(j), Pushed::Ok { .. }));
        assert_eq!(popper.join().unwrap(), Some(1));
    }

    #[test]
    fn mailbox_deposits_wake_and_drain() {
        use std::sync::atomic::AtomicUsize;
        let wakes = Arc::new(AtomicUsize::new(0));
        let w = Arc::clone(&wakes);
        let mb = Mailbox::new(Box::new(move || {
            w.fetch_add(1, Ordering::SeqCst);
        }));
        let sink = ReplyTo::Mailbox(Arc::clone(&mb), 7);
        sink.send((Err(crate::JobError::DeadlineExpired), Stages::default()));
        sink.send((Err(crate::JobError::Internal("x".into())), Stages::default()));
        assert_eq!(wakes.load(Ordering::SeqCst), 2, "every deposit rings the wake hook");
        let got = mb.drain();
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|(tok, _)| *tok == 7));
        assert!(mb.drain().is_empty(), "drain takes everything");
    }

    #[test]
    fn close_wakes_blocked_pop() {
        let q = Arc::new(Queue::new(4));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || q2.pop_batch(2, Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(popper.join().unwrap().is_none(), "close unblocks an idle batcher");
    }
}
