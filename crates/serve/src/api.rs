//! Wire schema of the service: JSON request parsing (through
//! `observatory-obs`'s zero-dependency parser) and response rendering.
//!
//! ## `POST /v1/embed`
//!
//! ```json
//! {
//!   "model": "bert",
//!   "level": "table" | "column" | "row" | "cell",
//!   "table": {"name": "t", "columns": [{"header": "id", "values": [1, "a", null]}]},
//!   "id": "optional client correlation id, echoed back"
//! }
//! ```
//!
//! Cell values map deterministically: JSON strings → text, integral
//! numbers in the exact-`f64` integer range → ints, other numbers →
//! floats, `null` → null, booleans → bools. This mirrors what the CSV
//! loader would infer for the same lexical values, so a table served
//! over the wire fingerprints identically to the same table on disk.
//!
//! ## `POST /v1/knn`
//!
//! ```json
//! {"k": 3, "items": [{"key": "a", "vector": [..]}], "queries": [[..]],
//!  "exclude": ["a"],
//!  "mode": "flat" | "ann", "ef": 64, "shards": 4, "corpus": false}
//! ```
//!
//! `exclude[i]` (optional) is the key excluded from query `i`'s results
//! (self-match suppression, mirrors `KnnIndex::query`). `mode`
//! (default `"flat"`) selects the exact scan or the sharded HNSW index;
//! `ef` and `shards` tune the ANN path and are rejected under
//! `"mode":"flat"` so a typo cannot silently degrade an exact request.
//! `"corpus":true` queries the server's warm-started store-backed index
//! (keys are content fingerprints) instead of inline `items`.

use observatory_models::ModelEncoding;
use observatory_obs::json::{escape, parse, Json};
use observatory_search::ann::{AnnIndex, HnswConfig, SearchParams, ShardedHnsw};
use observatory_search::knn::KnnIndex;
use observatory_table::{Column, Table, Value};

/// Hard cap on cells per served table: bounds worst-case encode cost per
/// admitted request (oversize → 413).
pub const MAX_CELLS: usize = 100_000;

/// Which readout of the encoding the response carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// One table vector.
    Table,
    /// One vector per column.
    Column,
    /// One vector per row.
    Row,
    /// One vector per cell, row-major.
    Cell,
}

impl Level {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Table => "table",
            Level::Column => "column",
            Level::Row => "row",
            Level::Cell => "cell",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        match s {
            "table" => Some(Level::Table),
            "column" => Some(Level::Column),
            "row" => Some(Level::Row),
            "cell" => Some(Level::Cell),
            _ => None,
        }
    }
}

/// A parsed `/v1/embed` request.
#[derive(Debug, Clone)]
pub struct EmbedRequest {
    /// Registry model name (validated against the zoo by the server).
    pub model: String,
    /// Requested readout level.
    pub level: Level,
    /// The table to encode.
    pub table: Table,
    /// Client correlation id, echoed in the response.
    pub id: Option<String>,
}

/// Why an embed request failed to parse.
#[derive(Debug, PartialEq, Eq)]
pub enum ApiError {
    /// Malformed JSON or schema violation → 400.
    Bad(String),
    /// Table exceeds [`MAX_CELLS`] → 413.
    TooLarge,
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApiError::Bad(m) => write!(f, "{m}"),
            ApiError::TooLarge => write!(f, "table exceeds {MAX_CELLS} cells"),
        }
    }
}

fn bad(msg: impl Into<String>) -> ApiError {
    ApiError::Bad(msg.into())
}

/// Map one JSON cell to a table [`Value`] (see module docs).
fn value_from_json(v: &Json) -> Value {
    match v {
        Json::Null => Value::Null,
        Json::Bool(b) => Value::Bool(*b),
        Json::Num(n) => {
            if n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 {
                Value::Int(*n as i64)
            } else {
                Value::Float(*n)
            }
        }
        Json::Str(s) => Value::text(s.clone()),
        // Nested containers have no cell meaning; keep their JSON text.
        other => Value::text(format!("{other:?}")),
    }
}

/// Parse a table object: `{"name": ..., "columns": [{"header", "values"}]}`.
pub fn table_from_json(v: &Json) -> Result<Table, ApiError> {
    let name = v.get("name").and_then(Json::as_str).unwrap_or("request").to_string();
    let cols = v
        .get("columns")
        .and_then(Json::as_array)
        .ok_or_else(|| bad("table.columns must be an array"))?;
    if cols.is_empty() {
        return Err(bad("table needs at least one column"));
    }
    let mut columns = Vec::with_capacity(cols.len());
    let mut rows = None;
    let mut cells = 0usize;
    for (j, col) in cols.iter().enumerate() {
        let header = col
            .get("header")
            .and_then(Json::as_str)
            .map(str::to_string)
            .unwrap_or_else(|| format!("col{j}"));
        let values = col
            .get("values")
            .and_then(Json::as_array)
            .ok_or_else(|| bad(format!("column {j} needs a values array")))?;
        match rows {
            None => rows = Some(values.len()),
            Some(r) if r != values.len() => {
                return Err(bad(format!(
                    "ragged table: column {j} has {} values, expected {r}",
                    values.len()
                )))
            }
            Some(_) => {}
        }
        cells += values.len();
        if cells > MAX_CELLS {
            return Err(ApiError::TooLarge);
        }
        columns.push(Column::new(header, values.iter().map(value_from_json).collect()));
    }
    Ok(Table::new(name, columns))
}

/// Parse a `/v1/embed` body.
pub fn parse_embed(body: &str) -> Result<EmbedRequest, ApiError> {
    let v = parse(body).map_err(bad)?;
    let model = v
        .get("model")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing string field 'model'"))?
        .to_string();
    let level = match v.get("level") {
        None => Level::Column,
        Some(l) => {
            let s = l.as_str().ok_or_else(|| bad("'level' must be a string"))?;
            Level::from_str(s)
                .ok_or_else(|| bad(format!("unknown level '{s}' (table|column|row|cell)")))?
        }
    };
    let table =
        table_from_json(v.get("table").ok_or_else(|| bad("missing object field 'table'"))?)?;
    let id = v.get("id").and_then(Json::as_str).map(str::to_string);
    Ok(EmbedRequest { model, level, table, id })
}

/// Append one f64 as JSON. `Display` for finite `f64` is shortest
/// round-trip, so the client parses back the bit-identical double;
/// non-finite values (unrepresentable in JSON) render as `null`.
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

fn push_vector(out: &mut String, v: Option<Vec<f64>>) {
    match v {
        None => out.push_str("null"),
        Some(vec) => {
            out.push('[');
            for (i, x) in vec.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_f64(out, *x);
            }
            out.push(']');
        }
    }
}

/// Render the `/v1/embed` response body for `enc` at `level`.
/// `embeddings` is always an array of vectors (or `null` slots where the
/// model does not expose that readout): 1 for `table`, `cols` for
/// `column`, `rows` for `row`, `rows*cols` row-major for `cell`.
pub fn render_embed_response(req: &EmbedRequest, enc: &ModelEncoding) -> String {
    let rows = enc.rows_encoded;
    let cols = enc.cols_encoded;
    let vectors: Vec<Option<Vec<f64>>> = match req.level {
        Level::Table => vec![enc.table()],
        Level::Column => (0..cols).map(|j| enc.column(j)).collect(),
        Level::Row => (0..rows).map(|i| enc.row(i)).collect(),
        Level::Cell => (0..rows)
            .flat_map(|i| (0..cols).map(move |j| (i, j)))
            .map(|(i, j)| enc.cell(i, j))
            .collect(),
    };
    let mut out = String::with_capacity(64 + vectors.len() * 16);
    out.push('{');
    if let Some(id) = &req.id {
        out.push_str(&format!("\"id\":\"{}\",", escape(id)));
    }
    out.push_str(&format!(
        "\"model\":\"{}\",\"level\":\"{}\",\"dim\":{},\"rows\":{rows},\"cols\":{cols},\"count\":{},\"embeddings\":[",
        escape(&req.model),
        req.level.as_str(),
        enc.dim(),
        vectors.len(),
    ));
    for (i, v) in vectors.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_vector(&mut out, v);
    }
    out.push_str("]}");
    out
}

/// Index selection for a `/v1/knn` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnnMode {
    /// Exact brute-force scan (recall 1) — the default.
    Flat,
    /// Sharded HNSW with int8 traversal and exact f64 re-rank.
    Ann,
}

impl KnnMode {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            KnnMode::Flat => "flat",
            KnnMode::Ann => "ann",
        }
    }
}

/// A parsed `/v1/knn` request.
#[derive(Debug, Clone)]
pub struct KnnRequest {
    /// Neighbours per query.
    pub k: usize,
    /// Indexed (key, vector) pairs (empty in corpus mode).
    pub items: Vec<(String, Vec<f64>)>,
    /// Query vectors.
    pub queries: Vec<Vec<f64>>,
    /// Per-query excluded key (self-match suppression), if given.
    pub exclude: Vec<Option<String>>,
    /// Exact scan or ANN graph.
    pub mode: KnnMode,
    /// ANN beam width override (`"ef"`), `None` = index default.
    pub ef_search: Option<usize>,
    /// ANN shard count for inline items, `None` = 1.
    pub shards: Option<usize>,
    /// Query the server's warm store-backed index instead of `items`.
    pub corpus: bool,
}

fn vector_from_json(v: &Json, what: &str) -> Result<Vec<f64>, ApiError> {
    let arr = v.as_array().ok_or_else(|| bad(format!("{what} must be a number array")))?;
    arr.iter()
        .map(|x| x.as_f64().ok_or_else(|| bad(format!("{what} must contain only numbers"))))
        .collect()
}

/// Parse a positive-integer field in `[1, max]`, `None` when absent.
fn int_param(v: &Json, name: &str, max: f64) -> Result<Option<usize>, ApiError> {
    match v.get(name) {
        None => Ok(None),
        Some(j) => {
            let n = j.as_f64().ok_or_else(|| bad(format!("'{name}' must be a number")))?;
            if !(n.fract() == 0.0 && (1.0..=max).contains(&n)) {
                return Err(bad(format!("'{name}' must be an integer in [1, {max}]")));
            }
            Ok(Some(n as usize))
        }
    }
}

/// Parse a `/v1/knn` body.
pub fn parse_knn(body: &str) -> Result<KnnRequest, ApiError> {
    let v = parse(body).map_err(bad)?;
    let k = v.get("k").and_then(Json::as_f64).unwrap_or(10.0);
    if !(k.fract() == 0.0 && (1.0..=10_000.0).contains(&k)) {
        return Err(bad("'k' must be an integer in [1, 10000]"));
    }
    let mode = match v.get("mode").map(|m| m.as_str().ok_or(())) {
        None => KnnMode::Flat,
        Some(Ok("flat")) => KnnMode::Flat,
        Some(Ok("ann")) => KnnMode::Ann,
        _ => return Err(bad("'mode' must be \"flat\" or \"ann\"")),
    };
    let ef_search = int_param(&v, "ef", 100_000.0)?;
    let shards = int_param(&v, "shards", 64.0)?;
    if mode == KnnMode::Flat && (ef_search.is_some() || shards.is_some()) {
        // A typo'd mode must not silently degrade an exact request.
        return Err(bad("'ef' and 'shards' require \"mode\":\"ann\""));
    }
    let corpus = match v.get("corpus") {
        None => false,
        Some(j) => j.as_bool().ok_or_else(|| bad("'corpus' must be a boolean"))?,
    };
    let mut items = Vec::new();
    let mut dim = None;
    if corpus {
        // Corpus mode searches the server-side index; inline items would
        // be dead weight at best and ambiguity at worst.
        if v.get("items").is_some() {
            return Err(bad("'corpus':true cannot be combined with 'items'"));
        }
    } else {
        let items_json =
            v.get("items").and_then(Json::as_array).ok_or_else(|| bad("missing 'items' array"))?;
        if items_json.is_empty() {
            return Err(bad("'items' must be non-empty"));
        }
        items.reserve(items_json.len());
        for (i, item) in items_json.iter().enumerate() {
            let key = item
                .get("key")
                .and_then(Json::as_str)
                .ok_or_else(|| bad(format!("items[{i}] needs a string 'key'")))?
                .to_string();
            let vector = vector_from_json(
                item.get("vector").ok_or_else(|| bad(format!("items[{i}] needs a 'vector'")))?,
                &format!("items[{i}].vector"),
            )?;
            match dim {
                None => dim = Some(vector.len()),
                Some(d) if d != vector.len() => {
                    return Err(bad(format!(
                        "items[{i}].vector has dim {}, expected {d}",
                        vector.len()
                    )))
                }
                Some(_) => {}
            }
            items.push((key, vector));
        }
        if dim == Some(0) {
            return Err(bad("vectors must be non-empty"));
        }
    }
    let queries_json =
        v.get("queries").and_then(Json::as_array).ok_or_else(|| bad("missing 'queries' array"))?;
    let mut queries = Vec::with_capacity(queries_json.len());
    for (i, q) in queries_json.iter().enumerate() {
        let vector = vector_from_json(q, &format!("queries[{i}]"))?;
        if vector.is_empty() {
            return Err(bad("vectors must be non-empty"));
        }
        match dim {
            None => dim = Some(vector.len()),
            Some(d) if d != vector.len() => {
                return Err(bad(format!("queries[{i}] has dim {}, expected {d}", vector.len())))
            }
            Some(_) => {}
        }
        queries.push(vector);
    }
    let exclude = match v.get("exclude").and_then(Json::as_array) {
        None => vec![None; queries.len()],
        Some(arr) => {
            if arr.len() != queries.len() {
                return Err(bad("'exclude' must have one entry per query"));
            }
            arr.iter().map(|e| e.as_str().map(str::to_string)).collect()
        }
    };
    Ok(KnnRequest { k: k as usize, items, queries, exclude, mode, ef_search, shards, corpus })
}

/// Execute a kNN request against a freshly built index over its inline
/// items — exact or ANN according to `mode` — and render the response.
/// `jobs` bounds the ANN shard-build fan-out (the engine's worker
/// count). Corpus requests never reach here; the server routes them to
/// its warm index via [`run_knn_on`].
pub fn run_knn(req: &KnnRequest, jobs: usize) -> String {
    let dim = req.items[0].1.len();
    match req.mode {
        KnnMode::Flat => {
            let mut index = KnnIndex::new(dim);
            for (key, vector) in &req.items {
                index.insert(key.clone(), vector);
            }
            run_knn_on(req, &index)
        }
        KnnMode::Ann => {
            let index = ShardedHnsw::build(
                dim,
                req.shards.unwrap_or(1),
                HnswConfig::default(),
                &req.items,
                jobs,
            );
            run_knn_on(req, &index)
        }
    }
}

/// Run every query of `req` against an already-built index and render
/// the response body. The `mode`/`kind`/`shards` echo lets clients (and
/// the CI smoke) verify which path actually served them.
pub fn run_knn_on(req: &KnnRequest, index: &dyn AnnIndex) -> String {
    let params = SearchParams { ef_search: req.ef_search };
    let mut out = format!(
        "{{\"mode\":\"{}\",\"index\":\"{}\",\"shards\":{},\"results\":[",
        req.mode.as_str(),
        index.kind(),
        index.num_shards(),
    );
    for (i, q) in req.queries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        let hits = index.search(q, req.k, req.exclude[i].as_deref(), params);
        for (h, hit) in hits.iter().enumerate() {
            if h > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"key\":\"{}\",\"score\":", escape(&hit.key)));
            push_f64(&mut out, hit.score);
            out.push('}');
        }
        out.push(']');
    }
    out.push_str("]}");
    out
}

/// Render a JSON error body: `{"error": "..."}`.
pub fn error_body(msg: &str) -> String {
    format!("{{\"error\":\"{}\"}}", escape(msg))
}

#[cfg(test)]
mod tests {
    use super::*;

    const EMBED: &str = r#"{
        "model": "bert", "level": "column", "id": "req-1",
        "table": {"name": "t", "columns": [
            {"header": "id", "values": [1, 2, 3]},
            {"header": "name", "values": ["a", "b", null]}
        ]}
    }"#;

    #[test]
    fn parses_embed_request() {
        let r = parse_embed(EMBED).unwrap();
        assert_eq!(r.model, "bert");
        assert_eq!(r.level, Level::Column);
        assert_eq!(r.id.as_deref(), Some("req-1"));
        assert_eq!(r.table.num_rows(), 3);
        assert_eq!(r.table.num_cols(), 2);
        assert_eq!(r.table.cell(0, 0), &Value::Int(1));
        assert_eq!(r.table.cell(0, 1), &Value::text("a"));
        assert_eq!(r.table.cell(2, 1), &Value::Null);
    }

    #[test]
    fn level_defaults_to_column() {
        let body = r#"{"model":"bert","table":{"columns":[{"header":"c","values":["x"]}]}}"#;
        assert_eq!(parse_embed(body).unwrap().level, Level::Column);
    }

    #[test]
    fn rejects_bad_embed_requests() {
        for (body, needle) in [
            ("not json", "invalid literal"),
            (r#"{"table":{"columns":[{"header":"c","values":[1]}]}}"#, "model"),
            (r#"{"model":"bert"}"#, "table"),
            (r#"{"model":"bert","table":{"columns":[]}}"#, "at least one column"),
            (
                r#"{"model":"bert","level":"galaxy","table":{"columns":[{"header":"c","values":[1]}]}}"#,
                "galaxy",
            ),
            (
                r#"{"model":"bert","table":{"columns":[{"header":"a","values":[1,2]},{"header":"b","values":[1]}]}}"#,
                "ragged",
            ),
        ] {
            let err = parse_embed(body).unwrap_err();
            match err {
                ApiError::Bad(m) => assert!(m.contains(needle), "'{m}' should mention '{needle}'"),
                ApiError::TooLarge => panic!("unexpected TooLarge for {body}"),
            }
        }
    }

    #[test]
    fn oversized_table_is_413() {
        let values: Vec<String> = (0..(MAX_CELLS + 1)).map(|i| i.to_string()).collect();
        let body = format!(
            r#"{{"model":"bert","table":{{"columns":[{{"header":"c","values":[{}]}}]}}}}"#,
            values.join(",")
        );
        assert_eq!(parse_embed(&body).unwrap_err(), ApiError::TooLarge);
    }

    #[test]
    fn numeric_mapping_is_deterministic() {
        assert_eq!(value_from_json(&Json::Num(3.0)), Value::Int(3));
        assert_eq!(value_from_json(&Json::Num(3.5)), Value::Float(3.5));
        assert_eq!(value_from_json(&Json::Num(-0.25)), Value::Float(-0.25));
        assert_eq!(value_from_json(&Json::Null), Value::Null);
        assert_eq!(value_from_json(&Json::Bool(true)), Value::Bool(true));
    }

    #[test]
    fn f64_json_round_trips_bitwise() {
        use observatory_obs::json::parse as jparse;
        for v in [1.0 / 3.0, -2.718281828459045e-5, 1e300, f64::MIN_POSITIVE, 0.1 + 0.2] {
            let mut s = String::new();
            push_f64(&mut s, v);
            let back = jparse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} did not round-trip");
        }
        let mut s = String::new();
        push_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }

    #[test]
    fn knn_round_trip() {
        let body = r#"{
            "k": 2,
            "items": [
                {"key": "east", "vector": [1, 0]},
                {"key": "north", "vector": [0, 1]},
                {"key": "northeast", "vector": [1, 1]}
            ],
            "queries": [[1, 0.1]],
            "exclude": ["east"]
        }"#;
        let req = parse_knn(body).unwrap();
        assert_eq!(req.k, 2);
        let out = run_knn(&req, 2);
        let v = parse(&out).unwrap();
        let results = v.get("results").unwrap().as_array().unwrap();
        assert_eq!(results.len(), 1);
        let hits = results[0].as_array().unwrap();
        assert_eq!(hits.len(), 2);
        // "east" is excluded, so the nearest is "northeast".
        assert_eq!(hits[0].get("key").unwrap().as_str(), Some("northeast"));
    }

    #[test]
    fn knn_multi_query_scores_match_single_query() {
        // Regression for hoisted candidate norms: `run_knn` builds ONE
        // index for the whole request, so item norms are computed once
        // and shared by every query. A 2-query request must render the
        // exact same scores (to the printed bit; push_f64 is shortest
        // round-trip) as two 1-query requests over the same items.
        let items = r#"[
            {"key": "a", "vector": [0.3, -1.2, 0.7]},
            {"key": "b", "vector": [2.0, 0.1, -0.4]},
            {"key": "c", "vector": [-0.5, 0.5, 1.5]}
        ]"#;
        let q1 = "[1, 0.2, -0.3]";
        let q2 = "[-0.7, 1.1, 0.9]";
        let both =
            parse_knn(&format!(r#"{{"k":3,"items":{items},"queries":[{q1},{q2}]}}"#)).unwrap();
        let out_both = run_knn(&both, 2);
        let v = parse(&out_both).unwrap();
        let results = v.get("results").unwrap().as_array().unwrap();
        assert_eq!(results.len(), 2);
        for (i, q) in [q1, q2].iter().enumerate() {
            let single =
                parse_knn(&format!(r#"{{"k":3,"items":{items},"queries":[{q}]}}"#)).unwrap();
            let out_single = run_knn(&single, 2);
            let vs = parse(&out_single).unwrap();
            let only = &vs.get("results").unwrap().as_array().unwrap()[0];
            assert_eq!(
                format!("{:?}", results[i]),
                format!("{only:?}"),
                "query {i}: shared-index scores must equal fresh-index scores"
            );
        }
    }

    #[test]
    fn knn_ann_mode_matches_flat_at_full_beam() {
        // With ef covering the whole item set the ANN path re-ranks every
        // candidate exactly, so the rendered body differs from the flat
        // body only in the mode/index/shards echo — hits are identical to
        // the printed bit.
        let items = r#"[
            {"key": "a", "vector": [0.3, -1.2, 0.7]},
            {"key": "b", "vector": [2.0, 0.1, -0.4]},
            {"key": "c", "vector": [-0.5, 0.5, 1.5]},
            {"key": "d", "vector": [0.3, -1.2, 0.7]}
        ]"#;
        let queries = r#"[[1, 0.2, -0.3], [-0.7, 1.1, 0.9]]"#;
        let flat = parse_knn(&format!(r#"{{"k":4,"items":{items},"queries":{queries}}}"#)).unwrap();
        let ann = parse_knn(&format!(
            r#"{{"k":4,"items":{items},"queries":{queries},"mode":"ann","ef":16,"shards":2}}"#
        ))
        .unwrap();
        assert_eq!(ann.mode, KnnMode::Ann);
        let flat_out = run_knn(&flat, 2);
        let ann_out = run_knn(&ann, 2);
        let fv = parse(&flat_out).unwrap();
        let av = parse(&ann_out).unwrap();
        assert_eq!(fv.get("mode").unwrap().as_str(), Some("flat"));
        assert_eq!(av.get("mode").unwrap().as_str(), Some("ann"));
        assert_eq!(av.get("index").unwrap().as_str(), Some("hnsw"));
        assert_eq!(av.get("shards").unwrap().as_f64(), Some(2.0));
        assert_eq!(
            format!("{:?}", fv.get("results")),
            format!("{:?}", av.get("results")),
            "full-beam ANN hits must equal flat hits bit-for-bit"
        );
    }

    #[test]
    fn knn_rejects_bad_mode_combinations() {
        let items = r#"[{"key":"a","vector":[1,0]}]"#;
        // ef/shards without ann mode: refuse rather than silently ignore.
        for body in [
            format!(r#"{{"items":{items},"queries":[[1,0]],"ef":8}}"#),
            format!(r#"{{"items":{items},"queries":[[1,0]],"shards":2}}"#),
            format!(r#"{{"items":{items},"queries":[[1,0]],"mode":"exact"}}"#),
            format!(r#"{{"items":{items},"queries":[[1,0]],"mode":"ann","ef":0}}"#),
            format!(r#"{{"items":{items},"queries":[[1,0]],"mode":"ann","shards":65}}"#),
            format!(r#"{{"items":{items},"queries":[[1,0]],"corpus":true}}"#),
            format!(r#"{{"queries":[[1,0]],"corpus":"yes"}}"#),
        ] {
            assert!(parse_knn(&body).is_err(), "{body}");
        }
        // Corpus mode: no items needed; queries set the dimension.
        let req = parse_knn(r#"{"queries":[[1,0],[0,1]],"corpus":true,"mode":"ann"}"#).unwrap();
        assert!(req.corpus);
        assert!(req.items.is_empty());
        assert_eq!(req.queries.len(), 2);
        // Mixed query dims are still rejected without items.
        assert!(parse_knn(r#"{"queries":[[1,0],[1]],"corpus":true}"#).is_err());
    }

    #[test]
    fn knn_rejects_dim_mismatch() {
        let body = r#"{"k":1,"items":[{"key":"a","vector":[1,0]},{"key":"b","vector":[1]}],"queries":[[1,0]]}"#;
        assert!(parse_knn(body).is_err());
        let body = r#"{"k":1,"items":[{"key":"a","vector":[1,0]}],"queries":[[1]]}"#;
        assert!(parse_knn(body).is_err());
    }

    #[test]
    fn error_body_escapes() {
        assert_eq!(error_body("bad \"x\""), "{\"error\":\"bad \\\"x\\\"\"}");
    }
}
