//! Hand-rolled HTTP/1.1 over `std::net` — request parsing and response
//! writing, nothing more.
//!
//! The workspace has no registry access, so there is no hyper/axum to
//! lean on; the service speaks exactly the subset of HTTP/1.1 its four
//! endpoints need: one request per connection (`Connection: close`),
//! `Content-Length`-delimited bodies, no chunked transfer, no TLS.
//! Limits are enforced while reading so a malicious or broken client can
//! never balloon memory: headers are capped at 16 KiB and bodies at
//! 8 MiB (oversize bodies surface as [`HttpError::TooLarge`] → 413).

use std::io::{BufRead, BufReader, Read, Write};

/// Maximum accepted header block (request line + headers), bytes.
pub const MAX_HEADER_BYTES: usize = 16 << 10;

/// Maximum accepted request body, bytes.
pub const MAX_BODY_BYTES: usize = 8 << 20;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method verb, uppercased by the client (`GET`, `POST`, ...).
    pub method: String,
    /// Request target (path + optional query), e.g. `/v1/embed`.
    pub path: String,
    /// Headers in arrival order; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug, PartialEq, Eq)]
pub enum HttpError {
    /// The peer closed the connection before a full request arrived.
    Closed,
    /// Malformed request line / headers / framing.
    Malformed(String),
    /// Header block or declared body exceeds the hard limits.
    TooLarge,
    /// Socket error (including read timeout).
    Io(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::TooLarge => write!(f, "request too large"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

/// Read one HTTP/1.1 request from `reader`.
pub fn read_request<R: Read>(reader: &mut BufReader<R>) -> Result<Request, HttpError> {
    let mut line = String::new();
    let mut header_bytes = 0usize;
    let n = reader.read_line(&mut line).map_err(|e| HttpError::Io(e.to_string()))?;
    if n == 0 {
        return Err(HttpError::Closed);
    }
    header_bytes += n;
    let request_line = line.trim_end();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("bad request line '{request_line}'")));
    }
    let mut headers = Vec::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line).map_err(|e| HttpError::Io(e.to_string()))?;
        if n == 0 {
            return Err(HttpError::Closed);
        }
        header_bytes += n;
        if header_bytes > MAX_HEADER_BYTES {
            return Err(HttpError::TooLarge);
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header '{trimmed}'")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        None => 0usize,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("bad content-length '{v}'")))?,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body).map_err(|e| HttpError::Io(e.to_string()))?;
    }
    Ok(Request { method, path, headers, body })
}

/// Reason phrase for the status codes the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a complete response (status, headers, body) and flush.
/// `extra` headers are appended verbatim (e.g. `Retry-After`).
///
/// The head and body are coalesced into one buffer and written with a
/// single `write_all`: writing them separately puts the body in a
/// second TCP segment that Nagle holds back until the first is ACKed,
/// and with the peer's delayed ACK that stalls every response ~40 ms.
pub fn write_response<W: Write>(
    stream: &mut W,
    status: u16,
    content_type: &str,
    extra: &[(&str, String)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len(),
    );
    for (k, v) in extra {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut frame = head.into_bytes();
    frame.extend_from_slice(body);
    stream.write_all(&frame)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_get() {
        let r = parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert_eq!(r.header("host"), Some("x"));
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let r = parse("POST /v1/embed HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"hello");
    }

    #[test]
    fn header_names_are_case_insensitive() {
        let r = parse("POST /x HTTP/1.1\r\nCONTENT-LENGTH: 2\r\n\r\nok").unwrap();
        assert_eq!(r.body, b"ok");
    }

    #[test]
    fn empty_stream_is_closed() {
        assert_eq!(parse("").unwrap_err(), HttpError::Closed);
    }

    #[test]
    fn rejects_malformed() {
        assert!(matches!(parse("NOT-HTTP\r\n\r\n").unwrap_err(), HttpError::Malformed(_)));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nbadheader\r\n\r\n").unwrap_err(),
            HttpError::Malformed(_)
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n").unwrap_err(),
            HttpError::Malformed(_)
        ));
    }

    #[test]
    fn rejects_oversized_declared_body() {
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert_eq!(parse(&raw).unwrap_err(), HttpError::TooLarge);
    }

    #[test]
    fn rejects_oversized_headers() {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..2000 {
            raw.push_str(&format!("x-h{i}: {}\r\n", "v".repeat(20)));
        }
        raw.push_str("\r\n");
        assert_eq!(parse(&raw).unwrap_err(), HttpError::TooLarge);
    }

    #[test]
    fn truncated_body_is_io_error() {
        let err = parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nhi").unwrap_err();
        assert!(matches!(err, HttpError::Io(_)), "{err:?}");
    }

    #[test]
    fn response_shape() {
        let mut out = Vec::new();
        write_response(&mut out, 429, "application/json", &[("Retry-After", "1".into())], b"{}")
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn reasons_cover_service_codes() {
        for code in [200, 201, 202, 400, 404, 405, 408, 409, 411, 413, 429, 500, 503] {
            assert_ne!(reason(code), "Unknown", "{code}");
        }
    }
}
