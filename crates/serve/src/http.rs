//! Hand-rolled HTTP/1.1 over `std::net` — incremental request parsing
//! and response rendering, nothing more.
//!
//! The workspace has no registry access, so there is no hyper/axum to
//! lean on; the service speaks exactly the subset of HTTP/1.1 its
//! endpoints need: `Content-Length`-delimited bodies, keep-alive and
//! pipelining (epoll reactor) or one request per connection (legacy
//! thread path), no chunked transfer, no TLS.
//!
//! The core is [`RequestParser`]: a push parser that accepts arbitrary
//! byte chunks ([`RequestParser::feed`]) and yields complete requests
//! ([`RequestParser::next_request`]) without ever blocking — the epoll
//! reactor feeds it whatever a readiness event delivered, including
//! requests torn at any byte boundary and several pipelined requests in
//! one segment. The legacy blocking [`read_request`] is a thin loop over
//! the same parser, so both network paths share one grammar.
//!
//! Limits are enforced while bytes accumulate so a malicious or broken
//! client can never balloon memory: header blocks are capped at 16 KiB
//! (oversize → [`HttpError::HeadersTooLarge`] → 431) and bodies at 8 MiB
//! (oversize → [`HttpError::TooLarge`] → 413).

use std::io::{BufRead, BufReader, Read, Write};

/// Maximum accepted header block (request line + headers), bytes.
pub const MAX_HEADER_BYTES: usize = 16 << 10;

/// Maximum accepted request body, bytes.
pub const MAX_BODY_BYTES: usize = 8 << 20;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method verb, uppercased by the client (`GET`, `POST`, ...).
    pub method: String,
    /// Request target (path + optional query), e.g. `/v1/embed`.
    pub path: String,
    /// HTTP minor version: 0 for `HTTP/1.0` (default-close), 1 for
    /// `HTTP/1.1` and any other `HTTP/1.x` (default keep-alive).
    pub minor: u8,
    /// Headers in arrival order; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// Whether the `Connection` header names `token` (comma-separated
    /// list, case-insensitive).
    fn connection_has(&self, token: &str) -> bool {
        self.header("connection")
            .is_some_and(|v| v.split(',').any(|t| t.trim().eq_ignore_ascii_case(token)))
    }

    /// Connection persistence per RFC 9112 §9.3: HTTP/1.1 defaults to
    /// keep-alive unless the client sent `Connection: close`; HTTP/1.0
    /// defaults to close unless it sent `Connection: keep-alive`.
    pub fn wants_keep_alive(&self) -> bool {
        if self.minor == 0 {
            self.connection_has("keep-alive")
        } else {
            !self.connection_has("close")
        }
    }

    /// The server's persistence *policy*: keep the connection only when
    /// the client explicitly asked (`Connection: keep-alive`) and did
    /// not simultaneously ask to close. A server is always allowed to
    /// close (RFC 9112 §9.6) provided the response says so — and ours
    /// does, via [`render_response`]'s `Connection` echo — so the
    /// opt-in policy stays conformant while EOF-delimited clients (curl
    /// scripts, the soak tests) keep working without per-request
    /// timeouts. `Connection: close` on HTTP/1.1 and the HTTP/1.0
    /// default-close are honored by construction.
    pub fn persist_connection(&self) -> bool {
        self.connection_has("keep-alive") && !self.connection_has("close")
    }
}

/// Why a request could not be read.
#[derive(Debug, PartialEq, Eq)]
pub enum HttpError {
    /// The peer closed the connection before a full request arrived.
    Closed,
    /// Malformed request line / headers / framing.
    Malformed(String),
    /// Declared body exceeds the hard limit (→ 413).
    TooLarge,
    /// Header block exceeds the hard limit (→ 431).
    HeadersTooLarge,
    /// Socket error (including read timeout).
    Io(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::TooLarge => write!(f, "request too large"),
            HttpError::HeadersTooLarge => write!(f, "request header block too large"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

/// Incremental push parser for a stream of pipelined HTTP/1.x requests.
///
/// Feed it bytes as they arrive; pull complete requests out. A parse
/// error is fatal for the stream (framing is lost), so after the first
/// `Err` the parser refuses further work.
#[derive(Default)]
pub struct RequestParser {
    buf: Vec<u8>,
    /// Set once a fatal error was surfaced; the connection must close.
    dead: bool,
}

impl RequestParser {
    /// A fresh parser with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append newly received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        if !self.dead {
            self.buf.extend_from_slice(bytes);
        }
    }

    /// Bytes buffered but not yet consumed as a complete request.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Whether a partial request sits in the buffer (drives the
    /// slow-header / slow-body timeout).
    pub fn has_partial(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Whether the buffered partial request has a complete header block
    /// and is waiting on body bytes (EOF here is an I/O error, not a
    /// clean close).
    pub fn mid_body(&self) -> bool {
        find_terminator(&self.buf).is_some()
    }

    /// Try to extract the next complete request. `Ok(None)` means "need
    /// more bytes"; errors are fatal for the stream.
    pub fn next_request(&mut self) -> Result<Option<Request>, HttpError> {
        if self.dead {
            return Ok(None);
        }
        // Tolerate stray CRLFs between pipelined requests (RFC 9112 §2.2).
        let lead = self.buf.iter().take_while(|&&b| b == b'\r' || b == b'\n').count();
        if lead > 0 {
            self.buf.drain(..lead);
        }
        let Some(head_end) = find_terminator(&self.buf) else {
            if self.buf.len() > MAX_HEADER_BYTES {
                self.dead = true;
                return Err(HttpError::HeadersTooLarge);
            }
            return Ok(None);
        };
        if head_end > MAX_HEADER_BYTES {
            self.dead = true;
            return Err(HttpError::HeadersTooLarge);
        }
        let head = match std::str::from_utf8(&self.buf[..head_end]) {
            Ok(s) => s,
            Err(_) => {
                self.dead = true;
                return Err(HttpError::Malformed("header block is not UTF-8".to_string()));
            }
        };
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split_whitespace();
        let method = parts.next().unwrap_or("").to_string();
        let path = parts.next().unwrap_or("").to_string();
        let version = parts.next().unwrap_or("");
        if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
            self.dead = true;
            return Err(HttpError::Malformed(format!("bad request line '{request_line}'")));
        }
        let minor = if version == "HTTP/1.0" { 0 } else { 1 };
        let mut headers = Vec::new();
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                self.dead = true;
                return Err(HttpError::Malformed(format!("bad header '{line}'")));
            };
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
        // Bodies are Content-Length-delimited only. A Transfer-Encoding
        // body (chunked or otherwise) would be misread as zero-length
        // and its bytes reparsed as the next pipelined request — a
        // framing desync and a request-smuggling vector — so any such
        // request fails the stream and the connection closes.
        if headers.iter().any(|(k, _)| k == "transfer-encoding") {
            self.dead = true;
            return Err(HttpError::Malformed(
                "transfer-encoding is not supported; use content-length".to_string(),
            ));
        }
        let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
            None => 0usize,
            Some((_, v)) => match v.parse::<usize>() {
                Ok(n) => n,
                Err(_) => {
                    self.dead = true;
                    return Err(HttpError::Malformed(format!("bad content-length '{v}'")));
                }
            },
        };
        if content_length > MAX_BODY_BYTES {
            self.dead = true;
            return Err(HttpError::TooLarge);
        }
        let total = head_end + 4 + content_length;
        if self.buf.len() < total {
            return Ok(None);
        }
        let body = self.buf[head_end + 4..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(Request { method, path, minor, headers, body }))
    }
}

/// Offset of the `\r\n\r\n` header terminator, if present.
fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Read one HTTP/1.x request from `reader`, blocking until it is
/// complete (the legacy thread-per-connection path).
pub fn read_request<R: Read>(reader: &mut BufReader<R>) -> Result<Request, HttpError> {
    let mut parser = RequestParser::new();
    loop {
        if let Some(req) = parser.next_request()? {
            return Ok(req);
        }
        let chunk = reader.fill_buf().map_err(|e| HttpError::Io(e.to_string()))?;
        if chunk.is_empty() {
            // EOF mid-body is a framing violation; EOF before or between
            // requests is a clean close.
            return Err(if parser.mid_body() {
                HttpError::Io("unexpected eof while reading body".to_string())
            } else {
                HttpError::Closed
            });
        }
        let n = chunk.len();
        parser.feed(chunk);
        reader.consume(n);
    }
}

/// Reason phrase for the status codes the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Render a complete response frame (status line, headers, body) into
/// `out`. The `Connection` header reflects `keep_alive`, which the
/// caller decides from the request's [`Request::wants_keep_alive`] and
/// the connection's own state (draining servers always close).
pub fn render_response(
    out: &mut Vec<u8>,
    status: u16,
    content_type: &str,
    extra: &[(&str, String)],
    body: &[u8],
    keep_alive: bool,
) {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (k, v) in extra {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(body);
}

/// Write a complete `Connection: close` response and flush (the legacy
/// thread path serves one request per connection).
///
/// The head and body are coalesced into one buffer and written with a
/// single `write_all`: writing them separately puts the body in a
/// second TCP segment that Nagle holds back until the first is ACKed,
/// and with the peer's delayed ACK that stalls every response ~40 ms.
pub fn write_response<W: Write>(
    stream: &mut W,
    status: u16,
    content_type: &str,
    extra: &[(&str, String)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut frame = Vec::with_capacity(256 + body.len());
    render_response(&mut frame, status, content_type, extra, body, false);
    stream.write_all(&frame)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_get() {
        let r = parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert_eq!(r.minor, 1);
        assert_eq!(r.header("host"), Some("x"));
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let r = parse("POST /v1/embed HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"hello");
    }

    #[test]
    fn header_names_are_case_insensitive() {
        let r = parse("POST /x HTTP/1.1\r\nCONTENT-LENGTH: 2\r\n\r\nok").unwrap();
        assert_eq!(r.body, b"ok");
    }

    #[test]
    fn empty_stream_is_closed() {
        assert_eq!(parse("").unwrap_err(), HttpError::Closed);
    }

    #[test]
    fn truncated_headers_are_closed() {
        assert_eq!(parse("GET / HTTP/1.1\r\nHost: x\r\n").unwrap_err(), HttpError::Closed);
    }

    #[test]
    fn rejects_malformed() {
        assert!(matches!(parse("NOT-HTTP\r\n\r\n").unwrap_err(), HttpError::Malformed(_)));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nbadheader\r\n\r\n").unwrap_err(),
            HttpError::Malformed(_)
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n").unwrap_err(),
            HttpError::Malformed(_)
        ));
    }

    #[test]
    fn rejects_oversized_declared_body() {
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert_eq!(parse(&raw).unwrap_err(), HttpError::TooLarge);
    }

    #[test]
    fn rejects_oversized_headers() {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..2000 {
            raw.push_str(&format!("x-h{i}: {}\r\n", "v".repeat(20)));
        }
        raw.push_str("\r\n");
        assert_eq!(parse(&raw).unwrap_err(), HttpError::HeadersTooLarge);
    }

    #[test]
    fn oversized_headers_detected_before_terminator() {
        // A slowloris peer that never finishes its header block must be
        // rejected as soon as the cap is crossed, not buffered forever.
        let mut p = RequestParser::new();
        p.feed(b"GET / HTTP/1.1\r\n");
        let filler = vec![b'a'; MAX_HEADER_BYTES];
        p.feed(&filler);
        assert_eq!(p.next_request().unwrap_err(), HttpError::HeadersTooLarge);
        // The parser is dead afterwards: no resurrection on more bytes.
        p.feed(b"\r\n\r\n");
        assert_eq!(p.next_request().unwrap(), None);
    }

    #[test]
    fn transfer_encoding_fails_the_stream() {
        // A chunked body would otherwise parse as zero-length and its
        // bytes desync the pipeline (request smuggling); the stream
        // must die instead, swallowing everything after the header.
        let mut p = RequestParser::new();
        p.feed(
            b"POST /v1/embed HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
              5\r\nGET /\r\n0\r\n\r\nGET /smuggled HTTP/1.1\r\n\r\n",
        );
        assert!(matches!(p.next_request().unwrap_err(), HttpError::Malformed(_)));
        assert_eq!(p.next_request().unwrap(), None, "dead parser yields nothing");
        p.feed(b"GET /late HTTP/1.1\r\n\r\n");
        assert_eq!(p.next_request().unwrap(), None, "no resurrection after the error");
        // Any transfer-encoding value is rejected, not just chunked.
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: identity\r\n\r\n").unwrap_err(),
            HttpError::Malformed(_)
        ));
    }

    #[test]
    fn truncated_body_is_io_error() {
        let err = parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nhi").unwrap_err();
        assert!(matches!(err, HttpError::Io(_)), "{err:?}");
    }

    #[test]
    fn http_10_defaults_to_close() {
        let r = parse("GET / HTTP/1.0\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.minor, 0);
        assert!(!r.wants_keep_alive());
        let r = parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(r.wants_keep_alive(), "explicit keep-alive on 1.0 is honored");
    }

    #[test]
    fn http_11_defaults_to_keep_alive() {
        let r = parse("GET / HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert!(r.wants_keep_alive());
        let r = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!r.wants_keep_alive(), "Connection: close is honored");
        let r = parse("GET / HTTP/1.1\r\nConnection: Close\r\n\r\n").unwrap();
        assert!(!r.wants_keep_alive(), "token match is case-insensitive");
        let r = parse("GET / HTTP/1.1\r\nConnection: foo, close\r\n\r\n").unwrap();
        assert!(!r.wants_keep_alive(), "close inside a token list is honored");
    }

    #[test]
    fn persistence_policy_is_explicit_opt_in() {
        // No Connection header: the server may (and does) close.
        assert!(!parse("GET / HTTP/1.1\r\nHost: x\r\n\r\n").unwrap().persist_connection());
        assert!(!parse("GET / HTTP/1.0\r\nHost: x\r\n\r\n").unwrap().persist_connection());
        // Explicit keep-alive persists on both versions.
        assert!(parse("GET / HTTP/1.1\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .persist_connection());
        assert!(parse("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n")
            .unwrap()
            .persist_connection());
        // close always wins, even alongside keep-alive.
        assert!(!parse("GET / HTTP/1.1\r\nConnection: keep-alive, close\r\n\r\n")
            .unwrap()
            .persist_connection());
    }

    #[test]
    fn pipelined_requests_parse_in_order() {
        let mut p = RequestParser::new();
        p.feed(b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /c HTTP/1.1\r\n\r\n");
        let a = p.next_request().unwrap().unwrap();
        let b = p.next_request().unwrap().unwrap();
        let c = p.next_request().unwrap().unwrap();
        assert_eq!((a.path.as_str(), b.path.as_str(), c.path.as_str()), ("/a", "/b", "/c"));
        assert_eq!(b.body, b"hi");
        assert_eq!(p.next_request().unwrap(), None);
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn torn_at_every_byte_boundary() {
        // The reactor feeds the parser whatever a readiness event
        // delivered; a request split at *any* byte boundary must parse
        // identically to the whole-frame case.
        let raw = b"POST /v1/embed HTTP/1.1\r\nHost: t\r\nx-request-id: abc\r\nContent-Length: 4\r\n\r\nbody";
        let mut whole = RequestParser::new();
        whole.feed(raw);
        let want = whole.next_request().unwrap().unwrap();
        for cut in 0..=raw.len() {
            let mut p = RequestParser::new();
            p.feed(&raw[..cut]);
            let early = p.next_request().unwrap();
            if cut < raw.len() {
                assert_eq!(early, None, "complete request from {cut} byte prefix");
            }
            p.feed(&raw[cut..]);
            let got = match early {
                Some(r) => r,
                None => p.next_request().unwrap().unwrap_or_else(|| panic!("no request at {cut}")),
            };
            assert_eq!(got, want, "split at byte {cut} changed the parse");
        }
    }

    proptest! {
        /// Random multi-way splits of a pipelined two-request stream
        /// always yield the same two requests.
        #[test]
        fn prop_torn_pipelined_stream_parses(cuts in proptest::collection::vec(0usize..200, 0..6)) {
            let raw: &[u8] = b"POST /v1/embed HTTP/1.1\r\nContent-Length: 3\r\n\r\nabcGET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";
            let mut cuts: Vec<usize> = cuts.into_iter().map(|c| c % (raw.len() + 1)).collect();
            cuts.sort_unstable();
            cuts.dedup();
            let mut p = RequestParser::new();
            let mut got = Vec::new();
            let mut prev = 0usize;
            for &c in cuts.iter().chain(std::iter::once(&raw.len())) {
                p.feed(&raw[prev..c]);
                prev = c;
                while let Some(r) = p.next_request().unwrap() {
                    got.push(r);
                }
            }
            prop_assert_eq!(got.len(), 2);
            prop_assert_eq!(got[0].method.as_str(), "POST");
            prop_assert_eq!(got[0].body.as_slice(), b"abc");
            prop_assert_eq!(got[1].path.as_str(), "/healthz");
            prop_assert_eq!(p.buffered(), 0);
        }
    }

    #[test]
    fn response_shape() {
        let mut out = Vec::new();
        write_response(&mut out, 429, "application/json", &[("Retry-After", "1".into())], b"{}")
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn render_response_echoes_keep_alive() {
        let mut out = Vec::new();
        render_response(&mut out, 200, "application/json", &[], b"{}", true);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
    }

    #[test]
    fn reasons_cover_service_codes() {
        for code in [200, 201, 202, 400, 404, 405, 408, 409, 411, 413, 429, 431, 500, 503] {
            assert_ne!(reason(code), "Unknown", "{code}");
        }
    }
}
