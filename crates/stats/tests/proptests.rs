//! Property-based tests for the statistics layer.

use observatory_stats::descriptive::{boxplot_stats, five_number_summary, quantile};
use observatory_stats::ks::ks_two_sample;
use observatory_stats::mcv::{albert_zhang_mcv, van_valen_mcv};
use observatory_stats::spearman::{average_ranks, spearman_rho};
use observatory_stats::tdist::{incomplete_beta, t_two_sided_p};
use proptest::prelude::*;

fn sample() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e4f64..1e4, 1..60)
}

proptest! {
    #[test]
    fn quantiles_monotone(xs in sample(), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(quantile(&xs, lo) <= quantile(&xs, hi) + 1e-12);
    }

    #[test]
    fn five_numbers_ordered(xs in sample()) {
        let s = five_number_summary(&xs);
        prop_assert!(s.min <= s.q1 && s.q1 <= s.median && s.median <= s.q3 && s.q3 <= s.max);
    }

    #[test]
    fn boxplot_partitions_sample(xs in sample()) {
        let b = boxplot_stats(&xs);
        // Whiskers lie within the data range, outliers outside the fences.
        prop_assert!(b.whisker_lo >= b.summary.min - 1e-12);
        prop_assert!(b.whisker_hi <= b.summary.max + 1e-12);
        let fence_lo = b.summary.q1 - 1.5 * b.summary.iqr();
        let fence_hi = b.summary.q3 + 1.5 * b.summary.iqr();
        for o in &b.outliers {
            prop_assert!(*o < fence_lo || *o > fence_hi);
        }
    }

    #[test]
    fn ranks_are_a_permutation_mean(xs in sample()) {
        let ranks = average_ranks(&xs);
        let n = xs.len() as f64;
        let sum: f64 = ranks.iter().sum();
        // Σ ranks = n(n+1)/2 regardless of ties.
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn spearman_invariant_under_monotone_transform(xs in proptest::collection::vec(-1e3f64..1e3, 5..40)) {
        let ys: Vec<f64> = (0..xs.len()).map(|i| (i as f64).sin() * 100.0).collect();
        let r1 = spearman_rho(&xs, &ys);
        // Strictly monotone transform of xs: exp(x / 2000).
        let tx: Vec<f64> = xs.iter().map(|x| (x / 2000.0).exp()).collect();
        let r2 = spearman_rho(&tx, &ys);
        if r1.rho.is_finite() && r2.rho.is_finite() {
            prop_assert!((r1.rho - r2.rho).abs() < 1e-9, "{} vs {}", r1.rho, r2.rho);
        }
    }

    #[test]
    fn p_values_in_unit_interval(xs in proptest::collection::vec(-1e3f64..1e3, 5..40)) {
        let ys: Vec<f64> = xs.iter().map(|x| x * 0.5 + 3.0).collect();
        let r = spearman_rho(&xs, &ys);
        if r.p_value.is_finite() {
            prop_assert!((0.0..=1.0).contains(&r.p_value));
        }
    }

    #[test]
    fn az_mcv_nonnegative_and_translation_sensitive(
        rows in proptest::collection::vec(proptest::collection::vec(1.0f64..100.0, 3), 2..12),
    ) {
        let m = observatory_linalg::Matrix::from_rows(&rows);
        let g = albert_zhang_mcv(&m);
        prop_assert!(g.is_nan() || g >= 0.0);
        let vv = van_valen_mcv(&m);
        prop_assert!(vv.is_nan() || vv >= 0.0);
    }

    #[test]
    fn ks_bounds_and_identity(a in sample(), b in sample()) {
        let r = ks_two_sample(&a, &b);
        prop_assert!((0.0..=1.0).contains(&r.statistic));
        prop_assert!((0.0..=1.0).contains(&r.p_value));
        let same = ks_two_sample(&a, &a);
        prop_assert_eq!(same.statistic, 0.0);
    }

    #[test]
    fn ks_symmetric(a in sample(), b in sample()) {
        let ab = ks_two_sample(&a, &b);
        let ba = ks_two_sample(&b, &a);
        prop_assert!((ab.statistic - ba.statistic).abs() < 1e-12);
    }

    #[test]
    fn incomplete_beta_monotone_in_x(a in 0.5f64..10.0, b in 0.5f64..10.0, x1 in 0.0f64..1.0, x2 in 0.0f64..1.0) {
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        prop_assert!(incomplete_beta(a, b, lo) <= incomplete_beta(a, b, hi) + 1e-9);
    }

    #[test]
    fn t_p_monotone_decreasing_in_t(t1 in 0.0f64..10.0, t2 in 0.0f64..10.0, df in 1.0f64..100.0) {
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        prop_assert!(t_two_sided_p(hi, df) <= t_two_sided_p(lo, df) + 1e-9);
    }
}
