//! Spearman's rank correlation coefficient (paper Measure 3).
//!
//! Property 3 (Join Relationship) asks whether there is a *monotonic*
//! relationship between a syntactic value-overlap measure and embedding
//! cosine similarity over pairs of joinable columns. Spearman's ρ is the
//! Pearson correlation of the rank variables; it is distribution-free,
//! which is why the paper adopts it.
//!
//! Ties receive average (fractional) ranks, the standard correction, so the
//! coefficient stays within `[-1, 1]` on data with duplicated overlap
//! values — common with containment, which saturates at 1.0.

use observatory_linalg::reduce;

/// Result of a Spearman correlation test.
#[derive(Debug, Clone, Copy)]
pub struct SpearmanResult {
    /// Spearman's rank correlation coefficient, in `[-1, 1]`.
    pub rho: f64,
    /// Two-sided p-value under H₀: ρ = 0, from the t-statistic
    /// `t = ρ √((n−2)/(1−ρ²))` with `n − 2` degrees of freedom, evaluated
    /// with the exact Student-t tail ([`crate::tdist`]). Reported so
    /// harnesses can reproduce the paper's "p < 0.01" claim.
    pub p_value: f64,
    /// Number of paired observations.
    pub n: usize,
}

/// Average ranks of a sample (1-based; ties share the mean of their ranks).
pub fn average_ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| xs[i].total_cmp(&xs[j]));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        // Find the tie run [i, j).
        let mut j = i + 1;
        while j < n && xs[order[j]] == xs[order[i]] {
            j += 1;
        }
        // Average of 1-based ranks i+1 ..= j.
        let avg = (i + 1 + j) as f64 / 2.0;
        for &k in &order[i..j] {
            ranks[k] = avg;
        }
        i = j;
    }
    ranks
}

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns `f64::NAN` if either sample has zero variance.
///
/// The centered moments are computed with [`observatory_linalg::reduce`]
/// (tier-dispatched 8-lane reductions, bit-identical across SIMD tiers),
/// so ρ is reproducible to the bit regardless of the host CPU.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson: length mismatch");
    let n = xs.len() as f64;
    if xs.is_empty() {
        return f64::NAN;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let dx: Vec<f64> = xs.iter().map(|x| x - mx).collect();
    let dy: Vec<f64> = ys.iter().map(|y| y - my).collect();
    let sxy = reduce::dot(&dx, &dy);
    let sxx = reduce::sq_norm(&dx);
    let syy = reduce::sq_norm(&dy);
    if sxx == 0.0 || syy == 0.0 {
        return f64::NAN;
    }
    (sxy / (sxx * syy).sqrt()).clamp(-1.0, 1.0)
}

/// Spearman's ρ between two paired samples, with a tie-corrected rank
/// transform and an approximate two-sided p-value.
///
/// # Panics
/// Panics if the samples have different lengths.
pub fn spearman_rho(xs: &[f64], ys: &[f64]) -> SpearmanResult {
    assert_eq!(xs.len(), ys.len(), "spearman_rho: length mismatch");
    let n = xs.len();
    let rho = pearson(&average_ranks(xs), &average_ranks(ys));
    let p_value = if !rho.is_finite() || n < 4 {
        f64::NAN
    } else if rho.abs() >= 1.0 {
        0.0
    } else {
        let t = rho * ((n as f64 - 2.0) / (1.0 - rho * rho)).sqrt();
        crate::tdist::t_two_sided_p(t, n as f64 - 2.0)
    };
    SpearmanResult { rho, p_value, n }
}

/// Standard normal survival function `P(Z > z)` via an `erfc`
/// approximation (Abramowitz & Stegun 7.1.26, |error| < 1.5e−7).
pub fn normal_sf(z: f64) -> f64 {
    0.5 * erfc(z / std::f64::consts::SQRT_2)
}

fn erfc(x: f64) -> f64 {
    let sign_negative = x < 0.0;
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let result = poly * (-x * x).exp();
    if sign_negative {
        2.0 - result
    } else {
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_simple() {
        assert_eq!(average_ranks(&[30.0, 10.0, 20.0]), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn ranks_with_ties() {
        // 10, 20, 20, 30 → ranks 1, 2.5, 2.5, 4.
        assert_eq!(average_ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn all_equal_all_mid_rank() {
        assert_eq!(average_ranks(&[5.0, 5.0, 5.0]), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn perfect_monotone_is_one() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [1.0, 8.0, 27.0, 64.0, 125.0]; // monotone but nonlinear
        let r = spearman_rho(&xs, &ys);
        assert!((r.rho - 1.0).abs() < 1e-12);
        assert!(r.p_value < 0.01);
    }

    #[test]
    fn perfect_antitone_is_minus_one() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [9.0, 7.0, 5.0, 3.0];
        assert!((spearman_rho(&xs, &ys).rho + 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_textbook_value() {
        // Classic example: ρ for these scores is exactly -29/165 ≈ -0.1757...
        let iq = [106.0, 100.0, 86.0, 101.0, 99.0, 103.0, 97.0, 113.0, 112.0, 110.0];
        let tv = [7.0, 27.0, 2.0, 50.0, 28.0, 29.0, 20.0, 12.0, 6.0, 17.0];
        let r = spearman_rho(&iq, &tv);
        assert!((r.rho - (-29.0 / 165.0)).abs() < 1e-12, "{}", r.rho);
    }

    #[test]
    fn constant_sample_is_nan() {
        let r = spearman_rho(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]);
        assert!(r.rho.is_nan());
    }

    #[test]
    fn independent_noise_low_rho_high_p() {
        // Deterministic pseudo-noise that is uncorrelated by construction.
        let xs: Vec<f64> = (0..200).map(|i| ((i * 7919) % 1000) as f64).collect();
        let ys: Vec<f64> = (0..200).map(|i| ((i * 104729 + 311) % 1000) as f64).collect();
        let r = spearman_rho(&xs, &ys);
        assert!(r.rho.abs() < 0.2, "rho={}", r.rho);
        assert!(r.p_value > 0.01, "p={}", r.p_value);
    }

    #[test]
    fn rho_in_bounds_with_ties() {
        let xs = [1.0, 1.0, 2.0, 2.0, 3.0, 3.0];
        let ys = [1.0, 2.0, 1.0, 2.0, 1.0, 2.0];
        let r = spearman_rho(&xs, &ys);
        assert!((-1.0..=1.0).contains(&r.rho));
    }

    #[test]
    fn normal_sf_reference_values() {
        assert!((normal_sf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_sf(1.96) - 0.0249979).abs() < 1e-4);
        assert!((normal_sf(2.5758) - 0.005).abs() < 1e-4);
    }

    #[test]
    fn pearson_perfect_linear() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 6.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
    }
}
