//! Descriptive statistics for Observatory's distribution reports.
//!
//! Every figure in the paper is a distribution plot (box plots in Figures
//! 5, 7, 11, 13; density plots in Figure 10; scatter in Figure 9). The
//! harness binaries regenerate those figures as text, which requires the
//! same summaries the plots encode: quartiles, medians, 1.5 × IQR whiskers,
//! histograms and three-number summaries (Table 5 reports min/median/max).

/// Linear-interpolation quantile (type-7 / NumPy default) of a sample.
///
/// `q` is clamped to `[0, 1]`. The sample does not need to be sorted.
///
/// # Panics
/// Panics if the sample is empty.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile: empty sample");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    quantile_sorted(&sorted, q)
}

/// Quantile of an already-sorted sample (ascending).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile_sorted: empty sample");
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Minimum, first quartile, median, third quartile, maximum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiveNumberSummary {
    pub min: f64,
    pub q1: f64,
    pub median: f64,
    pub q3: f64,
    pub max: f64,
}

impl FiveNumberSummary {
    /// Interquartile range `q3 − q1`.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

impl std::fmt::Display for FiveNumberSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "min={:.4} q1={:.4} med={:.4} q3={:.4} max={:.4}",
            self.min, self.q1, self.median, self.q3, self.max
        )
    }
}

/// Five-number summary of a sample. NaN values are dropped first; if
/// nothing remains the summary is all-NaN.
pub fn five_number_summary(xs: &[f64]) -> FiveNumberSummary {
    let mut sorted: Vec<f64> = xs.iter().copied().filter(|x| !x.is_nan()).collect();
    if sorted.is_empty() {
        return FiveNumberSummary {
            min: f64::NAN,
            q1: f64::NAN,
            median: f64::NAN,
            q3: f64::NAN,
            max: f64::NAN,
        };
    }
    sorted.sort_by(|a, b| a.total_cmp(b));
    FiveNumberSummary {
        min: sorted[0],
        q1: quantile_sorted(&sorted, 0.25),
        median: quantile_sorted(&sorted, 0.5),
        q3: quantile_sorted(&sorted, 0.75),
        max: sorted[sorted.len() - 1],
    }
}

/// Tukey box-plot statistics: quartiles plus 1.5 × IQR whisker fences and
/// outliers, matching the paper's box plots (its "minimum" is
/// `Q1 − 1.5 × IQR`, its "maximum" `Q3 + 1.5 × IQR`).
#[derive(Debug, Clone)]
pub struct BoxplotStats {
    pub summary: FiveNumberSummary,
    /// Smallest observation ≥ `Q1 − 1.5 × IQR` (lower whisker tip).
    pub whisker_lo: f64,
    /// Largest observation ≤ `Q3 + 1.5 × IQR` (upper whisker tip).
    pub whisker_hi: f64,
    /// Observations outside the whisker fences.
    pub outliers: Vec<f64>,
}

/// Compute Tukey box-plot statistics over a sample (NaNs dropped).
pub fn boxplot_stats(xs: &[f64]) -> BoxplotStats {
    let summary = five_number_summary(xs);
    if summary.min.is_nan() {
        return BoxplotStats {
            summary,
            whisker_lo: f64::NAN,
            whisker_hi: f64::NAN,
            outliers: Vec::new(),
        };
    }
    let lo_fence = summary.q1 - 1.5 * summary.iqr();
    let hi_fence = summary.q3 + 1.5 * summary.iqr();
    let mut whisker_lo = f64::INFINITY;
    let mut whisker_hi = f64::NEG_INFINITY;
    let mut outliers = Vec::new();
    for &x in xs.iter().filter(|x| !x.is_nan()) {
        if x < lo_fence || x > hi_fence {
            outliers.push(x);
        } else {
            whisker_lo = whisker_lo.min(x);
            whisker_hi = whisker_hi.max(x);
        }
    }
    BoxplotStats { summary, whisker_lo, whisker_hi, outliers }
}

/// A fixed-width histogram over `[lo, hi]` with `bins` buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    pub lo: f64,
    pub hi: f64,
    pub counts: Vec<usize>,
}

impl Histogram {
    /// Histogram of a sample. Values outside `[lo, hi]` are clamped into
    /// the edge buckets; NaNs are dropped.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(xs: &[f64], lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "Histogram: zero bins");
        assert!(hi > lo, "Histogram: degenerate range");
        let mut counts = vec![0usize; bins];
        let w = (hi - lo) / bins as f64;
        for &x in xs.iter().filter(|x| !x.is_nan()) {
            let b = (((x - lo) / w).floor() as i64).clamp(0, bins as i64 - 1) as usize;
            counts[b] += 1;
        }
        Self { lo, hi, counts }
    }

    /// Total number of counted observations.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Render as a one-line sparkline-ish bar string (for harness output).
    pub fn render(&self) -> String {
        const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = self.counts.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return "▁".repeat(self.counts.len());
        }
        self.counts.iter().map(|&c| GLYPHS[(c * (GLYPHS.len() - 1) + max / 2) / max]).collect()
    }
}

/// Arithmetic mean; NaN for an empty sample.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased standard deviation; 0 for samples of size < 2.
pub fn std_dev(xs: &[f64]) -> f64 {
    observatory_linalg::moments::variance(xs).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&xs, 0.5), 2.5);
        assert_eq!(quantile(&xs, 0.25), 1.75);
    }

    #[test]
    fn five_numbers_odd_sample() {
        let s = five_number_summary(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.iqr(), 2.0);
    }

    #[test]
    fn five_numbers_drops_nan() {
        let s = five_number_summary(&[1.0, f64::NAN, 3.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn five_numbers_empty_is_nan() {
        assert!(five_number_summary(&[]).median.is_nan());
    }

    #[test]
    fn boxplot_flags_outlier() {
        // Cluster near 10 plus a far outlier at 100.
        let xs = [9.0, 10.0, 10.0, 11.0, 10.5, 9.5, 100.0];
        let b = boxplot_stats(&xs);
        assert_eq!(b.outliers, vec![100.0]);
        assert_eq!(b.whisker_hi, 11.0);
        assert_eq!(b.whisker_lo, 9.0);
    }

    #[test]
    fn boxplot_no_outliers_whiskers_are_extremes() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = boxplot_stats(&xs);
        assert!(b.outliers.is_empty());
        assert_eq!(b.whisker_lo, 1.0);
        assert_eq!(b.whisker_hi, 5.0);
    }

    #[test]
    fn histogram_counts_and_clamping() {
        let xs = [0.05, 0.15, 0.15, 0.95, -5.0, 5.0];
        let h = Histogram::new(&xs, 0.0, 1.0, 10);
        assert_eq!(h.counts[0], 2); // 0.05 and clamped −5
        assert_eq!(h.counts[1], 2);
        assert_eq!(h.counts[9], 2); // 0.95 and clamped 5
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn histogram_render_length() {
        let h = Histogram::new(&[0.5], 0.0, 1.0, 8);
        assert_eq!(h.render().chars().count(), 8);
    }

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((std_dev(&[2.0, 4.0]) - 2f64.sqrt()).abs() < 1e-12);
        assert!(mean(&[]).is_nan());
    }
}
