//! Bootstrap confidence intervals for measure statistics.
//!
//! Observatory's distributions come from finite corpora; when two models'
//! medians sit close (RoBERTa vs DODUO on P1, say), a point estimate alone
//! cannot say whether the ordering is stable. The percentile bootstrap —
//! resample with replacement, recompute the statistic, take the empirical
//! quantiles — gives a distribution-free interval for any statistic of a
//! sample, which the harnesses can report alongside the medians.

use observatory_linalg::SplitMix64;

/// A two-sided confidence interval for a statistic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate on the original sample.
    pub estimate: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
    /// Confidence level (e.g. 0.95).
    pub level: f64,
}

impl ConfidenceInterval {
    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether two intervals overlap (a quick "is the ordering stable?"
    /// check; non-overlap at 95% is strong evidence of a real difference).
    pub fn overlaps(&self, other: &ConfidenceInterval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }
}

/// Percentile-bootstrap confidence interval for `statistic` over `sample`.
///
/// Returns an all-NaN interval for an empty sample.
///
/// # Panics
/// Panics if `level` is outside `(0, 1)` or `resamples == 0`.
pub fn bootstrap_ci<F: Fn(&[f64]) -> f64>(
    sample: &[f64],
    statistic: F,
    resamples: usize,
    level: f64,
    seed: u64,
) -> ConfidenceInterval {
    assert!(resamples > 0, "bootstrap_ci: zero resamples");
    assert!(level > 0.0 && level < 1.0, "bootstrap_ci: level must be in (0, 1)");
    if sample.is_empty() {
        return ConfidenceInterval { estimate: f64::NAN, lo: f64::NAN, hi: f64::NAN, level };
    }
    let estimate = statistic(sample);
    let mut rng = SplitMix64::new(seed);
    let mut stats = Vec::with_capacity(resamples);
    let mut scratch = vec![0.0; sample.len()];
    for _ in 0..resamples {
        for slot in scratch.iter_mut() {
            *slot = sample[rng.next_below(sample.len())];
        }
        let s = statistic(&scratch);
        if !s.is_nan() {
            stats.push(s);
        }
    }
    if stats.is_empty() {
        return ConfidenceInterval { estimate, lo: f64::NAN, hi: f64::NAN, level };
    }
    stats.sort_by(|a, b| a.total_cmp(b));
    let alpha = (1.0 - level) / 2.0;
    let lo = crate::descriptive::quantile_sorted(&stats, alpha);
    let hi = crate::descriptive::quantile_sorted(&stats, 1.0 - alpha);
    ConfidenceInterval { estimate, lo, hi, level }
}

/// Convenience: bootstrap CI of the mean.
pub fn mean_ci(sample: &[f64], resamples: usize, level: f64, seed: u64) -> ConfidenceInterval {
    bootstrap_ci(sample, crate::descriptive::mean, resamples, level, seed)
}

/// Convenience: bootstrap CI of the median.
pub fn median_ci(sample: &[f64], resamples: usize, level: f64, seed: u64) -> ConfidenceInterval {
    bootstrap_ci(sample, |xs| crate::descriptive::quantile(xs, 0.5), resamples, level, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shifted_sample(center: f64, n: usize) -> Vec<f64> {
        (0..n).map(|i| center + ((i as f64 * 0.7).sin())).collect()
    }

    #[test]
    fn interval_contains_estimate() {
        let xs = shifted_sample(10.0, 60);
        let ci = mean_ci(&xs, 500, 0.95, 1);
        assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi, "{ci:?}");
        assert!(ci.width() > 0.0);
    }

    #[test]
    fn wider_at_higher_confidence() {
        let xs = shifted_sample(5.0, 40);
        let ci90 = mean_ci(&xs, 800, 0.90, 2);
        let ci99 = mean_ci(&xs, 800, 0.99, 2);
        assert!(ci99.width() > ci90.width(), "{ci90:?} vs {ci99:?}");
    }

    #[test]
    fn narrower_with_more_data() {
        let small = shifted_sample(5.0, 10);
        let large = shifted_sample(5.0, 400);
        let ci_small = mean_ci(&small, 500, 0.95, 3);
        let ci_large = mean_ci(&large, 500, 0.95, 3);
        assert!(ci_large.width() < ci_small.width());
    }

    #[test]
    fn disjoint_populations_do_not_overlap() {
        let a = mean_ci(&shifted_sample(0.0, 50), 500, 0.95, 4);
        let b = mean_ci(&shifted_sample(10.0, 50), 500, 0.95, 4);
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&a));
    }

    #[test]
    fn deterministic_given_seed() {
        let xs = shifted_sample(1.0, 30);
        let a = median_ci(&xs, 300, 0.95, 7);
        let b = median_ci(&xs, 300, 0.95, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_sample_is_nan() {
        let ci = mean_ci(&[], 100, 0.95, 1);
        assert!(ci.estimate.is_nan());
        assert!(ci.lo.is_nan());
    }

    #[test]
    fn constant_sample_zero_width() {
        let ci = mean_ci(&[3.0; 20], 200, 0.95, 1);
        assert_eq!(ci.lo, 3.0);
        assert_eq!(ci.hi, 3.0);
    }

    #[test]
    #[should_panic(expected = "level")]
    fn bad_level_panics() {
        mean_ci(&[1.0], 10, 1.5, 1);
    }
}
