//! Student's t distribution tail probabilities.
//!
//! Spearman significance uses the t-approximation
//! `t = ρ √((n−2)/(1−ρ²))` with `n − 2` degrees of freedom. For the
//! hundreds-of-pairs workloads of Table 3 a normal tail is accurate
//! enough, but small pilot workloads (tens of pairs) deserve the exact t
//! tail. Computed via the regularized incomplete beta function with
//! Lentz's continued fraction — the standard numerical approach.

/// Natural log of the gamma function (Lanczos approximation, |ε| < 1e-10
/// for x > 0).
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients (g = 7, n = 9).
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` via continued
/// fraction (Numerical Recipes' `betai`). `x` clamped to `[0, 1]`.
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    let x = x.clamp(0.0, 1.0);
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the symmetry that keeps the continued fraction convergent.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Lentz's continued fraction for the incomplete beta.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Two-sided p-value of a t statistic with `df` degrees of freedom:
/// `P(|T| > |t|)`.
pub fn t_two_sided_p(t: f64, df: f64) -> f64 {
    if !t.is_finite() || df <= 0.0 {
        return f64::NAN;
    }
    incomplete_beta(df / 2.0, 0.5, df / (df + t * t)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_reference_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_beta_endpoints_and_symmetry() {
        assert_eq!(incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(incomplete_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 − I_{1−x}(b,a).
        let (a, b, x) = (2.5, 1.5, 0.3);
        let lhs = incomplete_beta(a, b, x);
        let rhs = 1.0 - incomplete_beta(b, a, 1.0 - x);
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn incomplete_beta_uniform_case() {
        // I_x(1, 1) = x.
        for x in [0.1, 0.5, 0.9] {
            assert!((incomplete_beta(1.0, 1.0, x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn t_reference_values() {
        // Classic t-table values: P(|T| > 2.228) = 0.05 at df = 10.
        assert!((t_two_sided_p(2.228, 10.0) - 0.05).abs() < 5e-4);
        // P(|T| > 2.086) = 0.05 at df = 20.
        assert!((t_two_sided_p(2.086, 20.0) - 0.05).abs() < 5e-4);
        // P(|T| > 3.169) = 0.01 at df = 10.
        assert!((t_two_sided_p(3.169, 10.0) - 0.01).abs() < 5e-4);
    }

    #[test]
    fn t_converges_to_normal_for_large_df() {
        // df → ∞: matches the normal two-sided tail at 1.96 ≈ 0.05.
        let p = t_two_sided_p(1.96, 10_000.0);
        assert!((p - 0.05).abs() < 1e-3, "{p}");
    }

    #[test]
    fn t_symmetry_and_edges() {
        assert_eq!(t_two_sided_p(2.0, 10.0), t_two_sided_p(-2.0, 10.0));
        assert!((t_two_sided_p(0.0, 5.0) - 1.0).abs() < 1e-12);
        assert!(t_two_sided_p(f64::NAN, 5.0).is_nan());
        assert!(t_two_sided_p(1.0, 0.0).is_nan());
    }
}
