//! # observatory-stats
//!
//! Statistical measures used by Observatory's eight properties.
//!
//! - [`mcv`]: multivariate coefficients of variation. The headline
//!   estimator is Albert & Zhang's MCV (paper Measure 1), which is defined
//!   even when the covariance matrix is singular — the common case in
//!   Observatory, where the number of embedding observations (≤ 1000
//!   permutations) is smaller than the embedding dimensionality. An
//!   inverse-based estimator is included for the ablation study.
//! - [`spearman`]: Spearman's rank correlation coefficient with average
//!   ranks for ties and an approximate significance test (paper Measure 3).
//! - [`descriptive`]: quantiles, five-number summaries, box-plot statistics
//!   (1.5 × IQR whiskers as used throughout the paper's figures), and
//!   histograms for the distribution plots.
//! - [`bootstrap`]: percentile-bootstrap confidence intervals for any
//!   statistic of a measure distribution.
//! - [`tdist`]: Student-t tail probabilities (exact Spearman p-values at
//!   small n, via the regularized incomplete beta).
//! - [`ks`]: the two-sample Kolmogorov–Smirnov test, quantifying the
//!   (non-)separation of distribution pairs such as Figure 10's FD vs
//!   non-FD variances.

pub mod bootstrap;
pub mod descriptive;
pub mod ks;
pub mod mcv;
pub mod spearman;
pub mod tdist;

pub use descriptive::{five_number_summary, BoxplotStats, FiveNumberSummary};
pub use mcv::albert_zhang_mcv;
pub use spearman::spearman_rho;
