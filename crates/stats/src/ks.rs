//! Two-sample Kolmogorov–Smirnov statistic.
//!
//! The paper's Figure 10 argument is visual: "none of the models manifests
//! clear separation between the two variance distributions". The KS
//! statistic makes that argument quantitative — `D = sup |F₁ − F₂|` over
//! the empirical CDFs — with the classic asymptotic p-value, so the
//! harness can report *how* separated the FD and non-FD distributions are.

/// Result of a two-sample KS test.
#[derive(Debug, Clone, Copy)]
pub struct KsResult {
    /// The KS statistic `D ∈ [0, 1]`.
    pub statistic: f64,
    /// Asymptotic two-sided p-value (Kolmogorov distribution); `NaN` for
    /// empty samples.
    pub p_value: f64,
}

/// Two-sample KS test. NaN observations are dropped.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> KsResult {
    let mut xa: Vec<f64> = a.iter().copied().filter(|v| !v.is_nan()).collect();
    let mut xb: Vec<f64> = b.iter().copied().filter(|v| !v.is_nan()).collect();
    if xa.is_empty() || xb.is_empty() {
        return KsResult { statistic: f64::NAN, p_value: f64::NAN };
    }
    xa.sort_by(|x, y| x.total_cmp(y));
    xb.sort_by(|x, y| x.total_cmp(y));
    let (na, nb) = (xa.len(), xb.len());
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < na && j < nb {
        let x = xa[i].min(xb[j]);
        while i < na && xa[i] <= x {
            i += 1;
        }
        while j < nb && xb[j] <= x {
            j += 1;
        }
        let fa = i as f64 / na as f64;
        let fb = j as f64 / nb as f64;
        d = d.max((fa - fb).abs());
    }
    let ne = (na * nb) as f64 / (na + nb) as f64;
    let lambda = (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()) * d;
    KsResult { statistic: d, p_value: kolmogorov_sf(lambda) }
}

/// Survival function of the Kolmogorov distribution,
/// `Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²}`, clamped to `[0, 1]`.
fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_zero_statistic() {
        let xs = vec![1.0, 2.0, 3.0, 4.0];
        let r = ks_two_sample(&xs, &xs);
        assert_eq!(r.statistic, 0.0);
        assert!(r.p_value > 0.99);
    }

    #[test]
    fn disjoint_samples_full_statistic() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![10.0, 11.0, 12.0];
        let r = ks_two_sample(&a, &b);
        assert_eq!(r.statistic, 1.0);
        assert!(r.p_value < 0.1);
    }

    #[test]
    fn overlapping_samples_intermediate() {
        let a: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let b: Vec<f64> = (0..100).map(|i| 0.25 + i as f64 / 100.0).collect();
        let r = ks_two_sample(&a, &b);
        assert!((r.statistic - 0.25).abs() < 0.02, "{}", r.statistic);
        assert!(r.p_value < 0.01);
    }

    #[test]
    fn same_distribution_high_p() {
        // Interleaved draws from the same uniform grid.
        let a: Vec<f64> = (0..50).map(|i| (2 * i) as f64).collect();
        let b: Vec<f64> = (0..50).map(|i| (2 * i + 1) as f64).collect();
        let r = ks_two_sample(&a, &b);
        assert!(r.statistic < 0.05);
        assert!(r.p_value > 0.9);
    }

    #[test]
    fn handles_unequal_sizes_and_nans() {
        let a = vec![1.0, f64::NAN, 2.0];
        let b = vec![1.5, 2.5, 3.0, 4.0, 5.0];
        let r = ks_two_sample(&a, &b);
        assert!(r.statistic.is_finite());
        assert!((0.0..=1.0).contains(&r.statistic));
    }

    #[test]
    fn empty_is_nan() {
        assert!(ks_two_sample(&[], &[1.0]).statistic.is_nan());
    }
}
