//! Multivariate coefficients of variation (MCV).
//!
//! The coefficient of variation `σ/μ` summarizes the variability of a
//! univariate population *relative to its mean*, making populations with
//! different scales comparable. Observatory needs the multivariate
//! analogue: a scalar summary of the relative dispersion of a set of
//! embedding vectors (paper Measure 1, used by Properties 1, 2 and 5).
//!
//! The paper adopts **Albert & Zhang's MCV** (Biometrical Journal 2010):
//!
//! ```text
//! γ_AZ = sqrt( μᵀ Σ μ / (μᵀ μ)² )
//! ```
//!
//! chosen specifically because it (a) accounts for correlations between
//! dimensions and (b) does **not** require `Σ⁻¹`. That matters: a table
//! with 6 rows has 720 row permutations, but BERT embeddings have 768
//! dimensions, so the sample covariance of the 720 observations is
//! singular and inverse-based MCVs (Van Valen, Voinov–Nikulin, Reyment)
//! are undefined. [`voinov_nikulin_mcv`] is provided to demonstrate that
//! failure in the `ablation_mcv` bench.

use observatory_linalg::moments::moments;
use observatory_linalg::reduce::dot;
use observatory_linalg::solve::invert;
use observatory_linalg::Matrix;

/// Albert & Zhang's multivariate coefficient of variation of the rows of
/// `sample` (an `n × d` matrix of `n` observations).
///
/// Returns `0.0` for a single observation (no dispersion) and `f64::NAN`
/// when the mean vector is exactly zero, in which case relative variation
/// is undefined — the univariate CV has the same singularity at `μ = 0`.
///
/// # Panics
/// Panics if `sample` has no rows.
pub fn albert_zhang_mcv(sample: &Matrix) -> f64 {
    let m = moments(sample);
    albert_zhang_from_moments(&m.mean, &m.cov)
}

/// Albert & Zhang's MCV from precomputed moments.
pub fn albert_zhang_from_moments(mean: &[f64], cov: &Matrix) -> f64 {
    let mu_norm_sq = dot(mean, mean);
    if mu_norm_sq == 0.0 {
        return f64::NAN;
    }
    let sigma_mu = cov.matvec(mean);
    let quad = dot(mean, &sigma_mu);
    // Σ is PSD so the quadratic form is ≥ 0 up to round-off.
    (quad.max(0.0) / (mu_norm_sq * mu_norm_sq)).sqrt()
}

/// Voinov–Nikulin-style inverse-based MCV: `1 / sqrt(μᵀ Σ⁻¹ μ)`.
///
/// Returns `None` when `Σ` is singular — which is guaranteed whenever the
/// number of observations is at most the dimensionality, the typical regime
/// in Observatory. Kept for the D3 ablation (DESIGN.md).
pub fn voinov_nikulin_mcv(sample: &Matrix) -> Option<f64> {
    let m = moments(sample);
    let inv = invert(&m.cov)?;
    let quad = dot(&m.mean, &inv.matvec(&m.mean));
    if quad <= 0.0 {
        return None;
    }
    Some(1.0 / quad.sqrt())
}

/// Van Valen's MCV: `sqrt(tr(Σ) / μᵀμ)`.
///
/// Defined for singular `Σ` like Albert–Zhang's, but it ignores
/// correlations between dimensions entirely (the trace sees only marginal
/// variances) — one of the two criteria for which the paper prefers
/// Albert–Zhang (§3.2). Included for the D3 ablation.
pub fn van_valen_mcv(sample: &Matrix) -> f64 {
    let m = moments(sample);
    let mu_norm_sq = dot(&m.mean, &m.mean);
    if mu_norm_sq == 0.0 {
        return f64::NAN;
    }
    let trace: f64 = (0..m.cov.rows()).map(|i| m.cov[(i, i)]).sum();
    (trace.max(0.0) / mu_norm_sq).sqrt()
}

/// Univariate coefficient of variation `σ/|μ|` (unbiased σ).
///
/// Returns `f64::NAN` when the mean is zero.
pub fn univariate_cv(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    if mean == 0.0 {
        return f64::NAN;
    }
    let var = observatory_linalg::moments::variance(xs);
    var.sqrt() / mean.abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_to_univariate_cv_in_1d() {
        let xs = vec![8.0, 10.0, 12.0, 9.0, 11.0];
        let m = Matrix::from_rows(&xs.iter().map(|&x| vec![x]).collect::<Vec<_>>());
        let gamma = albert_zhang_mcv(&m);
        // In 1-D: sqrt(μ² σ² / μ⁴) = σ/|μ|.
        let cv = univariate_cv(&xs);
        assert!((gamma - cv).abs() < 1e-12, "{gamma} vs {cv}");
    }

    #[test]
    fn zero_dispersion_is_zero() {
        let m = Matrix::from_rows(&vec![vec![3.0, 4.0]; 10]);
        assert_eq!(albert_zhang_mcv(&m), 0.0);
    }

    #[test]
    fn single_observation_is_zero() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
        assert_eq!(albert_zhang_mcv(&m), 0.0);
    }

    #[test]
    fn zero_mean_is_nan() {
        let m = Matrix::from_rows(&[vec![1.0, -1.0], vec![-1.0, 1.0]]);
        assert!(albert_zhang_mcv(&m).is_nan());
    }

    #[test]
    fn scale_invariance() {
        // γ(c·X) = γ(X): both μ and Σ^(1/2) scale linearly with c.
        let rows = vec![vec![3.0, 5.0], vec![4.0, 6.0], vec![5.0, 4.0], vec![3.5, 5.5]];
        let m1 = Matrix::from_rows(&rows);
        let scaled: Vec<Vec<f64>> =
            rows.iter().map(|r| r.iter().map(|x| x * 7.5).collect()).collect();
        let m2 = Matrix::from_rows(&scaled);
        let (g1, g2) = (albert_zhang_mcv(&m1), albert_zhang_mcv(&m2));
        assert!((g1 - g2).abs() < 1e-12, "{g1} vs {g2}");
    }

    #[test]
    fn more_dispersion_larger_mcv() {
        // Dispersion along the mean direction (γ_AZ weights Σ by μ, so
        // only the μ-direction component of the dispersion registers).
        let tight = Matrix::from_rows(&[vec![10.0, 10.0], vec![10.1, 10.1], vec![9.9, 9.9]]);
        let wide = Matrix::from_rows(&[vec![10.0, 10.0], vec![13.0, 13.0], vec![7.0, 7.0]]);
        assert!(albert_zhang_mcv(&wide) > albert_zhang_mcv(&tight));
    }

    #[test]
    fn dispersion_orthogonal_to_mean_is_invisible() {
        // A defining feature of γ_AZ = sqrt(μᵀΣμ/(μᵀμ)²): variation in the
        // subspace orthogonal to μ contributes nothing.
        let m = Matrix::from_rows(&[vec![10.0, 10.0], vec![13.0, 7.0], vec![7.0, 13.0]]);
        assert!(albert_zhang_mcv(&m).abs() < 1e-12);
    }

    #[test]
    fn defined_when_n_leq_d() {
        // 3 observations in 5 dimensions: covariance is singular; the
        // Albert–Zhang MCV must still be finite. This is the exact scenario
        // from the paper's Measure 1 example.
        let m = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
            vec![1.1, 2.1, 2.9, 4.2, 4.8],
            vec![0.9, 1.8, 3.1, 3.9, 5.1],
        ]);
        let g = albert_zhang_mcv(&m);
        assert!(g.is_finite() && g > 0.0);
        // ... while the inverse-based estimator fails.
        assert!(voinov_nikulin_mcv(&m).is_none());
    }

    #[test]
    fn voinov_nikulin_defined_when_n_gt_d() {
        // 12 noisy observations in 2 dimensions: Σ invertible.
        let rows: Vec<Vec<f64>> = (0..12)
            .map(|i| {
                let x = i as f64;
                vec![10.0 + (x * 0.7).sin(), 20.0 + (x * 1.3).cos()]
            })
            .collect();
        let m = Matrix::from_rows(&rows);
        let v = voinov_nikulin_mcv(&m).expect("invertible covariance");
        assert!(v.is_finite() && v > 0.0);
    }

    #[test]
    fn van_valen_matches_univariate_in_1d_and_ignores_correlation() {
        let xs = vec![8.0, 10.0, 12.0];
        let m = Matrix::from_rows(&xs.iter().map(|&x| vec![x]).collect::<Vec<_>>());
        assert!((van_valen_mcv(&m) - univariate_cv(&xs)).abs() < 1e-12);
        // Two samples with identical marginals but opposite correlation
        // give the same Van Valen value — it is correlation-blind...
        let pos = Matrix::from_rows(&[vec![9.0, 9.0], vec![11.0, 11.0]]);
        let neg = Matrix::from_rows(&[vec![9.0, 11.0], vec![11.0, 9.0]]);
        assert!((van_valen_mcv(&pos) - van_valen_mcv(&neg)).abs() < 1e-12);
        // ...whereas Albert–Zhang distinguishes them.
        assert!((albert_zhang_mcv(&pos) - albert_zhang_mcv(&neg)).abs() > 1e-6);
    }

    #[test]
    fn van_valen_defined_when_singular() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![1.1, 2.1, 3.1]]);
        assert!(van_valen_mcv(&m).is_finite());
    }

    #[test]
    fn univariate_cv_known_value() {
        // mean 10, sample std sqrt(variance of [8,12] around 10) = sqrt(8) ≈ 2.828
        let cv = univariate_cv(&[8.0, 12.0]);
        assert!((cv - (8.0f64).sqrt() / 10.0).abs() < 1e-12);
    }

    #[test]
    fn univariate_cv_empty_and_zero_mean() {
        assert!(univariate_cv(&[]).is_nan());
        assert!(univariate_cv(&[-1.0, 1.0]).is_nan());
    }
}
