//! NextiaJD-like joinability testbed (paper §4.2, Property 3).
//!
//! The original testbeds label candidate column pairs with a join quality
//! derived from containment and cardinality proportion; the paper uses
//! "all pairs with join quality greater than 0". What Property 3 needs is
//! a pool of query/candidate column pairs whose *value overlap spans the
//! whole (0, 1] spectrum* and that contain *duplicates*, so that
//! containment, Jaccard and multiset-Jaccard genuinely disagree.
//!
//! Realism details that matter to the measures:
//!
//! - each pair lives in a **value domain** (cities, countries, companies,
//!   …) and both columns draw distractors from the *same* domain — as in
//!   open-data lakes, where a city column's non-overlapping values are
//!   still cities;
//! - the columns carry **domain-appropriate headers** with the
//!   lexical drift real lakes exhibit (`city` vs `town`), which is what
//!   lets schema-reading models (TaBERT) participate meaningfully;
//! - values are duplicated with random multiplicities (1–3), separating
//!   the multiset measure from the set-based ones.

use crate::pools;
use observatory_linalg::SplitMix64;
use observatory_table::{Column, Value};

/// One joinable query/candidate column pair.
#[derive(Debug, Clone)]
pub struct JoinPair {
    /// Query column `C_q`.
    pub query: Column,
    /// Candidate column `C_c`.
    pub candidate: Column,
    /// The containment level the generator aimed for (diagnostics only;
    /// measures are recomputed exactly by `observatory-search`).
    pub target_containment: f64,
}

/// Testbed profile (the paper's NextiaJD splits by dataset size).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Testbed {
    /// Small columns (tens of values) — the paper's headline testbed.
    Xs,
    /// Larger columns (cross-domain value mix).
    S,
}

/// Configuration of the joinability generator.
#[derive(Debug, Clone)]
pub struct NextiaJdConfig {
    /// Number of query/candidate pairs.
    pub num_pairs: usize,
    /// Testbed profile.
    pub testbed: Testbed,
    /// Seed.
    pub seed: u64,
}

impl Default for NextiaJdConfig {
    fn default() -> Self {
        Self { num_pairs: 60, testbed: Testbed::Xs, seed: 11 }
    }
}

/// A value domain: query header, candidate header variant, value pool.
struct Domain {
    query_header: &'static str,
    candidate_header: &'static str,
    values: Vec<String>,
}

fn domains() -> Vec<Domain> {
    vec![
        Domain {
            query_header: "city",
            candidate_header: "town",
            values: pools::CITIES.iter().map(|(c, _)| c.to_string()).collect(),
        },
        Domain {
            query_header: "country",
            candidate_header: "nation",
            values: pools::COUNTRIES.iter().map(|(c, _)| c.to_string()).collect(),
        },
        Domain {
            query_header: "company",
            candidate_header: "firm",
            values: pools::COMPANIES.iter().map(|s| s.to_string()).collect(),
        },
        Domain {
            query_header: "color",
            candidate_header: "colour",
            values: pools::COLORS.iter().map(|s| s.to_string()).collect(),
        },
        Domain {
            query_header: "language",
            candidate_header: "tongue",
            values: pools::LANGUAGES.iter().map(|s| s.to_string()).collect(),
        },
        Domain {
            query_header: "job",
            candidate_header: "occupation",
            values: pools::JOB_TITLES.iter().map(|s| s.to_string()).collect(),
        },
    ]
}

/// The S-testbed vocabulary: the union of all domains.
fn mixed_vocabulary() -> Vec<String> {
    let mut v: Vec<String> = domains().into_iter().flat_map(|d| d.values).collect();
    v.extend(pools::COMPETITIONS.iter().map(|s| s.to_string()));
    v.extend(pools::FIRST_NAMES.iter().map(|s| s.to_string()));
    v.sort();
    v.dedup();
    v
}

impl NextiaJdConfig {
    /// Generate the pairs.
    pub fn generate(&self) -> Vec<JoinPair> {
        let mut rng = SplitMix64::new(self.seed);
        let domains = domains();
        let mixed = mixed_vocabulary();
        (0..self.num_pairs)
            .map(|i| {
                // Containment targets sweep (0, 1]; stratified so the rank
                // correlation sees the full range.
                let target = (i % 10 + 1) as f64 / 10.0;
                let (q_header, c_header, pool): (&str, &str, &[String]) = match self.testbed {
                    Testbed::Xs => {
                        let d = &domains[i % domains.len()];
                        (d.query_header, d.candidate_header, &d.values)
                    }
                    Testbed::S => ("entity", "name", &mixed),
                };
                let third = pool.len() / 3;
                let n_q = third.max(4) + rng.next_below(third.max(1));
                let n_q = n_q.min(pool.len());
                let q_idx = rng.sample_indices(pool.len(), n_q);
                let shared = ((n_q as f64) * target).round().max(1.0) as usize;
                let n_c = third.max(4) + rng.next_below(third.max(1));
                // Candidate: `shared` query values + same-domain distractors.
                let mut cand_vals: Vec<&String> =
                    q_idx.iter().take(shared.min(n_q)).map(|&k| &pool[k]).collect();
                let mut pool_rest: Vec<usize> =
                    (0..pool.len()).filter(|k| !q_idx.contains(k)).collect();
                rng.shuffle(&mut pool_rest);
                for &k in pool_rest.iter().take(n_c.saturating_sub(cand_vals.len())) {
                    cand_vals.push(&pool[k]);
                }
                JoinPair {
                    query: materialize(&mut rng, q_header, q_idx.iter().map(|&k| &pool[k])),
                    candidate: materialize(&mut rng, c_header, cand_vals.into_iter()),
                    target_containment: target,
                }
            })
            .collect()
    }
}

/// Turn distinct values into a column with random per-value multiplicities
/// (1–3), shuffled — duplicates are what separate multiset Jaccard from the
/// set-based measures.
fn materialize<'a>(
    rng: &mut SplitMix64,
    header: &str,
    distinct: impl Iterator<Item = &'a String>,
) -> Column {
    let mut values = Vec::new();
    for v in distinct {
        let mult = 1 + rng.next_below(3);
        for _ in 0..mult {
            values.push(Value::text(v.clone()));
        }
    }
    rng.shuffle(&mut values);
    Column::new(header, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_pairs() {
        let pairs = NextiaJdConfig::default().generate();
        assert_eq!(pairs.len(), 60);
        for p in &pairs {
            assert!(!p.query.is_empty());
            assert!(!p.candidate.is_empty());
        }
    }

    #[test]
    fn targets_cover_the_spectrum() {
        let pairs = NextiaJdConfig::default().generate();
        let mut targets: Vec<f64> = pairs.iter().map(|p| p.target_containment).collect();
        targets.sort_by(|a, b| a.total_cmp(b));
        targets.dedup();
        assert!(targets.len() >= 10, "only {} distinct targets", targets.len());
        assert!(*targets.first().unwrap() <= 0.11);
        assert!(*targets.last().unwrap() >= 0.99);
    }

    #[test]
    fn pairs_share_values_proportionally_to_target() {
        let pairs = NextiaJdConfig::default().generate();
        for p in &pairs {
            let q: std::collections::HashSet<String> =
                p.query.values.iter().map(|v| v.to_text()).collect();
            let c: std::collections::HashSet<String> =
                p.candidate.values.iter().map(|v| v.to_text()).collect();
            let shared = q.intersection(&c).count() as f64 / q.len() as f64;
            assert!(
                (shared - p.target_containment).abs() < 0.25,
                "containment {shared} vs target {}",
                p.target_containment
            );
        }
    }

    #[test]
    fn duplicates_present() {
        let pairs = NextiaJdConfig::default().generate();
        let with_dups = pairs.iter().filter(|p| p.query.distinct_count() < p.query.len()).count();
        assert!(with_dups > pairs.len() / 2, "duplicates are required for multiset measures");
    }

    #[test]
    fn headers_are_domain_appropriate_and_drift() {
        let pairs = NextiaJdConfig::default().generate();
        for p in &pairs {
            assert!(!p.query.header.is_empty());
            assert_ne!(
                p.query.header, p.candidate.header,
                "real lakes exhibit header drift between joinable columns"
            );
        }
        // The six domains rotate.
        let headers: std::collections::HashSet<&str> =
            pairs.iter().map(|p| p.query.header.as_str()).collect();
        assert!(headers.len() >= 6, "{headers:?}");
    }

    #[test]
    fn distractors_stay_in_domain() {
        // For a city pair, candidate values that are not query values must
        // still be cities.
        let pairs = NextiaJdConfig::default().generate();
        let cities: std::collections::HashSet<&str> =
            pools::CITIES.iter().map(|(c, _)| *c).collect();
        let city_pair = pairs.iter().find(|p| p.query.header == "city").unwrap();
        for v in &city_pair.candidate.values {
            assert!(cities.contains(v.to_text().as_str()), "{v:?} is not a city");
        }
    }

    #[test]
    fn s_testbed_is_larger() {
        let xs = NextiaJdConfig { num_pairs: 10, ..Default::default() }.generate();
        let s =
            NextiaJdConfig { num_pairs: 10, testbed: Testbed::S, ..Default::default() }.generate();
        let mean_len = |ps: &[JoinPair]| {
            ps.iter().map(|p| p.query.len()).sum::<usize>() as f64 / ps.len() as f64
        };
        assert!(mean_len(&s) > mean_len(&xs));
    }

    #[test]
    fn deterministic() {
        let a = NextiaJdConfig::default().generate();
        let b = NextiaJdConfig::default().generate();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.query, y.query);
            assert_eq!(x.candidate, y.candidate);
        }
    }
}
