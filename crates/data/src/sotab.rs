//! SOTAB-like typed-column benchmark (paper §4.2, Property 8).
//!
//! The SOTAB subset the paper extracts has 5,000 header-less tables over 20
//! semantic types, balanced between textual and non-textual. The generator
//! reproduces that shape: each table is built around a textual subject
//! column plus typed companion columns (e.g. MONEY next to CURRENCY — the
//! paper's Figure 4 motivating example), **without headers**, with the
//! semantic type recorded as an annotation for the harness to group by.

use crate::pools;
use observatory_linalg::SplitMix64;
use observatory_table::{Column, Table, Value};

/// The 20 semantic types: 10 non-textual, 10 textual (paper §4.2 names
/// DATE, ISBN, POSTAL CODE, MONEY and QUANTITY among the non-textual ones).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SemanticType {
    // Non-textual.
    Date,
    Isbn,
    PostalCode,
    Money,
    Quantity,
    Year,
    Phone,
    Percentage,
    Duration,
    Count,
    // Textual.
    BookTitle,
    PersonName,
    City,
    Country,
    Company,
    Language,
    Color,
    Sport,
    JobTitle,
    Street,
}

impl SemanticType {
    /// All twenty types, non-textual first.
    pub const ALL: [SemanticType; 20] = [
        SemanticType::Date,
        SemanticType::Isbn,
        SemanticType::PostalCode,
        SemanticType::Money,
        SemanticType::Quantity,
        SemanticType::Year,
        SemanticType::Phone,
        SemanticType::Percentage,
        SemanticType::Duration,
        SemanticType::Count,
        SemanticType::BookTitle,
        SemanticType::PersonName,
        SemanticType::City,
        SemanticType::Country,
        SemanticType::Company,
        SemanticType::Language,
        SemanticType::Color,
        SemanticType::Sport,
        SemanticType::JobTitle,
        SemanticType::Street,
    ];

    /// Whether values of this type are textual.
    pub fn is_textual(&self) -> bool {
        matches!(
            self,
            SemanticType::BookTitle
                | SemanticType::PersonName
                | SemanticType::City
                | SemanticType::Country
                | SemanticType::Company
                | SemanticType::Language
                | SemanticType::Color
                | SemanticType::Sport
                | SemanticType::JobTitle
                | SemanticType::Street
        )
    }

    /// Stable lowercase label stored in `Column::semantic_type`.
    pub fn label(&self) -> &'static str {
        match self {
            SemanticType::Date => "date",
            SemanticType::Isbn => "isbn",
            SemanticType::PostalCode => "postal_code",
            SemanticType::Money => "money",
            SemanticType::Quantity => "quantity",
            SemanticType::Year => "year",
            SemanticType::Phone => "phone",
            SemanticType::Percentage => "percentage",
            SemanticType::Duration => "duration",
            SemanticType::Count => "count",
            SemanticType::BookTitle => "book_title",
            SemanticType::PersonName => "person_name",
            SemanticType::City => "city",
            SemanticType::Country => "country",
            SemanticType::Company => "company",
            SemanticType::Language => "language",
            SemanticType::Color => "color",
            SemanticType::Sport => "sport",
            SemanticType::JobTitle => "job_title",
            SemanticType::Street => "street",
        }
    }

    /// Draw one value of this type.
    pub fn sample(&self, rng: &mut SplitMix64) -> Value {
        let pick =
            |rng: &mut SplitMix64, pool: &[&str]| pool[rng.next_below(pool.len())].to_string();
        match self {
            SemanticType::Date => Value::Date {
                year: 1990 + rng.next_below(36) as i32,
                month: 1 + rng.next_below(12) as u8,
                day: 1 + rng.next_below(28) as u8,
            },
            SemanticType::Isbn => Value::text(format!(
                "978-{}-{:05}-{:03}-{}",
                1 + rng.next_below(9),
                rng.next_below(100_000),
                rng.next_below(1000),
                rng.next_below(10)
            )),
            SemanticType::PostalCode => Value::text(format!(
                "{:04} {}{}",
                1000 + rng.next_below(9000),
                (b'A' + rng.next_below(26) as u8) as char,
                (b'A' + rng.next_below(26) as u8) as char
            )),
            SemanticType::Money => Value::Float((rng.next_below(100_000) as f64 + 100.0) / 100.0),
            SemanticType::Quantity => Value::Float((rng.next_below(10_000) as f64) / 10.0),
            SemanticType::Year => Value::Int(1900 + rng.next_below(126) as i64),
            SemanticType::Phone => Value::text(format!(
                "+{} {} {:06}",
                1 + rng.next_below(98),
                100 + rng.next_below(900),
                rng.next_below(1_000_000)
            )),
            SemanticType::Percentage => Value::Float((rng.next_below(1000) as f64) / 10.0),
            SemanticType::Duration => {
                Value::text(format!("{}h {:02}m", rng.next_below(12), rng.next_below(60)))
            }
            SemanticType::Count => Value::Int(rng.next_below(100_000) as i64),
            SemanticType::BookTitle => Value::text(pick(rng, &pools::BOOK_TITLES)),
            SemanticType::PersonName => Value::text(pick(rng, &pools::FIRST_NAMES)),
            SemanticType::City => Value::text(pools::CITIES[rng.next_below(pools::CITIES.len())].0),
            SemanticType::Country => {
                Value::text(pools::COUNTRIES[rng.next_below(pools::COUNTRIES.len())].0)
            }
            SemanticType::Company => Value::text(pick(rng, &pools::COMPANIES)),
            SemanticType::Language => Value::text(pick(rng, &pools::LANGUAGES)),
            SemanticType::Color => Value::text(pick(rng, &pools::COLORS)),
            SemanticType::Sport => Value::text(pick(rng, &pools::SPORTS)),
            SemanticType::JobTitle => Value::text(pick(rng, &pools::JOB_TITLES)),
            SemanticType::Street => Value::text(pick(rng, &pools::STREETS)),
        }
    }
}

/// Configuration of the SOTAB-like generator.
#[derive(Debug, Clone)]
pub struct SotabConfig {
    /// Number of tables.
    pub num_tables: usize,
    /// Rows per table.
    pub rows: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for SotabConfig {
    fn default() -> Self {
        Self { num_tables: 20, rows: 8, seed: 23 }
    }
}

impl SotabConfig {
    /// Generate header-less tables: a textual subject column followed by a
    /// rotating set of typed columns; every column carries its semantic
    /// type annotation. MONEY columns get a CURRENCY neighbour (Figure 4).
    pub fn generate(&self) -> Vec<Table> {
        let mut rng = SplitMix64::new(self.seed);
        let textual: Vec<SemanticType> =
            SemanticType::ALL.iter().copied().filter(SemanticType::is_textual).collect();
        let non_textual: Vec<SemanticType> =
            SemanticType::ALL.iter().copied().filter(|t| !t.is_textual()).collect();
        (0..self.num_tables)
            .map(|i| {
                let subject_type = textual[i % textual.len()];
                let companions = [
                    textual[(i + 3) % textual.len()],
                    non_textual[i % non_textual.len()],
                    non_textual[(i + 4) % non_textual.len()],
                ];
                let mut columns = Vec::new();
                let mut subject = typed_column(&mut rng, subject_type, self.rows);
                subject.is_subject = true;
                columns.push(subject);
                for ty in companions {
                    columns.push(typed_column(&mut rng, ty, self.rows));
                    if ty == SemanticType::Money {
                        // Currency context column right of the amounts.
                        let code = pools::CURRENCIES[rng.next_below(pools::CURRENCIES.len())];
                        let mut cur =
                            Column::new("", (0..self.rows).map(|_| Value::text(code)).collect());
                        cur.semantic_type = Some("currency".into());
                        columns.push(cur);
                    }
                }
                Table::new(format!("sotab_{i}"), columns)
            })
            .collect()
    }
}

/// A header-less column of `rows` samples of `ty`.
pub fn typed_column(rng: &mut SplitMix64, ty: SemanticType, rows: usize) -> Column {
    let mut col = Column::new("", (0..rows).map(|_| ty.sample(rng)).collect());
    col.semantic_type = Some(ty.label().to_string());
    col
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_types_balanced() {
        assert_eq!(SemanticType::ALL.len(), 20);
        let textual = SemanticType::ALL.iter().filter(|t| t.is_textual()).count();
        assert_eq!(textual, 10);
    }

    #[test]
    fn labels_unique() {
        let mut labels: Vec<&str> = SemanticType::ALL.iter().map(|t| t.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 20);
    }

    #[test]
    fn samples_match_textuality() {
        let mut rng = SplitMix64::new(1);
        for ty in SemanticType::ALL {
            for _ in 0..10 {
                let v = ty.sample(&mut rng);
                if ty.is_textual() {
                    assert!(v.is_textual(), "{ty:?} produced {v:?}");
                }
                assert!(!v.is_null());
            }
        }
    }

    #[test]
    fn tables_are_headerless_and_annotated() {
        for t in SotabConfig::default().generate() {
            for c in &t.columns {
                assert!(c.header.is_empty(), "SOTAB tables carry no headers");
                assert!(c.semantic_type.is_some());
            }
            assert!(t.columns[0].is_subject);
        }
    }

    #[test]
    fn money_gets_currency_neighbor() {
        let tables = SotabConfig { num_tables: 40, ..Default::default() }.generate();
        let mut found = false;
        for t in &tables {
            for j in 0..t.num_cols() {
                if t.columns[j].semantic_type.as_deref() == Some("money") {
                    assert!(
                        j + 1 < t.num_cols()
                            && t.columns[j + 1].semantic_type.as_deref() == Some("currency"),
                        "money column lacks currency context in {}",
                        t.name
                    );
                    found = true;
                }
            }
        }
        assert!(found, "no money column generated at all");
    }

    #[test]
    fn deterministic() {
        assert_eq!(SotabConfig::default().generate(), SotabConfig::default().generate());
    }
}
