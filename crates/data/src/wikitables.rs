//! WikiTables-like corpus generator (paper §4.2).
//!
//! The original corpus is 670k entity-rich relational web tables (the TURL
//! preprocessing of WikiTables). Properties 1, 2, 5 and 6 need exactly two
//! things from it: *many heterogeneous relational tables* and *repeated,
//! linkable entities*. The generator draws tables from five templates
//! (athlete results, films, city gazetteers, company financials, people)
//! whose value pools overlap across tables — the same entity mention
//! appears in many contexts, as on Wikipedia.

use crate::pools;
use observatory_linalg::SplitMix64;
use observatory_table::{Column, Table, Value};

/// Configuration of the WikiTables-like generator.
#[derive(Debug, Clone)]
pub struct WikiTablesConfig {
    /// Number of tables to generate.
    pub num_tables: usize,
    /// Minimum data rows per table.
    pub min_rows: usize,
    /// Maximum data rows per table (inclusive).
    pub max_rows: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for WikiTablesConfig {
    fn default() -> Self {
        Self { num_tables: 20, min_rows: 6, max_rows: 12, seed: 42 }
    }
}

impl WikiTablesConfig {
    /// Generate the corpus.
    pub fn generate(&self) -> Vec<Table> {
        assert!(self.min_rows >= 1 && self.max_rows >= self.min_rows, "bad row bounds");
        let mut rng = SplitMix64::new(self.seed);
        (0..self.num_tables)
            .map(|i| {
                let rows = self.min_rows + rng.next_below(self.max_rows - self.min_rows + 1);
                match i % 5 {
                    0 => athlete_results(&mut rng, rows, i),
                    1 => films(&mut rng, rows, i),
                    2 => city_gazetteer(&mut rng, rows, i),
                    3 => company_financials(&mut rng, rows, i),
                    _ => people(&mut rng, rows, i),
                }
            })
            .collect()
    }
}

fn pick<'a>(rng: &mut SplitMix64, pool: &[&'a str]) -> &'a str {
    pool[rng.next_below(pool.len())]
}

/// The paper's Figure 2 shape: ID / year / competition (+ venue, position).
fn athlete_results(rng: &mut SplitMix64, rows: usize, idx: usize) -> Table {
    let mut year = Vec::with_capacity(rows);
    let mut competition = Vec::with_capacity(rows);
    let mut venue = Vec::with_capacity(rows);
    let mut position = Vec::with_capacity(rows);
    for _ in 0..rows {
        year.push(Value::Int(1990 + rng.next_below(35) as i64));
        competition.push(Value::text(pick(rng, &pools::COMPETITIONS)));
        venue.push(Value::text(pools::CITIES[rng.next_below(pools::CITIES.len())].0));
        position.push(Value::Int(1 + rng.next_below(12) as i64));
    }
    let mut comp_col = Column::new("competition", competition);
    comp_col.is_subject = true;
    Table::new(
        format!("athlete_results_{idx}"),
        vec![
            Column::new("id", (1..=rows as i64).map(Value::Int).collect()),
            Column::new("year", year),
            comp_col,
            Column::new("venue", venue),
            Column::new("position", position),
        ],
    )
}

fn films(rng: &mut SplitMix64, rows: usize, idx: usize) -> Table {
    let mut movie = Vec::with_capacity(rows);
    let mut year = Vec::with_capacity(rows);
    let mut director = Vec::with_capacity(rows);
    let mut gross = Vec::with_capacity(rows);
    for _ in 0..rows {
        movie.push(Value::text(pick(rng, &pools::MOVIES)));
        year.push(Value::Int(1940 + rng.next_below(85) as i64));
        director.push(Value::text(pick(rng, &pools::FIRST_NAMES)));
        gross.push(Value::Float((rng.next_below(9000) as f64 + 100.0) / 10.0));
    }
    let mut movie_col = Column::new("movie", movie);
    movie_col.is_subject = true;
    Table::new(
        format!("films_{idx}"),
        vec![
            movie_col,
            Column::new("year", year),
            Column::new("director", director),
            Column::new("gross_millions", gross),
        ],
    )
}

fn city_gazetteer(rng: &mut SplitMix64, rows: usize, idx: usize) -> Table {
    let mut city = Vec::with_capacity(rows);
    let mut country = Vec::with_capacity(rows);
    let mut population = Vec::with_capacity(rows);
    for _ in 0..rows {
        let (c, k) = pools::CITIES[rng.next_below(pools::CITIES.len())];
        city.push(Value::text(c));
        country.push(Value::text(k));
        population.push(Value::Int(50_000 + rng.next_below(10_000_000) as i64));
    }
    let mut city_col = Column::new("city", city);
    city_col.is_subject = true;
    Table::new(
        format!("cities_{idx}"),
        vec![city_col, Column::new("country", country), Column::new("population", population)],
    )
}

fn company_financials(rng: &mut SplitMix64, rows: usize, idx: usize) -> Table {
    let mut company = Vec::with_capacity(rows);
    let mut revenue = Vec::with_capacity(rows);
    let mut currency = Vec::with_capacity(rows);
    let mut founded = Vec::with_capacity(rows);
    for _ in 0..rows {
        company.push(Value::text(pick(rng, &pools::COMPANIES)));
        revenue.push(Value::Float((rng.next_below(100_000) as f64) / 100.0));
        currency.push(Value::text(pick(rng, &pools::CURRENCIES)));
        founded.push(Value::Int(1900 + rng.next_below(125) as i64));
    }
    let mut company_col = Column::new("company", company);
    company_col.is_subject = true;
    Table::new(
        format!("companies_{idx}"),
        vec![
            company_col,
            Column::new("revenue", revenue),
            Column::new("currency", currency),
            Column::new("founded", founded),
        ],
    )
}

fn people(rng: &mut SplitMix64, rows: usize, idx: usize) -> Table {
    let mut name = Vec::with_capacity(rows);
    let mut country = Vec::with_capacity(rows);
    let mut continent = Vec::with_capacity(rows);
    let mut age = Vec::with_capacity(rows);
    for _ in 0..rows {
        name.push(Value::text(pick(rng, &pools::FIRST_NAMES)));
        let (c, k) = pools::COUNTRIES[rng.next_below(pools::COUNTRIES.len())];
        country.push(Value::text(c));
        continent.push(Value::text(k));
        age.push(Value::Int(18 + rng.next_below(60) as i64));
    }
    let mut name_col = Column::new("name", name);
    name_col.is_subject = true;
    Table::new(
        format!("people_{idx}"),
        vec![
            Column::new("id", (1..=rows as i64).map(Value::Int).collect()),
            name_col,
            Column::new("country", country),
            Column::new("continent", continent),
            Column::new("age", age),
        ],
    )
}

/// A single fixed 6-row, 6-column table used by the PCA visualizations
/// (paper Figures 6 and 8 draw 720 = 6! permutation variants).
pub fn pca_demo_table() -> Table {
    let years = [1993i64, 1994, 1997, 1997, 1998, 1999];
    let competitions = [
        "Asian Championships",
        "Asian Games",
        "World Championships",
        "Central Asian Games",
        "Asian Games",
        "World Championships",
    ];
    let venues = ["Manila", "Hiroshima", "Athens", "Tashkent", "Bangkok", "Seville"];
    let positions = [1i64, 2, 5, 1, 3, 8];
    let notes = ["4x400 m relay", "400 m hurdles", "4x400 m relay", "400 m", "400 m", "heats"];
    Table::new(
        "pca_demo",
        vec![
            Column::new("id", (1..=6).map(Value::Int).collect()),
            Column::new("year", years.iter().map(|&y| Value::Int(y)).collect()),
            Column::new("competition", competitions.iter().map(|s| Value::text(*s)).collect()),
            Column::new("venue", venues.iter().map(|s| Value::text(*s)).collect()),
            Column::new("position", positions.iter().map(|&p| Value::Int(p)).collect()),
            Column::new("notes", notes.iter().map(|s| Value::text(*s)).collect()),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_and_row_bounds() {
        let cfg = WikiTablesConfig { num_tables: 10, min_rows: 4, max_rows: 7, seed: 1 };
        let tables = cfg.generate();
        assert_eq!(tables.len(), 10);
        for t in &tables {
            assert!((4..=7).contains(&t.num_rows()), "{}", t.num_rows());
            assert!(t.num_cols() >= 3);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = WikiTablesConfig::default();
        assert_eq!(cfg.generate(), cfg.generate());
        let other = WikiTablesConfig { seed: 7, ..Default::default() };
        assert_ne!(cfg.generate(), other.generate());
    }

    #[test]
    fn templates_rotate() {
        let tables = WikiTablesConfig { num_tables: 5, ..Default::default() }.generate();
        let names: Vec<&str> = tables.iter().map(|t| t.name.split('_').next().unwrap()).collect();
        assert_eq!(names, vec!["athlete", "films", "cities", "companies", "people"]);
    }

    #[test]
    fn every_table_has_a_subject_column() {
        for t in WikiTablesConfig::default().generate() {
            assert!(
                observatory_table::subject::subject_column(&t).is_some(),
                "{} lacks a subject column",
                t.name
            );
        }
    }

    #[test]
    fn entities_repeat_across_tables() {
        // Entity-rich means mentions recur — required by Property 6.
        let tables = WikiTablesConfig { num_tables: 20, ..Default::default() }.generate();
        let mut mentions = std::collections::HashMap::<String, usize>::new();
        for t in &tables {
            for c in &t.columns {
                for v in &c.values {
                    if let Value::Text(s) = v {
                        *mentions.entry(s.clone()).or_default() += 1;
                    }
                }
            }
        }
        let repeated = mentions.values().filter(|&&n| n >= 3).count();
        assert!(repeated > 20, "only {repeated} repeated mentions");
    }

    #[test]
    fn pca_table_matches_figure_6_shape() {
        let t = pca_demo_table();
        assert_eq!(t.num_rows(), 6);
        assert_eq!(t.num_cols(), 6);
    }
}
