//! Dr.Spider-style semantics-preserving database perturbations (paper
//! §3.3 Property 7, §4.2).
//!
//! Three perturbation classes, mirroring Dr.Spider's database tests:
//!
//! - **schema-synonym**: replace column names with synonyms
//!   (`"country"` → `"nation"`);
//! - **schema-abbreviation**: replace column names with abbreviations
//!   (`"CountryName"` → `"cntry_nm"`);
//! - **column-equivalence**: rewrite both the name *and the contents* of a
//!   column into a semantically equivalent form (`"age"` → `"birth_year"`
//!   with `year = REFERENCE_YEAR − age`, prices to cents, booleans to
//!   yes/no).
//!
//! All three preserve the meaning of the relation; Property 7 measures how
//! far they move the embeddings anyway.

use crate::pools;
use observatory_table::{Column, Table, Value};

/// Reference year for the age ↔ birth-year equivalence.
pub const REFERENCE_YEAR: i64 = 2026;

/// The perturbation classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Perturbation {
    SchemaSynonym,
    SchemaAbbreviation,
    ColumnEquivalence,
}

impl Perturbation {
    /// All classes in presentation order.
    pub const ALL: [Perturbation; 3] = [
        Perturbation::SchemaSynonym,
        Perturbation::SchemaAbbreviation,
        Perturbation::ColumnEquivalence,
    ];

    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            Perturbation::SchemaSynonym => "synonym",
            Perturbation::SchemaAbbreviation => "abbreviation",
            Perturbation::ColumnEquivalence => "column-equivalence",
        }
    }
}

/// Apply a perturbation to a whole table, returning the perturbed table and
/// the set of column indices that were actually changed (columns the
/// dictionaries cannot handle are left alone, as in Dr.Spider).
pub fn perturb_table(table: &Table, kind: Perturbation) -> (Table, Vec<usize>) {
    let mut out = table.clone();
    let mut changed = Vec::new();
    for (j, col) in out.columns.iter_mut().enumerate() {
        if perturb_column(col, kind) {
            changed.push(j);
        }
    }
    (out, changed)
}

/// Apply a perturbation to a single column in place; returns whether it
/// changed anything.
pub fn perturb_column(col: &mut Column, kind: Perturbation) -> bool {
    match kind {
        Perturbation::SchemaSynonym => match pools::synonym_of(&col.header) {
            Some(s) => {
                col.header = s.to_string();
                true
            }
            None => false,
        },
        Perturbation::SchemaAbbreviation => {
            if col.header.is_empty() {
                return false;
            }
            let abbrev = pools::abbreviate(&col.header);
            if abbrev == col.header {
                return false;
            }
            col.header = abbrev;
            true
        }
        Perturbation::ColumnEquivalence => column_equivalence(col),
    }
}

/// Content-level equivalences keyed by header semantics.
fn column_equivalence(col: &mut Column) -> bool {
    let header = col.header.to_lowercase();
    if header.contains("age") && col.values.iter().all(|v| matches!(v, Value::Int(_) | Value::Null))
    {
        // age → birth_year (the paper's own example).
        col.header = "birth_year".into();
        for v in &mut col.values {
            if let Value::Int(age) = v {
                *v = Value::Int(REFERENCE_YEAR - *age);
            }
        }
        return true;
    }
    if (header.contains("price") || header.contains("cost") || header.contains("revenue"))
        && col.values.iter().any(|v| matches!(v, Value::Float(_) | Value::Int(_)))
    {
        col.header = format!("{}_cents", col.header);
        for v in &mut col.values {
            match v {
                Value::Float(x) => *v = Value::Int((*x * 100.0).round() as i64),
                Value::Int(x) => *v = Value::Int(*x * 100),
                _ => {}
            }
        }
        return true;
    }
    if col.values.iter().all(|v| matches!(v, Value::Bool(_) | Value::Null))
        && col.values.iter().any(|v| matches!(v, Value::Bool(_)))
    {
        for v in &mut col.values {
            if let Value::Bool(b) = v {
                *v = Value::text(if *b { "yes" } else { "no" });
            }
        }
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        Table::new(
            "t",
            vec![
                Column::new("country", vec![Value::text("Spain"), Value::text("Japan")]),
                Column::new("age", vec![Value::Int(30), Value::Int(41)]),
                Column::new("price", vec![Value::Float(45.0), Value::Float(95.95)]),
                Column::new("zzz", vec![Value::Int(1), Value::Int(2)]),
            ],
        )
    }

    #[test]
    fn synonym_renames_known_headers_only() {
        let (p, changed) = perturb_table(&table(), Perturbation::SchemaSynonym);
        assert_eq!(p.columns[0].header, "nation");
        assert_eq!(p.columns[1].header, "years_old");
        assert_eq!(p.columns[3].header, "zzz"); // no synonym: untouched
        assert_eq!(changed, vec![0, 1, 2]); // price → cost
                                            // Data values never change at the schema level.
        assert_eq!(p.columns[0].values, table().columns[0].values);
    }

    #[test]
    fn abbreviation_rewrites_headers() {
        let (p, changed) = perturb_table(&table(), Perturbation::SchemaAbbreviation);
        assert_eq!(p.columns[0].header, "cntry");
        assert!(changed.contains(&0));
        assert_eq!(p.columns[0].values, table().columns[0].values);
    }

    #[test]
    fn column_equivalence_age_to_birth_year() {
        let (p, changed) = perturb_table(&table(), Perturbation::ColumnEquivalence);
        assert!(changed.contains(&1));
        assert_eq!(p.columns[1].header, "birth_year");
        assert_eq!(p.columns[1].values[0], Value::Int(REFERENCE_YEAR - 30));
    }

    #[test]
    fn column_equivalence_price_to_cents() {
        let (p, changed) = perturb_table(&table(), Perturbation::ColumnEquivalence);
        assert!(changed.contains(&2));
        assert_eq!(p.columns[2].header, "price_cents");
        assert_eq!(p.columns[2].values[0], Value::Int(4500));
        assert_eq!(p.columns[2].values[1], Value::Int(9595));
    }

    #[test]
    fn booleans_become_yes_no() {
        let mut col = Column::new("active", vec![Value::Bool(true), Value::Bool(false)]);
        assert!(perturb_column(&mut col, Perturbation::ColumnEquivalence));
        assert_eq!(col.values, vec![Value::text("yes"), Value::text("no")]);
    }

    #[test]
    fn unperturbables_untouched() {
        let mut col = Column::new("zzz", vec![Value::Int(1)]);
        assert!(!perturb_column(&mut col.clone(), Perturbation::SchemaSynonym));
        assert!(!perturb_column(&mut col, Perturbation::ColumnEquivalence));
    }

    #[test]
    fn labels() {
        assert_eq!(Perturbation::SchemaSynonym.label(), "synonym");
        assert_eq!(Perturbation::ALL.len(), 3);
    }
}
