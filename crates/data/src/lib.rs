//! # observatory-data
//!
//! The five dataset suites of the paper's evaluation (§4.2), rebuilt as
//! seeded synthetic generators (see DESIGN.md §1 for the substitution
//! rationale — the originals are multi-GB external releases):
//!
//! | Paper dataset | Module | Used by properties |
//! |---|---|---|
//! | WikiTables (entity-rich web tables) | [`wikitables`] | P1, P2, P5, P6 |
//! | Spider (+ HyFD-mined FDs) | [`spider`] | P4 |
//! | Dr.Spider database perturbations | [`perturb`] | P7 |
//! | NextiaJD joinability testbeds | [`nextiajd`] | P3 |
//! | SOTAB (typed columns, no headers) | [`sotab`] | P8 |
//! | Figure 12 query-entity domains | [`entities`] | P6 |
//!
//! All generators are deterministic functions of their seed, so every
//! experiment in the bench harness is exactly reproducible.

pub mod entities;
pub mod nextiajd;
pub mod perturb;
pub mod pools;
pub mod sotab;
pub mod spider;
pub mod wikitables;
