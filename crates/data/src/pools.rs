//! Curated value pools backing the synthetic dataset suites.
//!
//! The pools are small but *semantically structured*: countries know their
//! continents (functional dependencies), cities know their countries,
//! query-entity domains (tennis players, movies, nutrients — the paper's
//! Figure 12 domains) are kept separate, and the synonym/abbreviation
//! dictionaries drive Dr.Spider-style schema perturbations.

/// (country, continent) pairs — the FD backbone of the Spider-like suite
/// and the paper's Figure 3 example.
pub const COUNTRIES: [(&str, &str); 32] = [
    ("Netherlands", "Europe"),
    ("Canada", "North America"),
    ("USA", "North America"),
    ("Germany", "Europe"),
    ("France", "Europe"),
    ("Spain", "Europe"),
    ("Italy", "Europe"),
    ("Portugal", "Europe"),
    ("Brazil", "South America"),
    ("Argentina", "South America"),
    ("Chile", "South America"),
    ("Peru", "South America"),
    ("Japan", "Asia"),
    ("China", "Asia"),
    ("India", "Asia"),
    ("Thailand", "Asia"),
    ("Vietnam", "Asia"),
    ("South Korea", "Asia"),
    ("Indonesia", "Asia"),
    ("Australia", "Oceania"),
    ("New Zealand", "Oceania"),
    ("Fiji", "Oceania"),
    ("Egypt", "Africa"),
    ("Kenya", "Africa"),
    ("Nigeria", "Africa"),
    ("Morocco", "Africa"),
    ("Ghana", "Africa"),
    ("Mexico", "North America"),
    ("Cuba", "North America"),
    ("Norway", "Europe"),
    ("Sweden", "Europe"),
    ("Switzerland", "Europe"),
];

/// (city, country) pairs.
pub const CITIES: [(&str, &str); 24] = [
    ("Amsterdam", "Netherlands"),
    ("Rotterdam", "Netherlands"),
    ("Toronto", "Canada"),
    ("Vancouver", "Canada"),
    ("Detroit", "USA"),
    ("Ann Arbor", "USA"),
    ("Chicago", "USA"),
    ("Berlin", "Germany"),
    ("Munich", "Germany"),
    ("Paris", "France"),
    ("Lyon", "France"),
    ("Madrid", "Spain"),
    ("Barcelona", "Spain"),
    ("Rome", "Italy"),
    ("Milan", "Italy"),
    ("Tokyo", "Japan"),
    ("Osaka", "Japan"),
    ("Beijing", "China"),
    ("Shanghai", "China"),
    ("Mumbai", "India"),
    ("Delhi", "India"),
    ("Sydney", "Australia"),
    ("Cairo", "Egypt"),
    ("Nairobi", "Kenya"),
];

/// Person first names.
pub const FIRST_NAMES: [&str; 24] = [
    "Kathryn", "Oscar", "Lee", "Roxanne", "Fern", "Raphael", "Rob", "Ismail", "Ada", "Grace",
    "Alan", "Edgar", "Barbara", "Michael", "Jennifer", "Tianji", "Madelon", "Paul", "Hector",
    "Ines", "Yuki", "Chen", "Priya", "Kofi",
];

/// Sports competitions (the paper's Figure 2 column).
pub const COMPETITIONS: [&str; 12] = [
    "Asian Championships",
    "Asian Games",
    "World Championships",
    "Central Asian Games",
    "Olympic Games",
    "European Championships",
    "Commonwealth Games",
    "Pan American Games",
    "African Championships",
    "World Cup",
    "Grand Prix Final",
    "Diamond League",
];

/// Query-entity domain: ten greatest men tennis players (Figure 12).
pub const TENNIS_PLAYERS: [&str; 10] = [
    "Roger Federer",
    "Rafael Nadal",
    "Novak Djokovic",
    "Pete Sampras",
    "Rod Laver",
    "Bjorn Borg",
    "Andre Agassi",
    "Jimmy Connors",
    "Ivan Lendl",
    "John McEnroe",
];

/// Query-entity domain: ten most popular movies (Figure 12).
pub const MOVIES: [&str; 10] = [
    "The Godfather",
    "The Shawshank Redemption",
    "Pulp Fiction",
    "The Dark Knight",
    "Casablanca",
    "Citizen Kane",
    "Titanic",
    "Star Wars",
    "Jurassic Park",
    "The Matrix",
];

/// Query-entity domain: ten essential nutrients (Figure 12 "Biochemistry").
pub const NUTRIENTS: [&str; 10] = [
    "Vitamin C",
    "Vitamin D",
    "Calcium",
    "Iron",
    "Magnesium",
    "Potassium",
    "Zinc",
    "Folate",
    "Omega 3",
    "Protein",
];

/// Query-entity domain: most valuable US technology companies (Figure 12).
pub const TECH_COMPANIES: [&str; 10] = [
    "Apple",
    "Microsoft",
    "Alphabet",
    "Amazon",
    "Nvidia",
    "Meta",
    "Tesla",
    "Broadcom",
    "Oracle",
    "Adobe",
];

/// Query-entity domain: largest countries by area (Figure 12).
pub const LARGEST_COUNTRIES: [&str; 10] = [
    "Russia",
    "Canada",
    "China",
    "USA",
    "Brazil",
    "Australia",
    "India",
    "Argentina",
    "Kazakhstan",
    "Algeria",
];

/// Company names (generic corpora).
pub const COMPANIES: [&str; 16] = [
    "Acme Corp",
    "Globex",
    "Initech",
    "Umbrella",
    "Stark Industries",
    "Wayne Enterprises",
    "Wonka Industries",
    "Tyrell Corp",
    "Cyberdyne Systems",
    "Soylent Corp",
    "Hooli",
    "Pied Piper",
    "Vandelay Industries",
    "Dunder Mifflin",
    "Prestige Worldwide",
    "Bluth Company",
];

/// ISO-style currency codes (SOTAB MONEY context; Figure 4's RON column).
pub const CURRENCIES: [&str; 12] =
    ["RON", "EUR", "USD", "GBP", "JPY", "CHF", "CAD", "AUD", "SEK", "NOK", "INR", "BRL"];

/// Occupations.
pub const JOB_TITLES: [&str; 12] = [
    "Engineer",
    "Professor",
    "Data Analyst",
    "Librarian",
    "Architect",
    "Nurse",
    "Pilot",
    "Chef",
    "Journalist",
    "Pharmacist",
    "Electrician",
    "Translator",
];

/// Languages.
pub const LANGUAGES: [&str; 12] = [
    "Dutch",
    "English",
    "German",
    "French",
    "Spanish",
    "Italian",
    "Portuguese",
    "Japanese",
    "Mandarin",
    "Hindi",
    "Arabic",
    "Swahili",
];

/// Colors.
pub const COLORS: [&str; 12] = [
    "red", "green", "blue", "amber", "teal", "plum", "gold", "jade", "coral", "ivory", "slate",
    "olive",
];

/// Sports.
pub const SPORTS: [&str; 12] = [
    "athletics",
    "swimming",
    "tennis",
    "badminton",
    "judo",
    "rowing",
    "cycling",
    "fencing",
    "archery",
    "wrestling",
    "gymnastics",
    "volleyball",
];

/// Street names (SOTAB textual type).
pub const STREETS: [&str; 10] = [
    "Main Street",
    "Oak Avenue",
    "Maple Drive",
    "Cedar Lane",
    "Elm Street",
    "Park Road",
    "River Walk",
    "Hill Crest",
    "Lake View",
    "Sunset Boulevard",
];

/// Book titles (SOTAB subject columns; Figure 4's book table).
pub const BOOK_TITLES: [&str; 10] = [
    "Plan D",
    "The Greek Connection",
    "Exams Dictionary",
    "Winter Journal",
    "The Silent City",
    "Letters from Utrecht",
    "A Brief History",
    "The Glass Garden",
    "Midnight Library",
    "Paper Towns",
];

/// Schema-synonym dictionary (Dr.Spider's schema-synonym perturbation):
/// `header → synonym`.
pub const SYNONYMS: [(&str, &str); 22] = [
    ("country", "nation"),
    ("city", "town"),
    ("name", "title"),
    ("year", "annum"),
    ("age", "years_old"),
    ("price", "cost"),
    ("salary", "pay"),
    ("company", "firm"),
    ("competition", "contest"),
    ("continent", "landmass"),
    ("population", "inhabitants"),
    ("revenue", "income"),
    ("employee", "worker"),
    ("department", "division"),
    ("product", "item"),
    ("category", "class"),
    ("location", "place"),
    ("language", "tongue"),
    ("movie", "film"),
    ("director", "filmmaker"),
    ("venue", "site"),
    ("position", "rank"),
];

/// Whether a header has a synonym.
pub fn synonym_of(header: &str) -> Option<&'static str> {
    let lower = header.to_lowercase();
    SYNONYMS.iter().find(|(h, _)| *h == lower).map(|(_, s)| *s)
}

/// Dr.Spider's schema-abbreviation perturbation: drop vowels after the
/// first character of each word and join with underscores
/// (`"CountryName"` → `"cntry_nm"` style).
pub fn abbreviate(header: &str) -> String {
    let mut words: Vec<String> = Vec::new();
    let mut cur = String::new();
    let flush = |cur: &mut String, words: &mut Vec<String>| {
        if !cur.is_empty() {
            words.push(std::mem::take(cur));
        }
    };
    let chars: Vec<char> = header.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c == '_' || c == ' ' || c == '-' {
            flush(&mut cur, &mut words);
        } else if c.is_uppercase() && i > 0 && chars[i - 1].is_lowercase() {
            flush(&mut cur, &mut words);
            cur.push(c.to_ascii_lowercase());
        } else {
            cur.push(c.to_ascii_lowercase());
        }
    }
    flush(&mut cur, &mut words);
    words
        .iter()
        .map(|w| {
            let mut out = String::new();
            for (i, c) in w.chars().enumerate() {
                if i == 0 || !"aeiou".contains(c) {
                    out.push(c);
                }
            }
            out
        })
        .collect::<Vec<_>>()
        .join("_")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn country_fd_is_functional() {
        // Every country maps to exactly one continent in the pool.
        for (c1, k1) in COUNTRIES {
            for (c2, k2) in COUNTRIES {
                if c1 == c2 {
                    assert_eq!(k1, k2);
                }
            }
        }
    }

    #[test]
    fn city_countries_exist() {
        for (_, country) in CITIES {
            assert!(COUNTRIES.iter().any(|(c, _)| *c == country), "{country}");
        }
    }

    #[test]
    fn entity_domains_are_disjoint() {
        for p in TENNIS_PLAYERS {
            assert!(!MOVIES.contains(&p));
            assert!(!NUTRIENTS.contains(&p));
        }
        for m in MOVIES {
            assert!(!NUTRIENTS.contains(&m));
        }
    }

    #[test]
    fn synonyms_resolve_case_insensitively() {
        assert_eq!(synonym_of("Country"), Some("nation"));
        assert_eq!(synonym_of("COUNTRY"), Some("nation"));
        assert_eq!(synonym_of("nonexistent_header"), None);
    }

    #[test]
    fn synonyms_change_the_header() {
        for (h, s) in SYNONYMS {
            assert_ne!(h, s);
        }
    }

    #[test]
    fn abbreviation_examples() {
        assert_eq!(abbreviate("CountryName"), "cntry_nm");
        assert_eq!(abbreviate("country"), "cntry");
        assert_eq!(abbreviate("year of birth"), "yr_of_brth");
        assert_eq!(abbreviate("snake_case_id"), "snk_cs_id");
    }

    #[test]
    fn abbreviation_differs_from_original() {
        for (h, _) in SYNONYMS {
            assert_ne!(abbreviate(h), h.to_string().replace(' ', "_"), "{h}");
        }
    }
}
