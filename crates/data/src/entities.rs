//! Entity-stability query domains (paper §5.6, Figure 12).
//!
//! The paper selects query entities from five domains — ten greatest men
//! tennis players, ten most popular movies, ten essential nutrients, ten
//! most valuable US technology companies, ten largest countries — and
//! compares their K-nearest-neighbour sets between pairs of embedding
//! spaces. Each domain here provides (a) the query entities and (b) an
//! entity-rich corpus in which those entities occur as subject-column
//! cells alongside distractor entities.

use crate::pools;
use observatory_linalg::SplitMix64;
use observatory_table::{Column, Table, Value};

/// One query domain: its name, query entities, and corpus.
#[derive(Debug, Clone)]
pub struct EntityDomain {
    /// Display name ("Tennis Players", …).
    pub name: &'static str,
    /// The ten query entities.
    pub queries: Vec<String>,
    /// Entity-rich tables containing the queries plus distractors.
    pub corpus: Vec<Table>,
}

/// Build the paper's five query domains (Figure 12 displays three of them;
/// the harness prints all five).
pub fn entity_domains(seed: u64) -> Vec<EntityDomain> {
    let mut rng = SplitMix64::new(seed);
    vec![
        domain(&mut rng, "Tennis Players", &pools::TENNIS_PLAYERS, "player", "country", |r| {
            Value::text(pools::COUNTRIES[r].0)
        }),
        domain(&mut rng, "Movies", &pools::MOVIES, "movie", "year", |r| {
            Value::Int(1940 + (r as i64 * 7) % 85)
        }),
        domain(&mut rng, "Biochemistry", &pools::NUTRIENTS, "nutrient", "daily_value", |r| {
            Value::Float((r as f64 + 1.0) * 1.5)
        }),
        domain(&mut rng, "Tech Companies", &pools::TECH_COMPANIES, "company", "revenue", |r| {
            Value::Float((r as f64 + 1.0) * 13.7)
        }),
        domain(&mut rng, "Largest Countries", &pools::LARGEST_COUNTRIES, "country", "area", |r| {
            Value::Int(((r as i64) + 1) * 250_000)
        }),
    ]
}

/// The distractor pool: mentions from all domains plus generic entities,
/// so neighbour sets have meaningful competition.
fn distractors() -> Vec<String> {
    let mut v: Vec<String> = Vec::new();
    v.extend(pools::TENNIS_PLAYERS.iter().map(|s| s.to_string()));
    v.extend(pools::MOVIES.iter().map(|s| s.to_string()));
    v.extend(pools::NUTRIENTS.iter().map(|s| s.to_string()));
    v.extend(pools::TECH_COMPANIES.iter().map(|s| s.to_string()));
    v.extend(pools::LARGEST_COUNTRIES.iter().map(|s| s.to_string()));
    v.extend(pools::COMPANIES.iter().map(|s| s.to_string()));
    v.extend(pools::COMPETITIONS.iter().map(|s| s.to_string()));
    v.extend(pools::CITIES.iter().map(|(c, _)| c.to_string()));
    v.sort();
    v.dedup();
    v
}

fn domain(
    rng: &mut SplitMix64,
    name: &'static str,
    queries: &[&str],
    subject_header: &str,
    attr_header: &str,
    attr: impl Fn(usize) -> Value,
) -> EntityDomain {
    let pool = distractors();
    let mut corpus = Vec::new();
    // Split the queries across a few tables, mixing in distractors — as in
    // WikiTables, an entity appears among others of various domains.
    for (t_idx, chunk) in queries.chunks(5).enumerate() {
        let mut mentions: Vec<String> = chunk.iter().map(|s| s.to_string()).collect();
        for _ in 0..5 {
            mentions.push(pool[rng.next_below(pool.len())].clone());
        }
        rng.shuffle(&mut mentions);
        let rows = mentions.len();
        let mut subject =
            Column::new(subject_header, mentions.into_iter().map(Value::Text).collect());
        subject.is_subject = true;
        corpus.push(Table::new(
            format!("{}_{}", name.to_lowercase().replace(' ', "_"), t_idx),
            vec![
                subject,
                Column::new(attr_header, (0..rows).map(&attr).collect()),
                Column::new("rank", (1..=rows as i64).map(Value::Int).collect()),
            ],
        ));
    }
    EntityDomain { name, queries: queries.iter().map(|s| s.to_string()).collect(), corpus }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_domains_of_ten_queries() {
        let domains = entity_domains(1);
        assert_eq!(domains.len(), 5);
        for d in &domains {
            assert_eq!(d.queries.len(), 10);
            assert!(!d.corpus.is_empty());
        }
    }

    #[test]
    fn queries_occur_in_their_corpus() {
        for d in entity_domains(2) {
            for q in &d.queries {
                let found =
                    d.corpus.iter().any(|t| t.columns[0].values.iter().any(|v| v.to_text() == *q));
                assert!(found, "{} missing from {} corpus", q, d.name);
            }
        }
    }

    #[test]
    fn corpora_contain_cross_domain_distractors() {
        let domains = entity_domains(3);
        let tennis = &domains[0];
        let all_mentions: Vec<String> = tennis
            .corpus
            .iter()
            .flat_map(|t| t.columns[0].values.iter().map(|v| v.to_text()))
            .collect();
        let foreign = all_mentions.iter().filter(|m| !tennis.queries.contains(m)).count();
        assert!(foreign > 0, "no distractors present");
    }

    #[test]
    fn deterministic() {
        let a = entity_domains(9);
        let b = entity_domains(9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.corpus, y.corpus);
        }
    }
}
