//! Spider-like databases with planted functional dependencies (paper §4.2).
//!
//! The paper runs HyFD (determinant size 1) over the Spider dev set to get
//! 713 FDs, then collects an equal number of random column pairs *without*
//! FDs. This module generates multi-domain relational tables in which
//! semantic unary FDs are planted by construction (city → country,
//! country → continent, product → category, …), plus "free" columns that
//! deliberately violate dependency with everything. The actual FD mining is
//! done downstream by `observatory-fd` — the generator only guarantees
//! ground truth to validate the miner against.

use crate::pools;
use observatory_linalg::SplitMix64;
use observatory_table::{Column, Table, Value};

/// A column pair within a generated corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnPair {
    /// Index of the table in the corpus.
    pub table: usize,
    /// Determinant (or simply "left") column index.
    pub x: usize,
    /// Dependent (or "right") column index.
    pub y: usize,
}

/// A generated FD benchmark: tables plus ground-truth planted FDs.
#[derive(Debug, Clone)]
pub struct SpiderCorpus {
    /// The database tables.
    pub tables: Vec<Table>,
    /// Planted FDs guaranteed to hold (`x → y`).
    pub planted_fds: Vec<ColumnPair>,
}

/// Configuration of the Spider-like generator.
#[derive(Debug, Clone)]
pub struct SpiderConfig {
    /// Number of tables.
    pub num_tables: usize,
    /// Rows per table.
    pub rows: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for SpiderConfig {
    fn default() -> Self {
        Self { num_tables: 12, rows: 24, seed: 7 }
    }
}

/// (product, category) pairs — a second FD domain besides geography.
const PRODUCTS: [(&str, &str); 16] = [
    ("espresso", "beverage"),
    ("latte", "beverage"),
    ("green tea", "beverage"),
    ("orange juice", "beverage"),
    ("baguette", "bakery"),
    ("croissant", "bakery"),
    ("sourdough", "bakery"),
    ("cheddar", "dairy"),
    ("gouda", "dairy"),
    ("yogurt", "dairy"),
    ("apple", "produce"),
    ("banana", "produce"),
    ("spinach", "produce"),
    ("salmon", "seafood"),
    ("tuna", "seafood"),
    ("shrimp", "seafood"),
];

/// (department, location) pairs — a third FD domain.
const DEPARTMENTS: [(&str, &str); 8] = [
    ("Sales", "Building A"),
    ("Marketing", "Building A"),
    ("Engineering", "Building B"),
    ("Research", "Building B"),
    ("Support", "Building C"),
    ("Finance", "Building D"),
    ("Legal", "Building D"),
    ("Operations", "Building C"),
];

impl SpiderConfig {
    /// Generate the corpus with ground-truth planted FDs.
    pub fn generate(&self) -> SpiderCorpus {
        let mut rng = SplitMix64::new(self.seed);
        let mut tables = Vec::with_capacity(self.num_tables);
        let mut planted_fds = Vec::new();
        for i in 0..self.num_tables {
            let (table, fds) = match i % 3 {
                0 => geography_table(&mut rng, self.rows, i),
                1 => store_table(&mut rng, self.rows, i),
                _ => employees_table(&mut rng, self.rows, i),
            };
            for (x, y) in fds {
                planted_fds.push(ColumnPair { table: i, x, y });
            }
            tables.push(table);
        }
        SpiderCorpus { tables, planted_fds }
    }
}

/// A column of independent uniform draws from a wide integer range — with
/// overwhelming probability it neither determines nor is determined by
/// anything (violations are guaranteed post-hoc by the callers' miners).
fn noise_column(rng: &mut SplitMix64, header: &str, rows: usize) -> Column {
    Column::new(
        header,
        (0..rows).map(|_| Value::Int(rng.next_below(1_000_000_000) as i64)).collect(),
    )
}

fn geography_table(rng: &mut SplitMix64, rows: usize, idx: usize) -> (Table, Vec<(usize, usize)>) {
    let mut city = Vec::with_capacity(rows);
    let mut country = Vec::with_capacity(rows);
    let mut continent = Vec::with_capacity(rows);
    for _ in 0..rows {
        let (ci, co) = pools::CITIES[rng.next_below(pools::CITIES.len())];
        let cont = pools::COUNTRIES.iter().find(|(c, _)| *c == co).expect("pool invariant").1;
        city.push(Value::text(ci));
        country.push(Value::text(co));
        continent.push(Value::text(cont));
    }
    let t = Table::new(
        format!("geo_{idx}"),
        vec![
            Column::new("city", city),
            Column::new("country", country),
            Column::new("continent", continent),
            noise_column(rng, "visits", rows),
        ],
    );
    // city → country, country → continent, city → continent (transitivity).
    (t, vec![(0, 1), (1, 2), (0, 2)])
}

fn store_table(rng: &mut SplitMix64, rows: usize, idx: usize) -> (Table, Vec<(usize, usize)>) {
    let mut product = Vec::with_capacity(rows);
    let mut category = Vec::with_capacity(rows);
    let mut price = Vec::with_capacity(rows);
    for _ in 0..rows {
        let (p, c) = PRODUCTS[rng.next_below(PRODUCTS.len())];
        product.push(Value::text(p));
        category.push(Value::text(c));
        price.push(Value::Float((100 + rng.next_below(4900)) as f64 / 100.0));
    }
    let t = Table::new(
        format!("store_{idx}"),
        vec![
            Column::new("product", product),
            Column::new("category", category),
            Column::new("price", price),
            noise_column(rng, "stock", rows),
        ],
    );
    (t, vec![(0, 1)])
}

fn employees_table(rng: &mut SplitMix64, rows: usize, idx: usize) -> (Table, Vec<(usize, usize)>) {
    let mut name = Vec::with_capacity(rows);
    let mut department = Vec::with_capacity(rows);
    let mut location = Vec::with_capacity(rows);
    for _ in 0..rows {
        name.push(Value::text(pools::FIRST_NAMES[rng.next_below(pools::FIRST_NAMES.len())]));
        let (d, l) = DEPARTMENTS[rng.next_below(DEPARTMENTS.len())];
        department.push(Value::text(d));
        location.push(Value::text(l));
    }
    let t = Table::new(
        format!("employees_{idx}"),
        vec![
            Column::new("name", name),
            Column::new("department", department),
            Column::new("location", location),
            noise_column(rng, "badge", rows),
        ],
    );
    (t, vec![(1, 2)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use observatory_fd::{discover_unary_fds, discovery::DiscoveryOptions, holds_unary};

    #[test]
    fn planted_fds_hold() {
        let corpus = SpiderConfig::default().generate();
        assert!(!corpus.planted_fds.is_empty());
        for fd in &corpus.planted_fds {
            assert!(
                holds_unary(&corpus.tables[fd.table], fd.x, fd.y),
                "planted FD violated in {}",
                corpus.tables[fd.table].name
            );
        }
    }

    #[test]
    fn miner_finds_every_planted_fd() {
        // Closes the loop paper-style: generate → mine → the planted
        // dependencies are all discovered.
        let corpus = SpiderConfig::default().generate();
        for fd in &corpus.planted_fds {
            let mined = discover_unary_fds(&corpus.tables[fd.table], DiscoveryOptions::default());
            assert!(
                mined.iter().any(|m| m.determinant == fd.x && m.dependent == fd.y),
                "planted {} → {} not mined in {}",
                fd.x,
                fd.y,
                corpus.tables[fd.table].name
            );
        }
    }

    #[test]
    fn noise_columns_do_not_determine_content() {
        let corpus = SpiderConfig { rows: 40, ..Default::default() }.generate();
        for t in &corpus.tables {
            let noise = t.num_cols() - 1;
            // Noise determines nothing content-bearing (with 40 rows over a
            // 10k-value noise range, a spurious FD would require a collision
            // pattern with negligible probability under the fixed seed).
            for y in 0..noise {
                if holds_unary(t, noise, y) {
                    // Only acceptable when noise happens to be a key —
                    // then skip_key_determinants hides it from mining anyway.
                    let distinct = t.columns[noise].distinct_count();
                    assert_eq!(distinct, t.num_rows(), "spurious noise FD in {}", t.name);
                }
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = SpiderConfig::default().generate();
        let b = SpiderConfig::default().generate();
        assert_eq!(a.tables, b.tables);
        assert_eq!(a.planted_fds, b.planted_fds);
    }

    #[test]
    fn table_count_and_shape() {
        let corpus = SpiderConfig { num_tables: 6, rows: 10, seed: 3 }.generate();
        assert_eq!(corpus.tables.len(), 6);
        assert!(corpus.tables.iter().all(|t| t.num_rows() == 10));
    }
}
