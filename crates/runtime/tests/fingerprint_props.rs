//! Property tests for the content fingerprint: permutations and edits of
//! a table's content must change its fingerprint, and fingerprinting must
//! be a pure function of content.

use observatory_runtime::fingerprint_table;
use observatory_table::{Column, Table, Value};
use proptest::prelude::*;

/// A table whose every cell is unique and position-tagged, so *any*
/// non-identity row or column permutation changes the stored bytes.
fn tagged_table(rows: usize, cols: usize) -> Table {
    let columns = (0..cols)
        .map(|j| {
            Column::new(
                format!("col{j}"),
                (0..rows).map(|i| Value::text(format!("cell r{i} c{j}"))).collect(),
            )
        })
        .collect();
    Table::new("tagged", columns)
}

/// Deterministic non-identity rotation of `0..n` by `k` (requires n >= 2).
fn rotation(n: usize, k: usize) -> Vec<usize> {
    let k = 1 + k % (n - 1);
    (0..n).map(|i| (i + k) % n).collect()
}

proptest! {
    #[test]
    fn row_permutation_changes_fingerprint(
        rows in 2usize..10,
        cols in 1usize..6,
        k in 0usize..16,
    ) {
        let t = tagged_table(rows, cols);
        let permuted = t.select_rows(&rotation(rows, k));
        prop_assert_ne!(
            fingerprint_table("bert", &t),
            fingerprint_table("bert", &permuted)
        );
    }

    #[test]
    fn column_permutation_changes_fingerprint(
        rows in 1usize..8,
        cols in 2usize..6,
        k in 0usize..16,
    ) {
        let t = tagged_table(rows, cols);
        let permuted = t.project(&rotation(cols, k));
        prop_assert_ne!(
            fingerprint_table("bert", &t),
            fingerprint_table("bert", &permuted)
        );
    }

    #[test]
    fn cell_edit_changes_fingerprint(
        rows in 1usize..8,
        cols in 1usize..6,
        pick in any::<u64>(),
        suffix in "[a-z]{1,8}",
    ) {
        let t = tagged_table(rows, cols);
        let i = (pick as usize) % rows;
        let j = (pick as usize / rows) % cols;
        let mut edited = t.clone();
        let original = edited.columns[j].values[i].to_text();
        edited.columns[j].values[i] = Value::text(format!("{original} {suffix}"));
        prop_assert_ne!(
            fingerprint_table("bert", &t),
            fingerprint_table("bert", &edited)
        );
    }

    #[test]
    fn fingerprint_is_pure(rows in 0usize..8, cols in 0usize..6) {
        let a = tagged_table(rows, cols);
        let b = tagged_table(rows, cols);
        prop_assert_eq!(fingerprint_table("m", &a), fingerprint_table("m", &b));
        // ... and clones are transparent.
        prop_assert_eq!(fingerprint_table("m", &a), fingerprint_table("m", &a.clone()));
    }

    #[test]
    fn typed_values_fingerprint_by_bits(x in any::<i64>()) {
        let int_t = Table::new("t", vec![Column::new("c", vec![Value::Int(x)])]);
        let txt_t = Table::new("t", vec![Column::new("c", vec![Value::text(x.to_string())])]);
        prop_assert_ne!(
            fingerprint_table("m", &int_t),
            fingerprint_table("m", &txt_t)
        );
    }
}
