//! # observatory-runtime
//!
//! The embedding engine: the single entry point through which every
//! property, downstream task, bench, and CLI run encodes tables.
//!
//! An [`Engine`] composes three pieces, each its own module:
//!
//! - [`fingerprint`] — stable 128-bit content hashes of (model, table,
//!   config) encode requests;
//! - [`cache`] — a sharded, byte-accounted LRU keyed by fingerprint, so
//!   re-encoding the *same bytes* (ablation sweeps, repeated properties on
//!   one corpus, downstream tasks revisiting tables) is a pointer clone;
//! - [`pool`] — a scoped worker pool whose batched results are returned in
//!   index order, making parallel encoding **bit-identical** to the serial
//!   loop at any `--jobs` value.
//!
//! Determinism guarantee: encoders in this workspace are pure functions of
//! (model weights, table bytes). The engine only ever (a) reorders *when*
//! encodes happen, never their inputs, and (b) substitutes a cached result
//! for a recompute of the same fingerprint. Both transformations preserve
//! exact `f64` equality of every result, which the cross-thread
//! determinism suite asserts model-by-model.
//!
//! [`metrics`] observes all of it with lock-free counters and fixed-bucket
//! latency histograms, rendered by the CLI as a post-run footer.

pub mod cache;
pub mod expose;
pub mod fingerprint;
pub mod metrics;
pub mod pool;
pub mod store;

pub use cache::{CacheSnapshot, CacheStats, EncodingCache, ShardOccupancy};
pub use expose::prometheus_text;
pub use fingerprint::{fingerprint_request, fingerprint_table, Fingerprint, FingerprintHasher};
pub use metrics::{Metrics, MetricsSnapshot, ModelStats};
pub use pool::{resolve_jobs, run_indexed};
pub use store::{EmbeddingStore, StoreTierStats};

use observatory_models::{ModelEncoding, TableEncoder};
use observatory_obs as obs;
use observatory_table::Table;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Engine construction parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads for [`Engine::encode_batch`] (1 = serial inline).
    pub jobs: usize,
    /// Encoding-cache capacity in bytes (0 disables caching).
    pub cache_bytes: usize,
}

/// Default cache budget: 256 MiB, a few thousand typical encodings.
pub const DEFAULT_CACHE_BYTES: usize = 256 << 20;

impl Default for EngineConfig {
    fn default() -> Self {
        Self { jobs: resolve_jobs(None), cache_bytes: DEFAULT_CACHE_BYTES }
    }
}

impl EngineConfig {
    /// Defaults overridden by `OBSERVATORY_JOBS` / `OBSERVATORY_CACHE_MB`.
    pub fn from_env() -> Self {
        let cache_bytes = std::env::var("OBSERVATORY_CACHE_MB")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map_or(DEFAULT_CACHE_BYTES, |mb| mb << 20);
        Self { jobs: resolve_jobs(None), cache_bytes }
    }

    /// Serial, cache-less engine — the reference configuration the
    /// determinism tests compare against.
    pub fn serial_uncached() -> Self {
        Self { jobs: 1, cache_bytes: 0 }
    }
}

/// The embedding engine: cache + pool + metrics behind one handle.
/// Cheap to share (`Arc<Engine>`); all methods take `&self`.
pub struct Engine {
    config: EngineConfig,
    cache: EncodingCache,
    metrics: Metrics,
    /// Optional tier-2 persistent store, attached at most once (before
    /// the first encode) through the [`EmbeddingStore`] port.
    store: OnceLock<Arc<dyn EmbeddingStore>>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("jobs", &self.config.jobs)
            .field("cache_bytes", &self.config.cache_bytes)
            .finish_non_exhaustive()
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new(EngineConfig::default())
    }
}

impl Engine {
    /// Build an engine from a config.
    pub fn new(config: EngineConfig) -> Self {
        Self {
            cache: EncodingCache::new(config.cache_bytes),
            metrics: Metrics::new(),
            config,
            store: OnceLock::new(),
        }
    }

    /// Attach a tier-2 persistent store behind the LRU. First-wins like
    /// [`configure_global`]: returns `false` (and changes nothing) if a
    /// store is already attached. Attach before the first encode, or
    /// earlier encodes simply won't have been written through.
    pub fn attach_store(&self, store: Arc<dyn EmbeddingStore>) -> bool {
        self.store.set(store).is_ok()
    }

    /// The attached tier-2 store, if any.
    pub fn store(&self) -> Option<&Arc<dyn EmbeddingStore>> {
        self.store.get()
    }

    /// Flush the tier-2 store's write-ahead log to stable storage
    /// (no-op without a store). The serve drain path calls this so an
    /// acked corpus survives machine restarts, not just process exits.
    pub fn flush_store(&self) -> std::io::Result<()> {
        match self.store.get() {
            Some(store) => store.flush(),
            None => Ok(()),
        }
    }

    /// Worker thread count used by [`Engine::encode_batch`].
    pub fn jobs(&self) -> usize {
        self.config.jobs
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Engine metrics registry (for recording; use
    /// [`Engine::metrics_snapshot`] to read).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Frozen metrics state.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Cache statistics across both tiers: the LRU's own counters plus
    /// the tier-2 (disk) hit/miss/write counters and, when a store is
    /// attached, its record count and generation.
    pub fn cache_stats(&self) -> CacheStats {
        let mut stats = self.cache.stats();
        let snap = self.metrics.snapshot();
        stats.tier2_hits = snap.tier2_hits;
        stats.tier2_misses = snap.tier2_misses;
        stats.tier2_writes = snap.tier2_writes;
        if let Some(store) = self.store.get() {
            let tier = store.tier_stats();
            stats.tier2_enabled = true;
            stats.tier2_records = tier.records;
            stats.tier2_generation = tier.generation;
        }
        stats
    }

    /// Drop all cached encodings (counters survive). Benches use this to
    /// measure cold-cache throughput on a warm process.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Encode one table through the cache. On a miss the model runs and
    /// the result is admitted; on a hit the model is never consulted.
    pub fn encode_table(&self, model: &dyn TableEncoder, table: &Table) -> Arc<ModelEncoding> {
        let fp = fingerprint_table(model.name(), table);
        self.encode_fingerprinted(model, table, fp, None)
    }

    /// `parent` is the batch span id when the call runs on a pool worker
    /// — the worker's thread-local span stack cannot see the caller's
    /// spans, so the edge is threaded explicitly.
    fn encode_fingerprinted(
        &self,
        model: &dyn TableEncoder,
        table: &Table,
        fp: Fingerprint,
        parent: Option<u64>,
    ) -> Arc<ModelEncoding> {
        self.encode_fingerprinted_timed(model, table, fp, parent).0
    }

    /// [`Engine::encode_fingerprinted`] plus per-stage wall timings, the
    /// basis of the serving path's request stage breakdown.
    fn encode_fingerprinted_timed(
        &self,
        model: &dyn TableEncoder,
        table: &Table,
        fp: Fingerprint,
        parent: Option<u64>,
    ) -> (Arc<ModelEncoding>, EncodeTiming) {
        let mut timing = EncodeTiming::default();
        if let Some(hit) = self.cache.get(fp) {
            self.metrics.record_hit();
            obs::event(obs::Level::Trace, "cache", "hit");
            timing.cache_hit = true;
            return (hit, timing);
        }
        self.metrics.record_miss();
        // Tier 2: an LRU miss consults the persistent store before the
        // model runs. A verified disk record is promoted into the LRU so
        // repeats of the same key pay mmap+decode exactly once.
        if let Some(store) = self.store.get() {
            let mut span = obs::span(obs::Level::Debug, "store", "read").with_parent(parent);
            let start = Instant::now();
            let loaded = store.load(fp);
            timing.store_us = as_us(start.elapsed());
            if let Some(enc) = loaded {
                span.record("hit", 1u64);
                self.metrics.record_tier2_hit();
                self.cache.insert(fp, Arc::clone(&enc));
                timing.tier2_hit = true;
                return (enc, timing);
            }
            span.record("hit", 0u64);
            self.metrics.record_tier2_miss();
        }
        let mut span = obs::span(obs::Level::Debug, "runtime", "encode")
            .with_parent(parent)
            .with("model", model.name())
            .with("rows", table.num_rows())
            .with("cols", table.num_cols());
        let start = Instant::now();
        let encoding = Arc::new(model.encode_table(table));
        let elapsed = start.elapsed();
        timing.encode_us = as_us(elapsed);
        self.metrics.record_encode(model.name(), elapsed, encoding.embeddings.rows());
        span.record("tokens", encoding.embeddings.rows());
        self.cache.insert(fp, Arc::clone(&encoding));
        if let Some(store) = self.store.get() {
            let _span = obs::span(obs::Level::Debug, "store", "write").with_parent(parent);
            let start = Instant::now();
            store.save(fp, &encoding);
            timing.write_us = as_us(start.elapsed());
            self.metrics.record_tier2_write();
        }
        (encoding, timing)
    }

    /// Encode a batch of tables on the worker pool. Results are in input
    /// order and bit-identical to calling [`Engine::encode_table`] in a
    /// serial loop, for any job count.
    ///
    /// Duplicate tables inside one batch (frequent in permutation sweeps,
    /// where the identity permutation reappears) are encoded once and the
    /// resulting `Arc` shared across their positions.
    pub fn encode_batch(
        &self,
        model: &dyn TableEncoder,
        tables: &[Table],
    ) -> Vec<Arc<ModelEncoding>> {
        self.encode_batch_timed(model, tables).0
    }

    /// [`Engine::encode_batch`] plus one [`EncodeTiming`] per input
    /// position. Duplicate tables share the timing of the position that
    /// actually encoded (they share the work, so they share its cost
    /// attribution).
    pub fn encode_batch_timed(
        &self,
        model: &dyn TableEncoder,
        tables: &[Table],
    ) -> (Vec<Arc<ModelEncoding>>, Vec<EncodeTiming>) {
        self.metrics.record_batch();
        let mut batch_span = obs::span(obs::Level::Info, "runtime", "encode_batch")
            .with("model", model.name())
            .with("tables", tables.len())
            .with("jobs", self.config.jobs);
        let fps: Vec<Fingerprint> =
            tables.iter().map(|t| fingerprint_table(model.name(), t)).collect();
        // Deduplicate within the batch: map each input position to the
        // first position carrying its fingerprint.
        let mut first_of: HashMap<u128, usize> = HashMap::with_capacity(tables.len());
        let mut unique: Vec<usize> = Vec::with_capacity(tables.len());
        let mut unique_slot: Vec<usize> = Vec::with_capacity(tables.len());
        for (i, fp) in fps.iter().enumerate() {
            let slot = *first_of.entry(fp.0).or_insert_with(|| {
                unique.push(i);
                unique.len() - 1
            });
            unique_slot.push(slot);
        }
        batch_span.record("unique", unique.len());
        let parent = batch_span.id();
        let encoded: Vec<(Arc<ModelEncoding>, EncodeTiming)> =
            run_indexed(self.config.jobs, unique.len(), |u| {
                let i = unique[u];
                self.encode_fingerprinted_timed(model, &tables[i], fps[i], parent)
            });
        let timings = unique_slot.iter().map(|&slot| encoded[slot].1).collect();
        let out = unique_slot.into_iter().map(|slot| Arc::clone(&encoded[slot].0)).collect();
        (out, timings)
    }
}

/// Per-encode stage wall timings observed inside the engine, in
/// microseconds. Produced by [`Engine::encode_batch_timed`]; the serve
/// crate folds these into its per-request stage breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EncodeTiming {
    /// Model forward time (zero on any cache or store hit).
    pub encode_us: u64,
    /// Tier-2 store read time (zero without a store, or on a tier-1 hit).
    pub store_us: u64,
    /// Tier-2 write-through time (zero when nothing was written).
    pub write_us: u64,
    /// Tier 1 (the LRU) answered.
    pub cache_hit: bool,
    /// Tier 2 (the store) answered.
    pub tier2_hit: bool,
}

/// Saturating whole microseconds.
fn as_us(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

static GLOBAL: OnceLock<Arc<Engine>> = OnceLock::new();

/// Install the process-wide engine. Returns `false` (and changes nothing)
/// if one was already installed — the CLI calls this exactly once, before
/// any encode, from `--jobs`/env flags.
pub fn configure_global(config: EngineConfig) -> bool {
    GLOBAL.set(Arc::new(Engine::new(config))).is_ok()
}

/// The process-wide engine, created from [`EngineConfig::from_env`] on
/// first use if [`configure_global`] was never called.
pub fn global() -> Arc<Engine> {
    Arc::clone(GLOBAL.get_or_init(|| Arc::new(Engine::new(EngineConfig::from_env()))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use observatory_linalg::Matrix;
    use observatory_models::{Capabilities, Readout, TokenProvenance};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    /// A cheap deterministic encoder: embeddings are a pure function of
    /// the table's cell text, and an atomic counter observes real runs.
    struct StubModel {
        runs: AtomicU64,
    }

    impl StubModel {
        fn new() -> Self {
            Self { runs: AtomicU64::new(0) }
        }
    }

    impl TableEncoder for StubModel {
        fn name(&self) -> &str {
            "stub"
        }
        fn display_name(&self) -> &str {
            "Stub"
        }
        fn dim(&self) -> usize {
            4
        }
        fn capabilities(&self) -> Capabilities {
            Capabilities::all()
        }
        fn encode_table(&self, table: &Table) -> ModelEncoding {
            self.runs.fetch_add(1, Ordering::SeqCst);
            let mut rows = Vec::new();
            let mut provenance = Vec::new();
            for (j, col) in table.columns.iter().enumerate() {
                for (i, v) in col.values.iter().enumerate() {
                    let s = v.to_text();
                    let h = s.bytes().fold(0u64, |a, b| a.wrapping_mul(31).wrapping_add(b as u64));
                    rows.push(vec![h as f64, i as f64, j as f64, s.len() as f64]);
                    provenance.push(TokenProvenance {
                        row: (i + 1) as u32,
                        col: (j + 1) as u32,
                        special: false,
                    });
                }
            }
            if rows.is_empty() {
                rows.push(vec![0.0; 4]);
                provenance.push(TokenProvenance { row: 0, col: 0, special: true });
            }
            ModelEncoding {
                embeddings: Matrix::from_rows(&rows),
                provenance,
                table_cls: None,
                column_cls: vec![None; table.num_cols()],
                rows_encoded: table.num_rows(),
                cols_encoded: table.num_cols(),
                column_readout: Readout::MeanPool,
                table_readout: Readout::MeanPool,
                capabilities: Capabilities::all(),
            }
        }
        fn encode_text(&self, text: &str) -> Vec<f64> {
            vec![text.len() as f64; 4]
        }
    }

    fn table(tag: i64) -> Table {
        use observatory_table::{Column, Value};
        Table::new(
            format!("t{tag}"),
            vec![
                Column::new("id", (0..6).map(|i| Value::Int(i + tag)).collect()),
                Column::new(
                    "name",
                    (0..6).map(|i| Value::text(format!("row {i} of {tag}"))).collect(),
                ),
            ],
        )
    }

    #[test]
    fn cache_hit_skips_model() {
        let engine = Engine::new(EngineConfig { jobs: 1, cache_bytes: 1 << 22 });
        let model = StubModel::new();
        let t = table(1);
        let a = engine.encode_table(&model, &t);
        let b = engine.encode_table(&model, &t);
        assert_eq!(model.runs.load(Ordering::SeqCst), 1, "second call must be a hit");
        assert_eq!(a.embeddings, b.embeddings);
        let s = engine.metrics_snapshot();
        assert_eq!((s.cache_hits, s.cache_misses, s.encodes), (1, 1, 1));
    }

    #[test]
    fn batch_matches_serial_at_any_jobs() {
        let tables: Vec<Table> = (0..12).map(table).collect();
        let reference: Vec<ModelEncoding> = {
            let model = StubModel::new();
            tables.iter().map(|t| model.encode_table(t)).collect()
        };
        for jobs in [1, 2, 4, 8] {
            let engine = Engine::new(EngineConfig { jobs, cache_bytes: 0 });
            let model = StubModel::new();
            let out = engine.encode_batch(&model, &tables);
            assert_eq!(out.len(), tables.len());
            for (got, want) in out.iter().zip(&reference) {
                assert_eq!(got.embeddings, want.embeddings, "jobs={jobs}");
                assert_eq!(got.provenance, want.provenance, "jobs={jobs}");
            }
        }
    }

    #[test]
    fn batch_deduplicates_identical_tables() {
        let engine = Engine::new(EngineConfig { jobs: 2, cache_bytes: 1 << 22 });
        let model = StubModel::new();
        let t = table(7);
        let batch = vec![t.clone(), table(8), t.clone(), t.clone()];
        let out = engine.encode_batch(&model, &batch);
        assert_eq!(model.runs.load(Ordering::SeqCst), 2, "3 duplicates encode once");
        assert_eq!(out[0].embeddings, out[2].embeddings);
        assert!(Arc::ptr_eq(&out[0], &out[3]), "duplicates share one Arc");
    }

    #[test]
    fn batch_timings_reflect_tiers() {
        let engine = Engine::new(EngineConfig { jobs: 2, cache_bytes: 1 << 22 });
        let store = Arc::new(MapStore::default());
        assert!(engine.attach_store(Arc::clone(&store) as Arc<dyn EmbeddingStore>));
        let model = StubModel::new();
        let t = table(31);
        let batch = vec![t.clone(), table(32), t.clone()];
        let (out, timings) = engine.encode_batch_timed(&model, &batch);
        assert_eq!(out.len(), 3);
        assert_eq!(timings.len(), 3);
        for tm in &timings {
            assert!(!tm.cache_hit && !tm.tier2_hit, "cold batch misses both tiers: {tm:?}");
        }
        assert_eq!(timings[0], timings[2], "duplicates share the encoding position's timing");

        // Warm repeat: tier-1 hits, nothing encoded or touched on disk.
        let (_, warm) = engine.encode_batch_timed(&model, &batch);
        for tm in &warm {
            assert!(tm.cache_hit, "warm batch hits the LRU: {tm:?}");
            assert_eq!((tm.encode_us, tm.store_us, tm.write_us), (0, 0, 0));
        }

        // Evict tier 1: the store answers and the model never runs again.
        engine.clear_cache();
        let runs_before = model.runs.load(Ordering::SeqCst);
        let (_, disk) = engine.encode_batch_timed(&model, &batch);
        assert_eq!(model.runs.load(Ordering::SeqCst), runs_before, "tier-2 hits skip the model");
        for tm in &disk {
            assert!(tm.tier2_hit && !tm.cache_hit, "{tm:?}");
            assert_eq!((tm.encode_us, tm.write_us), (0, 0));
        }
    }

    #[test]
    fn disabled_cache_still_correct() {
        let engine = Engine::new(EngineConfig { jobs: 1, cache_bytes: 0 });
        let model = StubModel::new();
        let t = table(3);
        let a = engine.encode_table(&model, &t);
        let b = engine.encode_table(&model, &t);
        assert_eq!(model.runs.load(Ordering::SeqCst), 2);
        assert_eq!(a.embeddings, b.embeddings);
    }

    #[test]
    fn metrics_invariants_after_workload() {
        let engine = Engine::new(EngineConfig { jobs: 2, cache_bytes: 1 << 22 });
        let model = StubModel::new();
        let tables: Vec<Table> = (0..5).map(table).collect();
        engine.encode_batch(&model, &tables);
        engine.encode_batch(&model, &tables); // all hits
        let s = engine.metrics_snapshot();
        assert_eq!(s.lookups(), s.cache_hits + s.cache_misses);
        assert_eq!(s.encodes, s.cache_misses);
        assert_eq!(s.encode_latency.count, s.encodes);
        assert_eq!(s.cache_hits, 5);
        assert_eq!(s.batches, 2);
        assert_eq!(engine.cache_stats().hits, 5);
    }

    #[test]
    fn global_is_a_singleton() {
        let a = global();
        let b = global();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!configure_global(EngineConfig::default()), "already installed");
    }

    #[test]
    fn engine_debug_is_compact() {
        let engine = Engine::new(EngineConfig { jobs: 3, cache_bytes: 1024 });
        let s = format!("{engine:?}");
        assert!(s.contains("jobs: 3"));
    }

    /// Trait-level test double: a HashMap behind a mutex, cloning
    /// encodings on both sides of the boundary like a real disk store.
    #[derive(Default)]
    struct MapStore {
        map: Mutex<std::collections::HashMap<u128, ModelEncoding>>,
        reads: AtomicU64,
        writes: AtomicU64,
    }

    impl EmbeddingStore for MapStore {
        fn load(&self, fp: Fingerprint) -> Option<Arc<ModelEncoding>> {
            let hit = self.map.lock().unwrap().get(&fp.0).cloned().map(Arc::new);
            if hit.is_some() {
                self.reads.fetch_add(1, Ordering::SeqCst);
            }
            hit
        }
        fn save(&self, fp: Fingerprint, enc: &ModelEncoding) {
            self.writes.fetch_add(1, Ordering::SeqCst);
            self.map.lock().unwrap().insert(fp.0, enc.clone());
        }
        fn flush(&self) -> std::io::Result<()> {
            Ok(())
        }
        fn tier_stats(&self) -> StoreTierStats {
            StoreTierStats {
                records: self.map.lock().unwrap().len() as u64,
                generation: 7,
                ..Default::default()
            }
        }
    }

    #[test]
    fn tier2_hit_skips_model_and_counters_line_up() {
        let engine = Engine::new(EngineConfig { jobs: 1, cache_bytes: 1 << 22 });
        let store = Arc::new(MapStore::default());
        assert!(engine.attach_store(Arc::clone(&store) as Arc<dyn EmbeddingStore>));
        assert!(
            !engine.attach_store(Arc::clone(&store) as Arc<dyn EmbeddingStore>),
            "attach is first-wins"
        );
        let model = StubModel::new();
        let t = table(11);
        let a = engine.encode_table(&model, &t); // miss both tiers → encode + write-through
        assert_eq!(model.runs.load(Ordering::SeqCst), 1);
        assert_eq!(store.writes.load(Ordering::SeqCst), 1);

        // Evict tier 1 but keep the store: the next encode must be a
        // tier-2 hit that never runs the model and is bitwise identical.
        engine.clear_cache();
        let b = engine.encode_table(&model, &t);
        assert_eq!(model.runs.load(Ordering::SeqCst), 1, "tier-2 hit must skip the model");
        assert_eq!(a.embeddings, b.embeddings);
        assert_eq!(a.provenance, b.provenance);

        let c = engine.encode_table(&model, &t); // promoted → tier-1 hit
        assert!(Arc::ptr_eq(&b, &c), "tier-2 hit was promoted into the LRU");

        let s = engine.metrics_snapshot();
        assert_eq!((s.cache_hits, s.cache_misses), (1, 2));
        assert_eq!((s.tier2_hits, s.tier2_misses, s.tier2_writes), (1, 1, 1));
        assert_eq!(
            s.encodes,
            s.cache_misses - s.tier2_hits,
            "with a store, encodes == misses - tier2 hits"
        );

        let cs = engine.cache_stats();
        assert!(cs.tier2_enabled);
        assert_eq!((cs.tier2_hits, cs.tier2_misses, cs.tier2_writes), (1, 1, 1));
        assert_eq!(cs.tier2_records, 1);
        assert_eq!(cs.tier2_generation, 7);
        assert!(engine.flush_store().is_ok());
    }

    #[test]
    fn no_store_leaves_tier2_counters_zero() {
        let engine = Engine::new(EngineConfig { jobs: 1, cache_bytes: 1 << 22 });
        let model = StubModel::new();
        engine.encode_table(&model, &table(21));
        let cs = engine.cache_stats();
        assert!(!cs.tier2_enabled);
        assert_eq!((cs.tier2_hits, cs.tier2_misses, cs.tier2_writes), (0, 0, 0));
        let s = engine.metrics_snapshot();
        assert_eq!(s.encodes, s.cache_misses, "legacy invariant holds without a store");
    }
}
