//! Prometheus text exposition of the engine's runtime state.
//!
//! Folds a [`MetricsSnapshot`] (encode/cache counters, per-model totals,
//! the fixed-bucket latency histogram with p50/p95/p99 estimates), a
//! [`CacheStats`] (per-shard occupancy + high-water mark), a provenance
//! [`Manifest`], and optionally a drained span [`Trace`] into one
//! `metrics.prom` document. The CLI's `--metrics-out` and the bench
//! harness's `OBSERVATORY_METRICS_OUT` both render through here, so the
//! exposition schema has exactly one definition.

use crate::cache::CacheStats;
use crate::metrics::{MetricsSnapshot, BUCKET_BOUNDS_NS};
use observatory_obs::{Manifest, PromBuf, Trace};

/// Render the full Prometheus document. `trace` adds per-span-name
/// aggregates when present.
pub fn prometheus_text(
    snapshot: &MetricsSnapshot,
    cache: &CacheStats,
    manifest: &Manifest,
    trace: Option<&Trace>,
) -> String {
    let mut buf = PromBuf::new();

    // Provenance: one constant gauge carrying the manifest as labels.
    buf.family("observatory_run_info", "gauge", "Run provenance manifest; value is always 1.");
    let labels: Vec<(&str, &str)> =
        manifest.pairs().iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
    buf.sample("observatory_run_info", &labels, 1.0);

    // Engine counters.
    buf.scalar(
        "observatory_encodes_total",
        "counter",
        "Tables actually encoded (cache misses that ran a model).",
        snapshot.encodes as f64,
    );
    buf.scalar(
        "observatory_encode_batches_total",
        "counter",
        "encode_batch invocations.",
        snapshot.batches as f64,
    );
    buf.scalar(
        "observatory_tokens_embedded_total",
        "counter",
        "Token embeddings produced.",
        snapshot.tokens as f64,
    );
    buf.family("observatory_cache_lookups_total", "counter", "Engine cache lookups by result.");
    buf.sample("observatory_cache_lookups_total", &[("result", "hit")], snapshot.cache_hits as f64);
    buf.sample(
        "observatory_cache_lookups_total",
        &[("result", "miss")],
        snapshot.cache_misses as f64,
    );
    buf.scalar(
        "observatory_cache_hit_ratio",
        "gauge",
        "Cache hits over lookups (0 when no lookups).",
        snapshot.hit_rate(),
    );

    // Tier-2 (persistent store) counters. Emitted unconditionally — a
    // stable schema whether or not a store is attached; scrapers key off
    // observatory_store_attached.
    buf.scalar(
        "observatory_store_attached",
        "gauge",
        "1 when a tier-2 persistent store is attached, else 0.",
        if cache.tier2_enabled { 1.0 } else { 0.0 },
    );
    buf.family(
        "observatory_store_lookups_total",
        "counter",
        "Tier-2 store consultations (LRU misses) by result.",
    );
    buf.sample("observatory_store_lookups_total", &[("result", "hit")], cache.tier2_hits as f64);
    buf.sample("observatory_store_lookups_total", &[("result", "miss")], cache.tier2_misses as f64);
    buf.scalar(
        "observatory_store_writes_total",
        "counter",
        "Write-throughs persisted to the tier-2 store.",
        cache.tier2_writes as f64,
    );
    buf.scalar(
        "observatory_store_records",
        "gauge",
        "Live records addressable in the tier-2 store.",
        cache.tier2_records as f64,
    );
    buf.scalar(
        "observatory_store_generation",
        "gauge",
        "Tier-2 store generation (rotations + compactions).",
        cache.tier2_generation as f64,
    );

    // Cache occupancy, per shard and aggregate.
    buf.scalar(
        "observatory_cache_evictions_total",
        "counter",
        "Entries evicted to make room.",
        cache.evictions as f64,
    );
    buf.scalar(
        "observatory_cache_insertions_total",
        "counter",
        "Entries admitted.",
        cache.insertions as f64,
    );
    buf.scalar(
        "observatory_cache_capacity_bytes",
        "gauge",
        "Configured cache capacity (0 = disabled).",
        cache.capacity as f64,
    );
    buf.scalar(
        "observatory_cache_high_water_bytes",
        "gauge",
        "Largest live-byte footprint observed this run.",
        cache.high_water_bytes as f64,
    );
    buf.family("observatory_cache_shard_entries", "gauge", "Live entries per shard.");
    for (i, sh) in cache.shards.iter().enumerate() {
        let shard = i.to_string();
        buf.sample("observatory_cache_shard_entries", &[("shard", &shard)], sh.entries as f64);
    }
    buf.family("observatory_cache_shard_bytes", "gauge", "Approximate live bytes per shard.");
    for (i, sh) in cache.shards.iter().enumerate() {
        let shard = i.to_string();
        buf.sample("observatory_cache_shard_bytes", &[("shard", &shard)], sh.bytes as f64);
    }

    // Observability self-health: records the obs collector discarded
    // because a stripe was full. Nonzero means traces have holes — the
    // CLI footer warns and operators should drain more often or raise
    // the caps.
    buf.scalar(
        "observatory_obs_dropped_total",
        "counter",
        "Span/event records discarded by the obs collector (stripe full).",
        observatory_obs::dropped_total() as f64,
    );

    // Latency histogram + quantile estimates from the fixed buckets.
    let lat = &snapshot.encode_latency;
    buf.histogram_ns(
        "observatory_encode_latency_seconds",
        "Wall time per real encode.",
        &[],
        &BUCKET_BOUNDS_NS,
        &lat.buckets,
        lat.sum_ns,
        lat.count,
    );
    buf.family(
        "observatory_encode_latency_quantile_seconds",
        "gauge",
        "Latency quantiles estimated from the fixed buckets.",
    );
    for (q, v) in [("0.5", lat.p50_ns()), ("0.95", lat.p95_ns()), ("0.99", lat.p99_ns())] {
        buf.sample("observatory_encode_latency_quantile_seconds", &[("quantile", q)], v / 1e9);
    }

    // Per-model breakdown.
    buf.family("observatory_model_encodes_total", "counter", "Real encodes per model.");
    for (name, m) in &snapshot.per_model {
        buf.sample("observatory_model_encodes_total", &[("model", name)], m.encodes as f64);
    }
    buf.family("observatory_model_tokens_total", "counter", "Token embeddings per model.");
    for (name, m) in &snapshot.per_model {
        buf.sample("observatory_model_tokens_total", &[("model", name)], m.tokens as f64);
    }
    buf.family(
        "observatory_model_encode_seconds_total",
        "counter",
        "Wall time encoding per model.",
    );
    for (name, m) in &snapshot.per_model {
        buf.sample(
            "observatory_model_encode_seconds_total",
            &[("model", name)],
            m.encode_ns as f64 / 1e9,
        );
    }

    if let Some(trace) = trace {
        buf.span_aggregates(trace);
    }
    buf.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::EncodingCache;
    use observatory_obs::prom::validate;
    use std::time::Duration;

    fn sample_inputs() -> (MetricsSnapshot, CacheStats, Manifest) {
        let m = Metrics::new();
        m.record_miss();
        m.record_encode("bert", Duration::from_micros(120), 64);
        m.record_miss();
        m.record_encode("tapas", Duration::from_millis(3), 32);
        m.record_hit();
        m.record_batch();
        let cache = EncodingCache::new(1 << 20).stats();
        let mut manifest = Manifest::new();
        manifest.set("models", "bert,tapas").set("seed", "42").set("dataset", "demo");
        (m.snapshot(), cache, manifest)
    }

    #[test]
    fn exposition_validates_and_carries_everything() {
        let (snap, cache, manifest) = sample_inputs();
        let text = prometheus_text(&snap, &cache, &manifest, None);
        let summary = validate(&text).expect("exposition must validate");
        for name in [
            "observatory_run_info",
            "observatory_encodes_total",
            "observatory_cache_lookups_total",
            "observatory_cache_shard_entries",
            "observatory_cache_shard_bytes",
            "observatory_cache_high_water_bytes",
            "observatory_encode_latency_seconds_bucket",
            "observatory_encode_latency_seconds_sum",
            "observatory_encode_latency_seconds_count",
            "observatory_encode_latency_quantile_seconds",
            "observatory_model_encodes_total",
            "observatory_store_attached",
            "observatory_store_lookups_total",
            "observatory_store_writes_total",
            "observatory_store_records",
            "observatory_store_generation",
            "observatory_obs_dropped_total",
        ] {
            assert!(summary.has(name), "missing {name}\n{text}");
        }
        assert!(text.contains("observatory_run_info{models=\"bert,tapas\",seed=\"42\""));
        assert!(text.contains("model=\"bert\"} 1"));
        assert!(text.contains("quantile=\"0.99\""));
    }

    #[test]
    fn shard_gauges_cover_all_shards() {
        let (snap, cache, manifest) = sample_inputs();
        let text = prometheus_text(&snap, &cache, &manifest, None);
        let lines =
            text.lines().filter(|l| l.starts_with("observatory_cache_shard_entries{")).count();
        assert_eq!(lines, crate::cache::N_SHARDS);
    }

    #[test]
    fn trace_aggregates_are_folded_in() {
        let (snap, cache, manifest) = sample_inputs();
        let trace = Trace::default();
        let text = prometheus_text(&snap, &cache, &manifest, Some(&trace));
        let summary = validate(&text).unwrap();
        assert!(summary.has("observatory_trace_dropped_records"));
    }
}
