//! Port: the persistent second-tier embedding store.
//!
//! The engine's LRU cache (tier 1) dies with the process. This trait is
//! the hexagonal *port* through which the engine consults a durable
//! tier 2 — fingerprint-addressed, so the same content key that indexes
//! the in-memory cache indexes the disk store. The runtime crate owns
//! only the contract; the memory-mapped segment/WAL *adapter* lives in
//! `crates/store`, and an alternate backend (remote blob store, test
//! double) can slot in behind the same trait without touching the
//! engine.
//!
//! ## Contract
//!
//! - `load(fp)` returns an encoding **bitwise equal** to what `save(fp,
//!   enc)` persisted, or `None`. A store must never return a payload
//!   whose integrity it cannot vouch for (checksums failed → `None`;
//!   the engine then recomputes and overwrites, so corruption is
//!   self-healing, never an error the encode path has to handle).
//! - `save` must make the record readable by a *future process* once it
//!   returns: data handed to the OS (surviving `kill -9`), though not
//!   necessarily fsynced (machine-crash durability is what [`flush`]
//!   adds, and the server's drain path calls it).
//! - Both methods are called from pool worker threads concurrently; the
//!   implementation synchronizes internally.
//!
//! [`flush`]: EmbeddingStore::flush

use crate::fingerprint::Fingerprint;
use observatory_models::ModelEncoding;
use std::sync::Arc;

/// A durable fingerprint → encoding store (tier 2 under the LRU).
pub trait EmbeddingStore: Send + Sync {
    /// Fetch the encoding persisted under `fp`, verifying integrity.
    /// `None` means "not stored" *or* "stored but failed verification" —
    /// either way the caller re-encodes.
    fn load(&self, fp: Fingerprint) -> Option<Arc<ModelEncoding>>;

    /// Persist `enc` under `fp` (write-through on encode). Replaces any
    /// prior record with the same fingerprint.
    fn save(&self, fp: Fingerprint, enc: &ModelEncoding);

    /// Make everything acknowledged so far machine-crash durable
    /// (fsync the write-ahead log). The serve drain path calls this.
    fn flush(&self) -> std::io::Result<()>;

    /// Current statistics snapshot.
    fn tier_stats(&self) -> StoreTierStats;

    /// Monotone store generation: bumped by every segment rotation and
    /// compaction. Provenance manifests record it so an artifact can be
    /// traced to the exact on-disk state that produced it.
    fn generation(&self) -> u64 {
        self.tier_stats().generation
    }

    /// Every live fingerprint, ascending and deduplicated — the
    /// enumeration hook warm starts use to rebuild derived structures
    /// (the serve ANN index) from store contents instead of re-encoding
    /// the corpus. The default (empty) keeps trivial adapters and test
    /// doubles honest: "nothing to enumerate" degrades to a cold start,
    /// never to an error.
    fn fingerprints(&self) -> Vec<Fingerprint> {
        Vec::new()
    }
}

/// Frozen statistics of a tier-2 store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreTierStats {
    /// Live (addressable) records across memtable and segments.
    pub records: u64,
    /// Immutable segment files currently open.
    pub segments: u64,
    /// Bytes across segment files.
    pub segment_bytes: u64,
    /// Bytes in the write-ahead log (active + frozen).
    pub wal_bytes: u64,
    /// Records resident in the in-memory memtable (WAL-backed).
    pub memtable_records: u64,
    /// Monotone generation (rotations + compactions since creation).
    pub generation: u64,
    /// `load` calls served (record found and verified).
    pub reads: u64,
    /// `save` calls accepted.
    pub writes: u64,
    /// Records rejected at read time (checksum/decode failure).
    pub read_errors: u64,
    /// Memtable → segment rotations performed.
    pub rotations: u64,
    /// Multi-segment merges performed.
    pub compactions: u64,
    /// Records dropped during recovery (torn WAL tail, bad checksums).
    pub recovery_dropped: u64,
}
