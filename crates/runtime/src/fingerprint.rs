//! Stable 128-bit content fingerprints for (model, table) encode requests.
//!
//! The cache in this crate is *content-addressed*: two encode requests hit
//! the same entry iff they would produce bit-identical [`ModelEncoding`]s.
//! Every input the deterministic encoders consume is therefore folded into
//! the fingerprint — the model's registry name (weights are seeded from
//! it), the table name (serializers may use it as a caption), each column's
//! header, semantic-type annotation, and subject flag, and every cell value
//! in storage order with its type tag. Row and column *order* is part of
//! the content on purpose: Properties 1 and 2 encode permuted variants of
//! one logical table, and those variants must not collide.
//!
//! The hash is a 128-bit FNV-1a with explicit domain-separation tags and
//! length prefixes, so concatenation ambiguities ("ab","c" vs "a","bc")
//! cannot produce collisions. 128 bits keeps accidental collision
//! probability negligible (~2⁻⁶⁴ birthday bound at 2³² cached entries),
//! which is why the cache can key on the fingerprint alone without storing
//! the table for verification.

use observatory_table::{Table, Value};

/// FNV-1a 128-bit offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV-1a 128-bit prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// A 128-bit content hash identifying one encode request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// Lowercase hex form (32 chars), for logs and reports.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// The shard index for an `n_shards`-way sharded structure. Uses the
    /// high bits, which FNV mixes well.
    pub fn shard(self, n_shards: usize) -> usize {
        ((self.0 >> 64) as u64 % n_shards as u64) as usize
    }
}

/// Incremental FNV-1a-128 hasher with domain-separated field writers.
#[derive(Debug, Clone)]
pub struct FingerprintHasher {
    state: u128,
}

/// Field tags. Each variable-length field is written as `tag, len, bytes`
/// so field boundaries are unambiguous.
mod tag {
    pub const MODEL: u8 = 0x01;
    pub const TABLE_NAME: u8 = 0x02;
    pub const COLUMN: u8 = 0x03;
    pub const HEADER: u8 = 0x04;
    pub const SEMANTIC: u8 = 0x05;
    pub const SUBJECT: u8 = 0x06;
    pub const SHAPE: u8 = 0x07;
    pub const NULL: u8 = 0x10;
    pub const BOOL: u8 = 0x11;
    pub const INT: u8 = 0x12;
    pub const FLOAT: u8 = 0x13;
    pub const TEXT: u8 = 0x14;
    pub const DATE: u8 = 0x15;
    pub const CONFIG: u8 = 0x20;
}

impl Default for FingerprintHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl FingerprintHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Fold raw bytes into the state.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u128;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Length-prefixed string field under `t`.
    fn write_str(&mut self, t: u8, s: &str) {
        self.write_u8(t);
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    fn write_value(&mut self, v: &Value) {
        match v {
            Value::Null => self.write_u8(tag::NULL),
            Value::Bool(b) => {
                self.write_u8(tag::BOOL);
                self.write_u8(*b as u8);
            }
            Value::Int(i) => {
                self.write_u8(tag::INT);
                self.write(&i.to_le_bytes());
            }
            Value::Float(x) => {
                self.write_u8(tag::FLOAT);
                // Bit pattern, not text: distinguishes -0.0 from 0.0 and
                // every NaN payload, matching "same bits in, same bits out".
                self.write(&x.to_bits().to_le_bytes());
            }
            Value::Text(s) => {
                self.write_u8(tag::TEXT);
                self.write_u64(s.len() as u64);
                self.write(s.as_bytes());
            }
            Value::Date { year, month, day } => {
                self.write_u8(tag::DATE);
                self.write(&year.to_le_bytes());
                self.write(&[*month, *day]);
            }
        }
    }

    /// Finish and return the fingerprint.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

/// Fingerprint one encode request: the named model applied to `table`,
/// with an optional encoder-configuration string (e.g. an auxiliary
/// caption or question that changes serialization).
pub fn fingerprint_request(model: &str, table: &Table, config: Option<&str>) -> Fingerprint {
    let mut h = FingerprintHasher::new();
    h.write_str(tag::MODEL, model);
    h.write_str(tag::TABLE_NAME, &table.name);
    h.write_u8(tag::SHAPE);
    h.write_u64(table.num_rows() as u64);
    h.write_u64(table.num_cols() as u64);
    for col in &table.columns {
        h.write_u8(tag::COLUMN);
        h.write_str(tag::HEADER, &col.header);
        match &col.semantic_type {
            Some(s) => h.write_str(tag::SEMANTIC, s),
            None => h.write_u8(tag::NULL),
        }
        h.write_u8(tag::SUBJECT);
        h.write_u8(col.is_subject as u8);
        for v in &col.values {
            h.write_value(v);
        }
    }
    if let Some(cfg) = config {
        h.write_str(tag::CONFIG, cfg);
    }
    h.finish()
}

/// Fingerprint a plain (model, table) request with no config overrides.
pub fn fingerprint_table(model: &str, table: &Table) -> Fingerprint {
    fingerprint_request(model, table, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use observatory_table::Column;

    fn sample() -> Table {
        Table::from_rows(
            "athletes",
            &["id", "competition"],
            vec![
                vec![Value::Int(1), Value::text("Asian Championships")],
                vec![Value::Int(2), Value::text("World Championships")],
            ],
        )
    }

    #[test]
    fn deterministic() {
        assert_eq!(fingerprint_table("bert", &sample()), fingerprint_table("bert", &sample()));
    }

    #[test]
    fn model_name_separates() {
        assert_ne!(fingerprint_table("bert", &sample()), fingerprint_table("tapas", &sample()));
    }

    #[test]
    fn cell_edit_separates() {
        let mut t = sample();
        t.columns[1].values[0] = Value::text("Asian Games");
        assert_ne!(fingerprint_table("bert", &sample()), fingerprint_table("bert", &t));
    }

    #[test]
    fn header_and_annotations_separate() {
        let mut t = sample();
        t.columns[0].header = "ID".into();
        assert_ne!(fingerprint_table("bert", &sample()), fingerprint_table("bert", &t));
        let mut t = sample();
        t.columns[0].semantic_type = Some("identifier".into());
        assert_ne!(fingerprint_table("bert", &sample()), fingerprint_table("bert", &t));
        let mut t = sample();
        t.columns[0].is_subject = true;
        assert_ne!(fingerprint_table("bert", &sample()), fingerprint_table("bert", &t));
    }

    #[test]
    fn row_and_column_order_are_content() {
        let t = sample();
        let rows_swapped = t.select_rows(&[1, 0]);
        let cols_swapped = t.project(&[1, 0]);
        let fp = fingerprint_table("bert", &t);
        assert_ne!(fp, fingerprint_table("bert", &rows_swapped));
        assert_ne!(fp, fingerprint_table("bert", &cols_swapped));
    }

    #[test]
    fn config_separates() {
        let t = sample();
        assert_ne!(
            fingerprint_request("bert", &t, None),
            fingerprint_request("bert", &t, Some("caption: athletes"))
        );
        assert_ne!(
            fingerprint_request("bert", &t, Some("a")),
            fingerprint_request("bert", &t, Some("b"))
        );
    }

    #[test]
    fn value_types_stay_distinct() {
        // Int(49) vs Text("1") — byte-level ambiguity must not collide.
        let a = Table::new("t", vec![Column::new("c", vec![Value::Int(49)])]);
        let b = Table::new("t", vec![Column::new("c", vec![Value::text("1")])]);
        assert_ne!(fingerprint_table("m", &a), fingerprint_table("m", &b));
        // Float bit pattern: -0.0 and 0.0 differ.
        let x = Table::new("t", vec![Column::new("c", vec![Value::Float(0.0)])]);
        let y = Table::new("t", vec![Column::new("c", vec![Value::Float(-0.0)])]);
        assert_ne!(fingerprint_table("m", &x), fingerprint_table("m", &y));
    }

    #[test]
    fn concatenation_ambiguity() {
        // ("ab", "c") vs ("a", "bc") headers must hash differently.
        let a = Table::new("t", vec![Column::new("ab", vec![]), Column::new("c", vec![])]);
        let b = Table::new("t", vec![Column::new("a", vec![]), Column::new("bc", vec![])]);
        assert_ne!(fingerprint_table("m", &a), fingerprint_table("m", &b));
    }

    #[test]
    fn hex_and_shard() {
        let fp = fingerprint_table("bert", &sample());
        assert_eq!(fp.to_hex().len(), 32);
        assert!(fp.shard(16) < 16);
        assert_eq!(Fingerprint(0).shard(16), 0);
    }
}
