//! Scoped worker pool with ordered, deterministic results.
//!
//! The scheduling core — dynamic self-scheduling over an atomic cursor,
//! results returned **in index order**, borrowed data flowing into
//! workers via `std::thread::scope` — lives in
//! [`observatory_linalg::parallel`], at the bottom of the crate graph,
//! so the transformer's encoder kernels can row-parallelize on the same
//! primitive (the runtime crate sits *above* the transformer and cannot
//! be a dependency of it). This module wraps the primitive with the
//! engine's observability: each spawned worker opens a `pool/worker`
//! span (trace level) parented to the caller's innermost span, and
//! records how many items it processed.
//!
//! Callers observe exactly the output of the serial loop regardless of
//! worker count or scheduling; panics propagate to the caller instead of
//! being lost. Worker threads are flagged thread-locally, which clamps
//! nested kernel parallelism to 1 (see
//! [`observatory_linalg::parallel::current_jobs`]) so a parallel
//! `encode_batch` never oversubscribes the machine with `jobs²` threads.

use observatory_linalg::parallel;
use observatory_obs as obs;

pub use observatory_linalg::parallel::resolve_jobs;

/// Per-worker context: an RAII span that records its item count when the
/// worker exits (dropping the tally emits `items` before the span
/// closes).
struct WorkerSpan {
    span: obs::Span,
    items: usize,
}

impl Drop for WorkerSpan {
    fn drop(&mut self) {
        self.span.record("items", self.items);
    }
}

/// Evaluate `f(0..n)` on up to `jobs` threads; results are returned in
/// index order. `jobs <= 1` (or `n <= 1`) runs inline on the caller's
/// thread with zero spawn overhead (and no worker span).
///
/// # Panics
/// Re-raises the first worker panic.
pub fn run_indexed<T, F>(jobs: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    // The spawning thread's innermost span (e.g. `encode_batch`) becomes
    // the explicit parent of each worker span: workers have their own
    // (empty) span stacks, so the edge cannot come from thread-locals.
    let pool_parent = obs::current_span_id();
    parallel::run_indexed_scoped(
        jobs,
        n,
        |w| WorkerSpan {
            span: obs::span(obs::Level::Trace, "pool", "worker")
                .with_parent(pool_parent)
                .with("worker", w),
            items: 0,
        },
        |ctx, i| {
            ctx.items += 1;
            f(i)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_results_any_job_count() {
        let expect: Vec<usize> = (0..100).map(|i| i * i).collect();
        for jobs in [1, 2, 3, 4, 8, 64] {
            assert_eq!(run_indexed(jobs, 100, |i| i * i), expect, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(run_indexed(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(4, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn skewed_workloads_stay_ordered() {
        // Later indices finish first; ordering must still hold.
        let out = run_indexed(4, 16, |i| {
            std::thread::sleep(std::time::Duration::from_millis((16 - i) as u64));
            i
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn borrows_without_static() {
        let data = vec![10usize, 20, 30];
        let out = run_indexed(2, data.len(), |i| data[i] + 1);
        assert_eq!(out, vec![11, 21, 31]);
    }

    #[test]
    fn resolve_jobs_precedence() {
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert_eq!(resolve_jobs(Some(0)), 1, "clamped to >= 1");
        assert!(resolve_jobs(None) >= 1);
    }

    #[test]
    fn workers_clamp_nested_kernel_jobs() {
        // Inside a pool worker, kernel-level parallelism must collapse
        // to serial so encode_batch never spawns jobs² threads.
        let nested = run_indexed(4, 4, |_| observatory_linalg::parallel::current_jobs());
        assert!(nested.iter().all(|&j| j == 1), "nested jobs clamp to 1: {nested:?}");
    }

    #[test]
    #[should_panic(expected = "panicked")]
    fn worker_panic_propagates() {
        run_indexed(2, 8, |i| {
            if i == 5 {
                panic!("worker boom");
            }
            i
        });
    }
}
