//! Scoped worker pool with ordered, deterministic results.
//!
//! [`run_indexed`] evaluates a pure function over indices `0..n` on up to
//! `jobs` OS threads and returns results **in index order**, so callers
//! observe exactly the output of the serial loop regardless of worker
//! count or scheduling. Work distribution is a single shared atomic
//! cursor (dynamic self-scheduling): threads pull the next index when
//! free, which load-balances the heavily skewed encode costs of real
//! corpora (a 200-row table can cost 50× a 4-row one) without any
//! per-item cost model.
//!
//! Built on `std::thread::scope`, so borrowed data (`&dyn TableEncoder`,
//! `&[Table]`) flows into workers without `'static` bounds or `Arc`
//! plumbing, and panics propagate to the caller instead of being lost.

use observatory_obs as obs;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Resolve a worker count: explicit request > `OBSERVATORY_JOBS` env var >
/// available parallelism (capped at 8 — encode batches rarely scale past
/// that within the default cache budget). Always at least 1.
pub fn resolve_jobs(requested: Option<usize>) -> usize {
    requested
        .or_else(|| std::env::var("OBSERVATORY_JOBS").ok().and_then(|v| v.parse::<usize>().ok()))
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get().min(8)))
        .max(1)
}

/// Evaluate `f(0..n)` on up to `jobs` threads; results are returned in
/// index order. `jobs <= 1` (or `n <= 1`) runs inline on the caller's
/// thread with zero spawn overhead.
///
/// # Panics
/// Re-raises the first worker panic.
pub fn run_indexed<T, F>(jobs: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let workers = jobs.min(n);
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    // The spawning thread's innermost span (e.g. `encode_batch`) becomes
    // the explicit parent of each worker span: workers have their own
    // (empty) span stacks, so the edge cannot come from thread-locals.
    let pool_parent = obs::current_span_id();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || {
                let mut span = obs::span(obs::Level::Trace, "pool", "worker")
                    .with_parent(pool_parent)
                    .with("worker", w);
                let mut items = 0usize;
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // A send can only fail if the receiver is gone, which
                    // means the parent scope is unwinding already.
                    if tx.send((i, f(i))).is_err() {
                        break;
                    }
                    items += 1;
                }
                span.record("items", items);
            });
        }
        drop(tx);
        for (i, v) in rx {
            slots[i] = Some(v);
        }
    });
    slots.into_iter().map(|s| s.expect("every index produced")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_results_any_job_count() {
        let expect: Vec<usize> = (0..100).map(|i| i * i).collect();
        for jobs in [1, 2, 3, 4, 8, 64] {
            assert_eq!(run_indexed(jobs, 100, |i| i * i), expect, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(run_indexed(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(4, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn skewed_workloads_stay_ordered() {
        // Later indices finish first; ordering must still hold.
        let out = run_indexed(4, 16, |i| {
            std::thread::sleep(std::time::Duration::from_millis((16 - i) as u64));
            i
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn borrows_without_static() {
        let data = vec![10usize, 20, 30];
        let out = run_indexed(2, data.len(), |i| data[i] + 1);
        assert_eq!(out, vec![11, 21, 31]);
    }

    #[test]
    fn resolve_jobs_precedence() {
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert_eq!(resolve_jobs(Some(0)), 1, "clamped to >= 1");
        assert!(resolve_jobs(None) >= 1);
    }

    #[test]
    #[should_panic(expected = "panicked")]
    fn worker_panic_propagates() {
        run_indexed(2, 8, |i| {
            if i == 5 {
                panic!("worker boom");
            }
            i
        });
    }
}
