//! Sharded, byte-accounted LRU cache of encoding results.
//!
//! Keys are content [`Fingerprint`]s; values are `Arc<ModelEncoding>` so a
//! hit is a pointer clone, never a matrix copy. The map is split into 16
//! Mutex-striped shards selected by fingerprint high bits: encode workers
//! touching different tables then contend on different locks, and each
//! critical section is a few map operations — the transformer forward pass
//! (milliseconds) always runs *outside* any lock.
//!
//! Capacity is accounted in approximate heap bytes (embedding matrix +
//! provenance + fixed overhead), not entry counts, because encodings vary
//! by >100× in size across corpora. Each shard owns `capacity / n_shards`
//! bytes and evicts its own least-recently-used entries (recency is a
//! monotonically increasing global stamp, refreshed on every hit) until a
//! new entry fits. Values larger than a shard's budget are simply not
//! admitted — callers still get their encoding, it just isn't retained.

use crate::fingerprint::Fingerprint;
use observatory_models::{ModelEncoding, TokenProvenance};
use observatory_obs as obs;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Lock a shard, recovering from poisoning. A worker that panics while
/// holding a shard lock (e.g. an allocation failure mid-insert) must not
/// wedge every later request on that shard — the protected state is a
/// cache, so the worst case after recovery is a stale or missing entry,
/// which the cache's contract (a hit is an optimization, never a
/// correctness requirement) already tolerates. The long-lived server
/// (`observatory serve`) relies on this to survive a panicking handler.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Number of independently locked shards. 16 keeps worst-case contention
/// (jobs ≤ 16) at ~1 waiter per lock while the per-shard maps stay large
/// enough for the stamp-scan eviction to be cheap.
pub const N_SHARDS: usize = 16;

/// Approximate heap footprint of one cached encoding, in bytes.
pub fn encoding_bytes(enc: &ModelEncoding) -> usize {
    std::mem::size_of::<ModelEncoding>()
        + enc.embeddings.rows() * enc.embeddings.cols() * std::mem::size_of::<f64>()
        + enc.provenance.len() * std::mem::size_of::<TokenProvenance>()
        + enc.column_cls.len() * std::mem::size_of::<Option<usize>>()
}

struct Entry {
    value: Arc<ModelEncoding>,
    bytes: usize,
    /// Last-touch stamp; smallest = least recently used.
    stamp: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<u128, Entry>,
    bytes: usize,
}

/// Occupancy of one cache shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardOccupancy {
    /// Live entries in the shard.
    pub entries: usize,
    /// Approximate live bytes in the shard.
    pub bytes: usize,
}

/// Aggregate cache statistics.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that missed (plus lookups while the cache is disabled).
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Live entries.
    pub entries: usize,
    /// Approximate live bytes.
    pub bytes: usize,
    /// Configured capacity in bytes (0 = disabled).
    pub capacity: usize,
    /// Per-shard occupancy, index = shard number ([`N_SHARDS`] entries).
    /// Skew here means fingerprints are clustering (or one shard's
    /// working set is hot) — the signal the Prometheus export exposes
    /// per shard.
    pub shards: Vec<ShardOccupancy>,
    /// Largest total live-byte footprint ever observed (monotone across
    /// `clear`, approximate under concurrency).
    pub high_water_bytes: usize,
    /// Whether a tier-2 persistent store is attached. The LRU itself
    /// never sets the tier-2 fields — `Engine::cache_stats` fills them
    /// from the engine metrics and the attached store, so a bare
    /// `EncodingCache::stats()` always reports them zeroed.
    pub tier2_enabled: bool,
    /// LRU misses answered from the tier-2 (disk) store.
    pub tier2_hits: u64,
    /// Tier-2 consultations that found nothing usable (model ran).
    pub tier2_misses: u64,
    /// Write-throughs persisted to the tier-2 store.
    pub tier2_writes: u64,
    /// Live records addressable in the tier-2 store.
    pub tier2_records: u64,
    /// Tier-2 store generation (rotations + compactions).
    pub tier2_generation: u64,
}

/// Alias used by the observability layer: a frozen cache state.
pub type CacheSnapshot = CacheStats;

impl CacheStats {
    /// Fraction of lookups served from cache (0 when no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Content-addressed encoding cache. Thread-safe; all methods take `&self`.
pub struct EncodingCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard byte budget.
    shard_capacity: usize,
    capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    insertions: AtomicU64,
    /// Total live bytes across shards, maintained incrementally so the
    /// high-water mark can be tracked without locking every shard.
    total_bytes: AtomicU64,
    /// Largest `total_bytes` ever observed.
    high_water: AtomicU64,
}

impl EncodingCache {
    /// A cache holding at most ~`capacity_bytes` of encodings.
    /// `capacity_bytes == 0` disables caching entirely (all lookups miss,
    /// inserts are dropped).
    pub fn new(capacity_bytes: usize) -> Self {
        Self {
            shards: (0..N_SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity: capacity_bytes / N_SHARDS,
            capacity: capacity_bytes,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            total_bytes: AtomicU64::new(0),
            high_water: AtomicU64::new(0),
        }
    }

    /// Whether the cache retains anything at all.
    pub fn enabled(&self) -> bool {
        self.shard_capacity > 0
    }

    fn shard(&self, fp: Fingerprint) -> &Mutex<Shard> {
        &self.shards[fp.shard(N_SHARDS)]
    }

    /// Look up a fingerprint, refreshing its recency on a hit.
    pub fn get(&self, fp: Fingerprint) -> Option<Arc<ModelEncoding>> {
        if !self.enabled() {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = lock_recover(self.shard(fp));
        match shard.map.get_mut(&fp.0) {
            Some(e) => {
                e.stamp = stamp;
                let v = Arc::clone(&e.value);
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert an encoding, evicting least-recently-used entries in the
    /// same shard until it fits. Oversized values (> shard budget) are not
    /// admitted. Re-inserting an existing key refreshes its value.
    pub fn insert(&self, fp: Fingerprint, value: Arc<ModelEncoding>) {
        let bytes = encoding_bytes(&value);
        if !self.enabled() || bytes > self.shard_capacity {
            if self.enabled() {
                obs::event_with(obs::Level::Trace, "cache", "reject_oversized", || {
                    vec![("bytes", bytes.to_string())]
                });
            }
            return;
        }
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut evicted = 0u64;
        let mut freed = 0usize;
        {
            let mut shard = lock_recover(self.shard(fp));
            if let Some(old) = shard.map.remove(&fp.0) {
                shard.bytes -= old.bytes;
                freed += old.bytes;
            }
            while shard.bytes + bytes > self.shard_capacity {
                // Stamp scan: O(entries), but shards stay small (≤ 1/16 of
                // the working set) and eviction is rare relative to hits.
                let lru = shard
                    .map
                    .iter()
                    .min_by_key(|(_, e)| e.stamp)
                    .map(|(k, _)| *k)
                    .expect("non-empty: bytes > 0 implies entries exist");
                let old = shard.map.remove(&lru).unwrap();
                shard.bytes -= old.bytes;
                freed += old.bytes;
                evicted += 1;
            }
            shard.bytes += bytes;
            shard.map.insert(fp.0, Entry { value, bytes, stamp });
        }
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if freed > 0 {
            self.total_bytes.fetch_sub(freed as u64, Ordering::Relaxed);
        }
        let live = self.total_bytes.fetch_add(bytes as u64, Ordering::Relaxed) + bytes as u64;
        self.high_water.fetch_max(live, Ordering::Relaxed);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            obs::event_with(obs::Level::Debug, "cache", "evict", || {
                vec![("count", evicted.to_string()), ("freed_bytes", freed.to_string())]
            });
        }
    }

    /// Drop every entry (counters and the high-water mark are preserved).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = lock_recover(shard);
            s.map.clear();
            s.bytes = 0;
        }
        self.total_bytes.store(0, Ordering::Relaxed);
    }

    /// Current statistics snapshot, including per-shard occupancy and
    /// the high-water byte mark.
    pub fn stats(&self) -> CacheStats {
        let mut entries = 0;
        let mut bytes = 0;
        let mut shards = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let s = lock_recover(shard);
            entries += s.map.len();
            bytes += s.bytes;
            shards.push(ShardOccupancy { entries: s.map.len(), bytes: s.bytes });
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            entries,
            bytes,
            capacity: self.capacity,
            shards,
            high_water_bytes: self.high_water.load(Ordering::Relaxed) as usize,
            tier2_enabled: false,
            tier2_hits: 0,
            tier2_misses: 0,
            tier2_writes: 0,
            tier2_records: 0,
            tier2_generation: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use observatory_linalg::Matrix;
    use observatory_models::{Capabilities, Readout};

    fn encoding(rows: usize, dim: usize) -> Arc<ModelEncoding> {
        Arc::new(ModelEncoding {
            embeddings: Matrix::zeros(rows, dim),
            provenance: vec![TokenProvenance { row: 0, col: 0, special: true }; rows],
            table_cls: Some(0),
            column_cls: vec![],
            rows_encoded: rows,
            cols_encoded: 1,
            column_readout: Readout::MeanPool,
            table_readout: Readout::Cls,
            capabilities: Capabilities::all(),
        })
    }

    fn fp(n: u128) -> Fingerprint {
        // Spread across shards like real fingerprints do.
        Fingerprint((n << 64) | n)
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let cache = EncodingCache::new(1 << 20);
        assert!(cache.get(fp(1)).is_none());
        cache.insert(fp(1), encoding(4, 8));
        let hit = cache.get(fp(1)).expect("hit");
        assert_eq!(hit.rows_encoded, 4);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn lru_eviction_order() {
        // Single-shard capacity sized for exactly two entries.
        let one = encoding_bytes(&encoding(4, 8));
        let cache = EncodingCache::new((2 * one + one / 2) * N_SHARDS);
        // Same shard for all keys: identical high bits.
        let k = |n: u128| Fingerprint(n);
        cache.insert(k(1), encoding(4, 8));
        cache.insert(k(2), encoding(4, 8));
        // Touch 1 so 2 becomes LRU.
        assert!(cache.get(k(1)).is_some());
        cache.insert(k(3), encoding(4, 8));
        assert!(cache.get(k(2)).is_none(), "LRU entry evicted");
        assert!(cache.get(k(1)).is_some(), "recently used survives");
        assert!(cache.get(k(3)).is_some(), "new entry present");
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn byte_accounting_tracks_live_entries() {
        let cache = EncodingCache::new(1 << 24);
        let e = encoding(16, 32);
        let per = encoding_bytes(&e);
        cache.insert(fp(1), Arc::clone(&e));
        cache.insert(fp(2), Arc::clone(&e));
        assert_eq!(cache.stats().bytes, 2 * per);
        assert_eq!(cache.stats().entries, 2);
        // Re-inserting a key must not double-count.
        cache.insert(fp(1), e);
        assert_eq!(cache.stats().bytes, 2 * per);
        cache.clear();
        assert_eq!(cache.stats().bytes, 0);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn oversized_value_not_admitted() {
        let cache = EncodingCache::new(N_SHARDS * 64); // 64 bytes per shard
        cache.insert(fp(1), encoding(64, 64));
        assert!(cache.get(fp(1)).is_none());
        assert_eq!(cache.stats().insertions, 0);
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = EncodingCache::new(0);
        assert!(!cache.enabled());
        cache.insert(fp(1), encoding(4, 8));
        assert!(cache.get(fp(1)).is_none());
        let s = cache.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn per_shard_occupancy_and_high_water() {
        let cache = EncodingCache::new(1 << 24);
        let e = encoding(16, 32);
        let per = encoding_bytes(&e);
        // fp() spreads keys across shards via the high bits.
        cache.insert(fp(1), Arc::clone(&e));
        cache.insert(fp(2), Arc::clone(&e));
        cache.insert(fp(3), Arc::clone(&e));
        let s = cache.stats();
        assert_eq!(s.shards.len(), N_SHARDS);
        let shard_entries: usize = s.shards.iter().map(|sh| sh.entries).sum();
        let shard_bytes: usize = s.shards.iter().map(|sh| sh.bytes).sum();
        assert_eq!(shard_entries, s.entries, "shard occupancies sum to the total");
        assert_eq!(shard_bytes, s.bytes);
        assert_eq!(s.high_water_bytes, 3 * per);
        // Clearing drops live bytes but the high-water mark survives.
        cache.clear();
        let after = cache.stats();
        assert_eq!(after.bytes, 0);
        assert!(after.shards.iter().all(|sh| sh.entries == 0 && sh.bytes == 0));
        assert_eq!(after.high_water_bytes, 3 * per, "high water is monotone");
        // Refilling less than before does not lower the mark.
        cache.insert(fp(9), e);
        assert_eq!(cache.stats().high_water_bytes, 3 * per);
    }

    #[test]
    fn high_water_tracks_peak_not_current_under_eviction() {
        // Capacity for two entries per shard; same-shard keys force
        // eviction, so live bytes never exceed 2×, and the peak equals
        // the pre-eviction maximum.
        let one = encoding_bytes(&encoding(4, 8));
        let cache = EncodingCache::new((2 * one + one / 2) * N_SHARDS);
        let k = |n: u128| Fingerprint(n);
        for n in 1..=4u128 {
            cache.insert(k(n), encoding(4, 8));
        }
        let s = cache.stats();
        assert!(s.evictions >= 2);
        assert_eq!(s.bytes, 2 * one);
        assert_eq!(s.high_water_bytes, 2 * one, "peak live footprint");
    }

    #[test]
    fn survives_poisoned_shard_mutexes() {
        // A thread that panics while holding a shard lock poisons it.
        // Every cache operation must keep working afterwards (the state
        // is a cache; recovery is always safe), or a single panicking
        // handler would wedge the whole server.
        let cache = Arc::new(EncodingCache::new(1 << 20));
        cache.insert(fp(1), encoding(4, 8));
        for i in 0..N_SHARDS {
            let c = Arc::clone(&cache);
            let _ = std::thread::spawn(move || {
                let _guard = c.shards[i].lock().unwrap();
                panic!("poison shard {i}");
            })
            .join();
        }
        // All shards are now poisoned; the cache must still serve.
        assert!(cache.get(fp(1)).is_some(), "pre-poison entry still readable");
        cache.insert(fp(2), encoding(4, 8));
        assert!(cache.get(fp(2)).is_some(), "post-poison insert works");
        let s = cache.stats();
        assert_eq!(s.entries, 2);
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn hit_rate() {
        let cache = EncodingCache::new(1 << 20);
        assert_eq!(cache.stats().hit_rate(), 0.0);
        cache.insert(fp(1), encoding(2, 2));
        cache.get(fp(1));
        cache.get(fp(1));
        cache.get(fp(9));
        let s = cache.stats();
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
