//! Runtime metrics: atomic counters and fixed-bucket latency histograms.
//!
//! Everything on the hot path is lock-free (`AtomicU64` with relaxed
//! ordering — counters need atomicity, not ordering); only the per-model
//! breakdown takes a short mutex, once per *encode*, never per token.
//! [`Metrics::snapshot`] produces an immutable [`MetricsSnapshot`] that the
//! CLI renders as a post-run footer and tests assert invariants against.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Histogram bucket upper bounds in nanoseconds: powers of 4 from 1 µs to
/// ~4.4 min, plus a catch-all. Fixed buckets keep recording allocation-free
/// and snapshots mergeable.
pub const BUCKET_BOUNDS_NS: [u64; 12] = [
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_024_000,
    4_096_000,
    16_384_000,
    65_536_000,
    262_144_000,
    1_048_576_000,
    u64::MAX,
];

/// A fixed-bucket latency histogram.
#[derive(Default)]
pub struct Histogram {
    buckets: [AtomicU64; 12],
    sum_ns: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Record one observation.
    pub fn record(&self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        let idx = BUCKET_BOUNDS_NS.iter().position(|&b| ns <= b).unwrap_or(11);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Immutable copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// Frozen histogram state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Observation count per bucket (bounds in [`BUCKET_BOUNDS_NS`]).
    pub buckets: [u64; 12],
    /// Sum of all observations, ns.
    pub sum_ns: u64,
    /// Total observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Mean observation in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }
}

/// Per-model encode totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ModelStats {
    /// Tables actually encoded (cache misses).
    pub encodes: u64,
    /// Total wall time spent encoding, ns.
    pub encode_ns: u64,
    /// Token embeddings produced (rows of the embedding matrices).
    pub tokens: u64,
}

/// Engine-wide metrics registry. All recording methods take `&self`.
#[derive(Default)]
pub struct Metrics {
    encodes: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    batches: AtomicU64,
    tokens: AtomicU64,
    encode_latency: Histogram,
    per_model: Mutex<BTreeMap<String, ModelStats>>,
}

impl Metrics {
    /// A zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one real encode (a cache miss that ran the model).
    pub fn record_encode(&self, model: &str, elapsed: Duration, tokens: usize) {
        self.encodes.fetch_add(1, Ordering::Relaxed);
        self.tokens.fetch_add(tokens as u64, Ordering::Relaxed);
        self.encode_latency.record(elapsed);
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let mut per_model = self.per_model.lock().unwrap();
        let entry = per_model.entry(model.to_string()).or_default();
        entry.encodes += 1;
        entry.encode_ns += ns;
        entry.tokens += tokens as u64;
    }

    /// Record a cache hit.
    pub fn record_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a cache miss.
    pub fn record_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one `encode_batch` call.
    pub fn record_batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Freeze the current state.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            encodes: self.encodes.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            tokens: self.tokens.load(Ordering::Relaxed),
            encode_latency: self.encode_latency.snapshot(),
            per_model: self.per_model.lock().unwrap().clone(),
        }
    }
}

/// Frozen engine metrics, renderable as a plain-text report.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Tables actually encoded (= cache misses that ran a model).
    pub encodes: u64,
    /// Engine-level cache hits.
    pub cache_hits: u64,
    /// Engine-level cache misses.
    pub cache_misses: u64,
    /// `encode_batch` invocations.
    pub batches: u64,
    /// Token embeddings produced.
    pub tokens: u64,
    /// Latency distribution over real encodes.
    pub encode_latency: HistogramSnapshot,
    /// Per-model totals, sorted by model name.
    pub per_model: BTreeMap<String, ModelStats>,
}

impl MetricsSnapshot {
    /// Total engine lookups (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.cache_hits + self.cache_misses
    }

    /// Cache hit rate over engine lookups (0 when none).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.lookups() as f64
        }
    }

    /// Multi-line plain-text report (the CLI's `-- runtime --` footer).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "encodes: {}  (cache: {} hits / {} misses, {:.1}% hit rate, {} batches)\n",
            self.encodes,
            self.cache_hits,
            self.cache_misses,
            100.0 * self.hit_rate(),
            self.batches,
        ));
        out.push_str(&format!(
            "tokens embedded: {}   mean encode: {}\n",
            self.tokens,
            fmt_ns(self.encode_latency.mean_ns()),
        ));
        for (name, m) in &self.per_model {
            let mean = if m.encodes == 0 { 0.0 } else { m.encode_ns as f64 / m.encodes as f64 };
            out.push_str(&format!(
                "  {name:<12} {:>6} encodes  {:>10} tokens  mean {}\n",
                m.encodes,
                m.tokens,
                fmt_ns(mean),
            ));
        }
        out
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.1} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_mean() {
        let h = Histogram::default();
        h.record(Duration::from_nanos(500)); // bucket 0
        h.record(Duration::from_micros(10)); // 16µs bucket
        h.record(Duration::from_millis(2)); // 4.096ms bucket
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets.iter().sum::<u64>(), 3);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[2], 1);
        assert_eq!(s.buckets[6], 1);
        assert!((s.mean_ns() - (500.0 + 10_000.0 + 2_000_000.0) / 3.0).abs() < 1e-6);
    }

    #[test]
    fn bounds_are_sorted() {
        assert!(BUCKET_BOUNDS_NS.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn snapshot_invariants() {
        let m = Metrics::new();
        m.record_miss();
        m.record_encode("bert", Duration::from_micros(100), 64);
        m.record_miss();
        m.record_encode("tapas", Duration::from_micros(200), 32);
        m.record_hit();
        m.record_batch();
        let s = m.snapshot();
        assert_eq!(s.lookups(), s.cache_hits + s.cache_misses);
        assert_eq!(s.encodes, s.cache_misses, "every miss ran exactly one encode");
        assert_eq!(s.encode_latency.count, s.encodes);
        assert_eq!(s.tokens, 96);
        assert_eq!(s.per_model.len(), 2);
        assert_eq!(s.per_model["bert"].encodes, 1);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn render_mentions_models() {
        let m = Metrics::new();
        m.record_encode("bert", Duration::from_micros(5), 10);
        let text = m.snapshot().render();
        assert!(text.contains("bert"));
        assert!(text.contains("hit rate"));
    }

    #[test]
    fn empty_snapshot_is_safe() {
        let s = Metrics::new().snapshot();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.encode_latency.mean_ns(), 0.0);
        assert!(!s.render().is_empty());
    }

    #[test]
    fn ns_formatting() {
        assert!(fmt_ns(10.0).ends_with("ns"));
        assert!(fmt_ns(10_000.0).ends_with("µs"));
        assert!(fmt_ns(10_000_000.0).ends_with("ms"));
        assert!(fmt_ns(10_000_000_000.0).ends_with(" s"));
    }
}
