//! Runtime metrics: atomic counters and fixed-bucket latency histograms.
//!
//! Everything on the hot path is lock-free (`AtomicU64` with relaxed
//! ordering — counters need atomicity, not ordering); only the per-model
//! breakdown takes a short mutex, once per *encode*, never per token.
//! [`Metrics::snapshot`] produces an immutable [`MetricsSnapshot`] that the
//! CLI renders as a post-run footer and tests assert invariants against.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Histogram bucket upper bounds in nanoseconds: powers of 4 from 1 µs to
/// ~4.4 min, plus a catch-all. Fixed buckets keep recording allocation-free
/// and snapshots mergeable.
pub const BUCKET_BOUNDS_NS: [u64; 12] = [
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_024_000,
    4_096_000,
    16_384_000,
    65_536_000,
    262_144_000,
    1_048_576_000,
    u64::MAX,
];

/// A fixed-bucket latency histogram.
#[derive(Default)]
pub struct Histogram {
    buckets: [AtomicU64; 12],
    sum_ns: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Record one observation.
    ///
    /// `sum_ns` accumulation is **saturating**: a pathological duration
    /// stream (e.g. repeated `Duration::MAX` observations from a clock
    /// glitch) pins the sum at `u64::MAX` instead of wrapping to a small
    /// number, which would silently corrupt every derived mean.
    pub fn record(&self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        let idx = BUCKET_BOUNDS_NS.iter().position(|&b| ns <= b).unwrap_or(11);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        let _ = self
            .sum_ns
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| Some(cur.saturating_add(ns)));
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Immutable copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// Frozen histogram state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Observation count per bucket (bounds in [`BUCKET_BOUNDS_NS`]).
    pub buckets: [u64; 12],
    /// Sum of all observations, ns.
    pub sum_ns: u64,
    /// Total observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Mean observation in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Fold another snapshot into this one. Bucket counts and the total
    /// count add; `sum_ns` saturates like [`Histogram::record`] does.
    /// Merging is how per-engine histograms aggregate across processes
    /// or bench shards.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b = b.saturating_add(*o);
        }
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.count = self.count.saturating_add(other.count);
    }

    /// Estimate the `q`-quantile (`q ∈ [0, 1]`, clamped) in nanoseconds
    /// from the fixed buckets, interpolating linearly inside the bucket
    /// that contains the target rank. The catch-all bucket has no upper
    /// bound, so ranks landing there return its lower bound — a
    /// deliberate under-estimate rather than a fabricated tail. Empty
    /// histograms return 0.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cumulative = 0u64;
        let mut lower = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            let upper = BUCKET_BOUNDS_NS[i];
            if n > 0 {
                let before = cumulative as f64;
                cumulative += n;
                if cumulative as f64 >= target {
                    if upper == u64::MAX {
                        return lower as f64;
                    }
                    let frac = ((target - before) / n as f64).clamp(0.0, 1.0);
                    return lower as f64 + frac * (upper - lower) as f64;
                }
            }
            if upper != u64::MAX {
                lower = upper;
            }
        }
        lower as f64
    }

    /// Convenience accessors for the standard latency quantiles.
    pub fn p50_ns(&self) -> f64 {
        self.percentile(0.50)
    }

    /// 95th percentile estimate, ns.
    pub fn p95_ns(&self) -> f64 {
        self.percentile(0.95)
    }

    /// 99th percentile estimate, ns.
    pub fn p99_ns(&self) -> f64 {
        self.percentile(0.99)
    }
}

/// Per-model encode totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ModelStats {
    /// Tables actually encoded (cache misses).
    pub encodes: u64,
    /// Total wall time spent encoding, ns.
    pub encode_ns: u64,
    /// Token embeddings produced (rows of the embedding matrices).
    pub tokens: u64,
}

/// Engine-wide metrics registry. All recording methods take `&self`.
#[derive(Default)]
pub struct Metrics {
    encodes: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    batches: AtomicU64,
    tokens: AtomicU64,
    tier2_hits: AtomicU64,
    tier2_misses: AtomicU64,
    tier2_writes: AtomicU64,
    encode_latency: Histogram,
    per_model: Mutex<BTreeMap<String, ModelStats>>,
}

impl Metrics {
    /// A zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one real encode (a cache miss that ran the model).
    pub fn record_encode(&self, model: &str, elapsed: Duration, tokens: usize) {
        self.encodes.fetch_add(1, Ordering::Relaxed);
        self.tokens.fetch_add(tokens as u64, Ordering::Relaxed);
        self.encode_latency.record(elapsed);
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        // Recover from poisoning: the map only accumulates counters, so a
        // panic mid-update at worst loses one increment — far better than
        // wedging every later encode in a long-lived server.
        let mut per_model = self.per_model.lock().unwrap_or_else(|e| e.into_inner());
        let entry = per_model.entry(model.to_string()).or_default();
        entry.encodes += 1;
        entry.encode_ns += ns;
        entry.tokens += tokens as u64;
    }

    /// Record a cache hit.
    pub fn record_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a cache miss.
    pub fn record_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one `encode_batch` call.
    pub fn record_batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a tier-2 (persistent store) hit: an LRU miss that was
    /// answered from disk without running a model.
    pub fn record_tier2_hit(&self) {
        self.tier2_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a tier-2 miss: the store was consulted and had nothing
    /// usable, so the model ran.
    pub fn record_tier2_miss(&self) {
        self.tier2_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one write-through to the tier-2 store after an encode.
    pub fn record_tier2_write(&self) {
        self.tier2_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Freeze the current state.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            encodes: self.encodes.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            tokens: self.tokens.load(Ordering::Relaxed),
            tier2_hits: self.tier2_hits.load(Ordering::Relaxed),
            tier2_misses: self.tier2_misses.load(Ordering::Relaxed),
            tier2_writes: self.tier2_writes.load(Ordering::Relaxed),
            encode_latency: self.encode_latency.snapshot(),
            per_model: self.per_model.lock().unwrap_or_else(|e| e.into_inner()).clone(),
        }
    }
}

/// Frozen engine metrics, renderable as a plain-text report.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Tables actually encoded (= cache misses that ran a model).
    pub encodes: u64,
    /// Engine-level cache hits.
    pub cache_hits: u64,
    /// Engine-level cache misses.
    pub cache_misses: u64,
    /// `encode_batch` invocations.
    pub batches: u64,
    /// Token embeddings produced.
    pub tokens: u64,
    /// LRU misses answered from the persistent store (no model run).
    /// With a store attached, `encodes == cache_misses - tier2_hits`;
    /// without one, all three tier-2 counters stay 0 and the old
    /// `encodes == cache_misses` invariant holds.
    pub tier2_hits: u64,
    /// Store consultations that found nothing usable.
    pub tier2_misses: u64,
    /// Write-throughs to the persistent store after encodes.
    pub tier2_writes: u64,
    /// Latency distribution over real encodes.
    pub encode_latency: HistogramSnapshot,
    /// Per-model totals, sorted by model name.
    pub per_model: BTreeMap<String, ModelStats>,
}

impl MetricsSnapshot {
    /// Total engine lookups (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.cache_hits + self.cache_misses
    }

    /// Cache hit rate over engine lookups (0 when none).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.lookups() as f64
        }
    }

    /// Multi-line plain-text report (the CLI's `-- runtime --` footer).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "encodes: {}  (cache: {} hits / {} misses, {:.1}% hit rate, {} batches)\n",
            self.encodes,
            self.cache_hits,
            self.cache_misses,
            100.0 * self.hit_rate(),
            self.batches,
        ));
        if self.tier2_hits + self.tier2_misses + self.tier2_writes > 0 {
            let lookups = self.tier2_hits + self.tier2_misses;
            let rate =
                if lookups == 0 { 0.0 } else { 100.0 * self.tier2_hits as f64 / lookups as f64 };
            out.push_str(&format!(
                "store:   {} hits / {} misses ({rate:.1}% tier-2 hit rate), {} writes\n",
                self.tier2_hits, self.tier2_misses, self.tier2_writes,
            ));
        }
        out.push_str(&format!(
            "tokens embedded: {}   mean encode: {}   p50/p95/p99: {} / {} / {}\n",
            self.tokens,
            fmt_ns(self.encode_latency.mean_ns()),
            fmt_ns(self.encode_latency.p50_ns()),
            fmt_ns(self.encode_latency.p95_ns()),
            fmt_ns(self.encode_latency.p99_ns()),
        ));
        for (name, m) in &self.per_model {
            let mean = if m.encodes == 0 { 0.0 } else { m.encode_ns as f64 / m.encodes as f64 };
            out.push_str(&format!(
                "  {name:<12} {:>6} encodes  {:>10} tokens  mean {}\n",
                m.encodes,
                m.tokens,
                fmt_ns(mean),
            ));
        }
        out
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.1} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_mean() {
        let h = Histogram::default();
        h.record(Duration::from_nanos(500)); // bucket 0
        h.record(Duration::from_micros(10)); // 16µs bucket
        h.record(Duration::from_millis(2)); // 4.096ms bucket
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets.iter().sum::<u64>(), 3);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[2], 1);
        assert_eq!(s.buckets[6], 1);
        assert!((s.mean_ns() - (500.0 + 10_000.0 + 2_000_000.0) / 3.0).abs() < 1e-6);
    }

    #[test]
    fn bounds_are_sorted() {
        assert!(BUCKET_BOUNDS_NS.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn percentile_empty_is_zero() {
        let s = HistogramSnapshot::default();
        assert_eq!(s.percentile(0.5), 0.0);
        assert_eq!(s.p99_ns(), 0.0);
    }

    #[test]
    fn percentile_single_bucket_interpolates_within_bounds() {
        // 100 observations all in the 4µs..16µs bucket (index 2).
        let mut s = HistogramSnapshot::default();
        s.buckets[2] = 100;
        s.count = 100;
        s.sum_ns = 100 * 10_000;
        for q in [0.0, 0.25, 0.5, 0.95, 1.0] {
            let p = s.percentile(q);
            assert!((4_000.0..=16_000.0).contains(&p), "q={q}: {p} outside the bucket's bounds");
        }
        // Interpolation is monotone in q.
        assert!(s.percentile(0.2) < s.percentile(0.8));
        // Median of a uniform fill sits at the bucket midpoint.
        assert!((s.percentile(0.5) - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn percentile_across_buckets() {
        // 90 fast (≤1µs), 10 slow (1.024ms..4.096ms bucket).
        let mut s = HistogramSnapshot::default();
        s.buckets[0] = 90;
        s.buckets[6] = 10;
        s.count = 100;
        assert!(s.p50_ns() <= 1_000.0, "median in the fast bucket");
        assert!(s.p95_ns() >= 1_024_000.0, "p95 in the slow bucket");
        assert!(s.p95_ns() <= 4_096_000.0);
        assert!(s.p99_ns() >= s.p95_ns(), "quantiles are monotone");
    }

    #[test]
    fn percentile_catch_all_returns_lower_bound() {
        // All mass in the unbounded catch-all bucket: the estimate must
        // be its (finite) lower bound, not an invented upper bound.
        let mut s = HistogramSnapshot::default();
        s.buckets[11] = 5;
        s.count = 5;
        assert_eq!(s.percentile(0.5), BUCKET_BOUNDS_NS[10] as f64);
        assert_eq!(s.percentile(1.0), BUCKET_BOUNDS_NS[10] as f64);
    }

    /// Bounds of the bucket range covering all observations: lower bound
    /// of the first non-empty bucket, upper bound of the last (the
    /// catch-all's "upper" is its finite lower bound, matching the
    /// documented under-estimate).
    fn observed_bounds(s: &HistogramSnapshot) -> (f64, f64) {
        let first = s.buckets.iter().position(|&n| n > 0).expect("non-empty");
        let last = s.buckets.iter().rposition(|&n| n > 0).expect("non-empty");
        let lower = if first == 0 { 0.0 } else { BUCKET_BOUNDS_NS[first - 1] as f64 };
        let upper = BUCKET_BOUNDS_NS[if last == 11 { 10 } else { last }] as f64;
        (lower, upper)
    }

    #[test]
    fn percentile_boundary_quantiles_stay_in_observed_buckets() {
        // q = 0.0 and q = 1.0 are the degenerate ranks; both must land
        // inside the observed bucket range, never below the smallest
        // non-empty bucket's lower bound or past the largest's upper.
        let h = Histogram::default();
        for us in [2u64, 2, 9, 30, 900] {
            h.record(Duration::from_micros(us));
        }
        let s = h.snapshot();
        let (lo, hi) = observed_bounds(&s);
        let p0 = s.percentile(0.0);
        let p1 = s.percentile(1.0);
        assert!((lo..=hi).contains(&p0), "q=0.0: {p0} outside [{lo}, {hi}]");
        assert!((lo..=hi).contains(&p1), "q=1.0: {p1} outside [{lo}, {hi}]");
        assert!(p0 <= p1, "boundary quantiles are ordered");
        // q=0 stays at or below the median, q=1 at or above.
        assert!(p0 <= s.p50_ns() && s.p50_ns() <= p1);
    }

    #[test]
    fn percentile_boundaries_single_observation() {
        let h = Histogram::default();
        h.record(Duration::from_micros(10)); // 4µs..16µs bucket
        let s = h.snapshot();
        let (lo, hi) = observed_bounds(&s);
        assert_eq!((lo, hi), (4_000.0, 16_000.0));
        for q in [0.0, 1.0] {
            let p = s.percentile(q);
            assert!((lo..=hi).contains(&p), "q={q}: {p} outside the only bucket");
        }
    }

    #[test]
    fn percentile_boundaries_after_merge() {
        // Merging disjoint-bucket snapshots must keep boundary quantiles
        // inside the union's observed bounds: q=0 in the fast source's
        // range, q=1 in the slow source's.
        let fast = Histogram::default();
        for _ in 0..50 {
            fast.record(Duration::from_nanos(700)); // bucket 0
        }
        let slow = Histogram::default();
        for _ in 0..50 {
            slow.record(Duration::from_millis(100)); // 65.5ms..262ms bucket
        }
        let mut merged = fast.snapshot();
        merged.merge(&slow.snapshot());
        assert_eq!(merged.count, 100);
        let (lo, hi) = observed_bounds(&merged);
        assert_eq!((lo, hi), (0.0, 262_144_000.0));
        let p0 = merged.percentile(0.0);
        let p1 = merged.percentile(1.0);
        assert!((0.0..=1_000.0).contains(&p0), "q=0.0 must sit in the fast bucket: {p0}");
        assert!(
            (65_536_000.0..=262_144_000.0).contains(&p1),
            "q=1.0 must sit in the slow bucket: {p1}"
        );
        // Interior quantiles stay within the union too.
        for q in [0.25, 0.5, 0.75, 0.95] {
            let p = merged.percentile(q);
            assert!((lo..=hi).contains(&p), "q={q}: {p} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn percentile_clamps_q() {
        let mut s = HistogramSnapshot::default();
        s.buckets[0] = 4;
        s.count = 4;
        assert_eq!(s.percentile(-3.0), s.percentile(0.0));
        assert_eq!(s.percentile(7.0), s.percentile(1.0));
    }

    #[test]
    fn merge_adds_everything() {
        let a_src = Histogram::default();
        a_src.record(Duration::from_nanos(500));
        a_src.record(Duration::from_micros(10));
        let b_src = Histogram::default();
        b_src.record(Duration::from_micros(10));
        b_src.record(Duration::from_millis(2));
        let mut a = a_src.snapshot();
        let b = b_src.snapshot();
        a.merge(&b);
        assert_eq!(a.count, 4);
        assert_eq!(a.buckets.iter().sum::<u64>(), 4);
        assert_eq!(a.buckets[2], 2, "shared bucket adds");
        assert_eq!(a.sum_ns, 500 + 10_000 + 10_000 + 2_000_000);
        // Merging an empty snapshot is the identity.
        let before = a.clone();
        a.merge(&HistogramSnapshot::default());
        assert_eq!(a, before);
        // Merging *into* an empty snapshot copies.
        let mut empty = HistogramSnapshot::default();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn merge_saturates_sum() {
        let mut a = HistogramSnapshot { buckets: [0; 12], sum_ns: u64::MAX - 10, count: 1 };
        a.buckets[11] = 1;
        let mut b = HistogramSnapshot { buckets: [0; 12], sum_ns: 1_000, count: 1 };
        b.buckets[11] = 1;
        a.merge(&b);
        assert_eq!(a.sum_ns, u64::MAX, "saturates instead of wrapping");
        assert_eq!(a.count, 2);
    }

    #[test]
    fn record_saturates_instead_of_wrapping() {
        // Pathological durations: two near-u64::MAX observations would
        // wrap `sum_ns` to a tiny value with wrapping arithmetic; the
        // accumulator must saturate instead.
        let h = Histogram::default();
        h.record(Duration::MAX);
        h.record(Duration::MAX);
        h.record(Duration::from_micros(3));
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum_ns, u64::MAX, "pinned at the ceiling, not wrapped");
        // Invariant: the sum is never less than count × the lower bound
        // of the smallest non-empty bucket (impossible under wrapping).
        let min_bucket_lower = s
            .buckets
            .iter()
            .position(|&n| n > 0)
            .map(|i| if i == 0 { 0 } else { BUCKET_BOUNDS_NS[i - 1] })
            .unwrap();
        assert!(
            s.sum_ns >= s.count.saturating_mul(min_bucket_lower),
            "sum_ns {} < count {} × min bucket lower bound {}",
            s.sum_ns,
            s.count,
            min_bucket_lower
        );
    }

    #[test]
    fn sum_invariant_holds_on_normal_workloads() {
        let h = Histogram::default();
        for us in [5u64, 50, 500, 5_000, 50_000] {
            h.record(Duration::from_micros(us));
        }
        let s = h.snapshot();
        let min_bucket_lower = s
            .buckets
            .iter()
            .position(|&n| n > 0)
            .map(|i| if i == 0 { 0 } else { BUCKET_BOUNDS_NS[i - 1] })
            .unwrap();
        assert!(s.sum_ns >= s.count * min_bucket_lower);
        assert_eq!(s.sum_ns, 5_000 + 50_000 + 500_000 + 5_000_000 + 50_000_000);
    }

    #[test]
    fn snapshot_invariants() {
        let m = Metrics::new();
        m.record_miss();
        m.record_encode("bert", Duration::from_micros(100), 64);
        m.record_miss();
        m.record_encode("tapas", Duration::from_micros(200), 32);
        m.record_hit();
        m.record_batch();
        let s = m.snapshot();
        assert_eq!(s.lookups(), s.cache_hits + s.cache_misses);
        assert_eq!(s.encodes, s.cache_misses, "every miss ran exactly one encode");
        assert_eq!(s.encode_latency.count, s.encodes);
        assert_eq!(s.tokens, 96);
        assert_eq!(s.per_model.len(), 2);
        assert_eq!(s.per_model["bert"].encodes, 1);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn render_mentions_models() {
        let m = Metrics::new();
        m.record_encode("bert", Duration::from_micros(5), 10);
        let text = m.snapshot().render();
        assert!(text.contains("bert"));
        assert!(text.contains("hit rate"));
    }

    #[test]
    fn empty_snapshot_is_safe() {
        let s = Metrics::new().snapshot();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.encode_latency.mean_ns(), 0.0);
        assert!(!s.render().is_empty());
    }

    #[test]
    fn ns_formatting() {
        assert!(fmt_ns(10.0).ends_with("ns"));
        assert!(fmt_ns(10_000.0).ends_with("µs"));
        assert!(fmt_ns(10_000_000.0).ends_with("ms"));
        assert!(fmt_ns(10_000_000_000.0).ends_with(" s"));
    }
}
