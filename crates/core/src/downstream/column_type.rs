//! Column-type prediction under row permutation (paper §6, P1/P2
//! connection).
//!
//! The paper samples 1000 WikiTables, predicts semantic column types with
//! DODUO over ≤1000 row permutations each, and counts how many predictions
//! change relative to the original order (34.0% of permuted tables flip at
//! least one type, 12.8% at least two, 5.4% at least three). We reproduce
//! the experiment with a nearest-centroid classifier over column
//! embeddings: the classifier itself is deterministic, so prediction flips
//! are caused purely by embedding sensitivity to row order — the property
//! being connected.

use crate::framework::EvalContext;
use observatory_data::sotab::{typed_column, SemanticType};
use observatory_linalg::vector::cosine;
use observatory_linalg::SplitMix64;
use observatory_models::TableEncoder;
use observatory_obs as obs;
use observatory_table::perm::{permute_rows, sample_permutations};
use observatory_table::Table;

/// A nearest-centroid semantic column-type classifier.
pub struct ColumnTypeClassifier {
    centroids: Vec<(&'static str, Vec<f64>)>,
}

impl ColumnTypeClassifier {
    /// Train on synthetic typed columns: `examples_per_type` single-column
    /// embeddings per semantic type, averaged into a centroid.
    pub fn train(model: &dyn TableEncoder, examples_per_type: usize, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut centroids = Vec::new();
        for ty in SemanticType::ALL {
            let mut embs = Vec::new();
            for _ in 0..examples_per_type {
                let col = typed_column(&mut rng, ty, 8);
                let t = Table::new("train", vec![col]);
                if let Some(e) = observatory_runtime::global().encode_table(model, &t).column(0) {
                    embs.push(e);
                }
            }
            if !embs.is_empty() {
                centroids.push((ty.label(), observatory_linalg::vector::mean(&embs)));
            }
        }
        Self { centroids }
    }

    /// Number of trained classes.
    pub fn num_classes(&self) -> usize {
        self.centroids.len()
    }

    /// Predict the type of an embedded column (nearest centroid by cosine).
    pub fn predict_embedding(&self, embedding: &[f64]) -> &'static str {
        self.centroids
            .iter()
            .max_by(|a, b| cosine(&a.1, embedding).total_cmp(&cosine(&b.1, embedding)))
            .map(|(label, _)| *label)
            .expect("classifier has at least one centroid")
    }

    /// Predict types for every column of a table (contextual embeddings,
    /// as DODUO does). Columns without embeddings predict `"?"`.
    pub fn predict_table(&self, model: &dyn TableEncoder, table: &Table) -> Vec<&'static str> {
        let enc = observatory_runtime::global().encode_table(model, table);
        self.predict_encoding(&enc, table.num_cols())
    }

    /// Predict types for every column of an already-encoded table.
    pub fn predict_encoding(
        &self,
        enc: &observatory_models::ModelEncoding,
        num_cols: usize,
    ) -> Vec<&'static str> {
        (0..num_cols).map(|j| enc.column(j).map_or("?", |e| self.predict_embedding(&e))).collect()
    }
}

/// Flip-rate statistics across permuted tables (the paper's three rows).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlipStats {
    /// Fraction of permuted tables with ≥ 1 changed prediction.
    pub at_least_1: f64,
    /// Fraction with ≥ 2 changed predictions.
    pub at_least_2: f64,
    /// Fraction with ≥ 3 changed predictions.
    pub at_least_3: f64,
    /// Mean number of columns per table.
    pub mean_columns: f64,
    /// Total permuted tables evaluated.
    pub permutations: usize,
}

/// Run the flip experiment: predict types for the original order and for
/// up to `max_permutations − 1` shuffled variants per table; count changed
/// predictions per variant.
pub fn prediction_flip_experiment(
    model: &dyn TableEncoder,
    classifier: &ColumnTypeClassifier,
    corpus: &[Table],
    max_permutations: usize,
    ctx: &EvalContext,
) -> FlipStats {
    let _span = obs::span(obs::Level::Info, "downstream", "column_type_flips")
        .with("model", model.name())
        .with("tables", corpus.len());
    let mut counts = [0usize; 3];
    let mut total = 0usize;
    let mut col_sum = 0usize;
    for (t_idx, table) in corpus.iter().enumerate() {
        col_sum += table.num_cols();
        let base = classifier.predict_table(model, table);
        let perms =
            sample_permutations(table.num_rows(), max_permutations, ctx.seed ^ t_idx as u64);
        let variants: Vec<Table> = perms.iter().skip(1).map(|p| permute_rows(table, p)).collect();
        for enc in ctx.engine.encode_batch(model, &variants) {
            let pred = classifier.predict_encoding(&enc, table.num_cols());
            let changed = base.iter().zip(&pred).filter(|(a, b)| a != b).count();
            total += 1;
            for (i, c) in counts.iter_mut().enumerate() {
                if changed > i {
                    *c += 1;
                }
            }
        }
    }
    let frac = |c: usize| if total == 0 { 0.0 } else { c as f64 / total as f64 };
    FlipStats {
        at_least_1: frac(counts[0]),
        at_least_2: frac(counts[1]),
        at_least_3: frac(counts[2]),
        mean_columns: if corpus.is_empty() { 0.0 } else { col_sum as f64 / corpus.len() as f64 },
        permutations: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use observatory_data::wikitables::WikiTablesConfig;
    use observatory_models::registry::model_by_name;

    #[test]
    fn classifier_trains_all_types() {
        let model = model_by_name("doduo").unwrap();
        let clf = ColumnTypeClassifier::train(model.as_ref(), 2, 1);
        assert_eq!(clf.num_classes(), 20);
    }

    #[test]
    fn classifier_is_consistent_on_training_like_data() {
        // A fresh typed column should usually classify as its own type;
        // assert clearly-above-chance accuracy (chance = 1/20).
        let model = model_by_name("doduo").unwrap();
        let clf = ColumnTypeClassifier::train(model.as_ref(), 4, 1);
        let mut rng = SplitMix64::new(99);
        let mut correct = 0;
        let mut total = 0;
        for ty in SemanticType::ALL {
            for _ in 0..3 {
                let col = typed_column(&mut rng, ty, 8);
                let t = Table::new("test", vec![col]);
                let e = model.column_embedding(&t, 0).unwrap();
                if clf.predict_embedding(&e) == ty.label() {
                    correct += 1;
                }
                total += 1;
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.3, "accuracy {acc} not above chance");
    }

    #[test]
    fn flip_experiment_counts_monotone() {
        let model = model_by_name("doduo").unwrap();
        let clf = ColumnTypeClassifier::train(model.as_ref(), 2, 1);
        let corpus =
            WikiTablesConfig { num_tables: 3, min_rows: 5, max_rows: 6, seed: 8 }.generate();
        let stats =
            prediction_flip_experiment(model.as_ref(), &clf, &corpus, 6, &EvalContext::default());
        assert!(stats.permutations > 0);
        assert!(stats.at_least_1 >= stats.at_least_2);
        assert!(stats.at_least_2 >= stats.at_least_3);
        assert!((0.0..=1.0).contains(&stats.at_least_1));
        assert!(stats.mean_columns > 3.0);
    }

    #[test]
    fn row_order_sensitivity_drives_prediction_flips() {
        // The §6 causal chain: row-order-sensitive embeddings (P1) ⇒
        // unstable type predictions under row permutation. The cleanest
        // contrast in the zoo is RoBERTa (hot absolute positions, the most
        // permutation-sensitive model in our P1 runs) vs T5 (no absolute
        // positions; mean-pooled columns barely move under row shuffles).
        let corpus =
            WikiTablesConfig { num_tables: 5, min_rows: 6, max_rows: 8, seed: 8 }.generate();
        let ctx = EvalContext::default();
        let run = |name: &str| {
            let model = model_by_name(name).unwrap();
            let clf = ColumnTypeClassifier::train(model.as_ref(), 2, 1);
            prediction_flip_experiment(model.as_ref(), &clf, &corpus, 8, &ctx).at_least_1
        };
        let roberta = run("roberta");
        let t5 = run("t5");
        assert!(roberta > t5, "roberta flip rate {roberta:.3} should exceed t5's {t5:.3}");
    }
}
