//! Data imputation under functional dependencies (paper §6, the P4
//! "Additional Connection"): *"Not preserving functional dependencies →
//! Data imputation: imputed values may not maintain functional
//! dependencies between attributes."*
//!
//! The experiment: hide dependent-attribute cells of an FD `X → Y`, impute
//! each by copying the `Y` value of the row whose determinant-cell
//! embedding is nearest, and measure (a) imputation accuracy and (b) the
//! FD-violation rate of the imputed relation. A model that encoded the
//! dependency faithfully would impute rows with *equal determinant values*
//! identically — violations are direct downstream damage from the P4
//! finding.

use crate::framework::EvalContext;
use observatory_fd::discovery::{discover_unary_fds, DiscoveryOptions};
use observatory_linalg::vector::cosine;
use observatory_linalg::SplitMix64;
use observatory_models::TableEncoder;
use observatory_obs as obs;
use observatory_table::Table;
use std::collections::HashMap;

/// Result of the imputation experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImputationResult {
    /// Fraction of hidden cells imputed with the correct value.
    pub accuracy: f64,
    /// Fraction of imputed cells that end up in a violated FD group of the
    /// *imputed relation*: after all imputations, their determinant value
    /// maps to more than one dependent value (conflicts with visible rows
    /// or with other imputed cells both count).
    pub fd_violation_rate: f64,
    /// Number of imputed cells.
    pub imputed: usize,
}

/// Run nearest-determinant imputation over every mined FD of every table,
/// hiding `mask_fraction` of the dependent cells.
pub fn impute_with_embeddings(
    model: &dyn TableEncoder,
    corpus: &[Table],
    mask_fraction: f64,
    ctx: &EvalContext,
) -> Option<ImputationResult> {
    let _span = obs::span(obs::Level::Info, "downstream", "imputation")
        .with("model", model.name())
        .with("tables", corpus.len());
    let mut rng = SplitMix64::new(ctx.seed ^ 0x1377);
    let mut correct = 0usize;
    let mut violations = 0usize;
    let mut total = 0usize;
    for table in corpus {
        let fds = discover_unary_fds(table, DiscoveryOptions::default());
        if fds.is_empty() {
            continue;
        }
        let enc = ctx.engine.encode_table(model, table);
        let rows = enc.rows_encoded.min(table.num_rows());
        if rows < 3 {
            continue;
        }
        for fd in &fds {
            // Determinant-cell embeddings for all in-budget rows.
            let cells: Vec<Option<Vec<f64>>> =
                (0..rows).map(|r| enc.cell(r, fd.determinant)).collect();
            if cells.iter().any(Option::is_none) {
                continue;
            }
            let k = ((rows as f64) * mask_fraction).ceil() as usize;
            let hidden = rng.sample_indices(rows, k.clamp(1, rows - 1));
            // Phase 1: impute every hidden cell from its nearest *visible*
            // determinant cell.
            let mut imputed_values: Vec<(usize, String)> = Vec::new();
            for &h in &hidden {
                let eh = cells[h].as_ref().expect("checked above");
                let donor =
                    (0..rows).filter(|r| *r != h && !hidden.contains(r)).max_by(|&a, &b| {
                        let ca = cosine(eh, cells[a].as_ref().expect("checked"));
                        let cb = cosine(eh, cells[b].as_ref().expect("checked"));
                        ca.total_cmp(&cb)
                    });
                let Some(donor) = donor else { continue };
                let imputed = &table.columns[fd.dependent].values[donor];
                let truth = &table.columns[fd.dependent].values[h];
                total += 1;
                if imputed.group_key() == truth.group_key() {
                    correct += 1;
                }
                imputed_values.push((h, imputed.group_key()));
            }
            // Phase 2: verify the FD over the *imputed relation*. Group
            // every row's (determinant → dependent) with imputations
            // substituted in; an imputed cell in a conflicted group is a
            // violation.
            let dependent_of = |r: usize| -> String {
                imputed_values
                    .iter()
                    .find(|(h, _)| *h == r)
                    .map(|(_, v)| v.clone())
                    .unwrap_or_else(|| table.columns[fd.dependent].values[r].group_key())
            };
            let mut group_deps: HashMap<String, std::collections::HashSet<String>> = HashMap::new();
            for r in 0..rows {
                let det = table.columns[fd.determinant].values[r].group_key();
                group_deps.entry(det).or_default().insert(dependent_of(r));
            }
            for (h, _) in &imputed_values {
                let det = table.columns[fd.determinant].values[*h].group_key();
                if group_deps[&det].len() > 1 {
                    violations += 1;
                }
            }
        }
    }
    if total == 0 {
        return None;
    }
    Some(ImputationResult {
        accuracy: correct as f64 / total as f64,
        fd_violation_rate: violations as f64 / total as f64,
        imputed: total,
    })
}

/// Baseline: impute with the dependent value of a *random* visible row —
/// the floor any embedding-based strategy must beat.
pub fn impute_randomly(
    corpus: &[Table],
    mask_fraction: f64,
    ctx: &EvalContext,
) -> Option<ImputationResult> {
    let mut rng = SplitMix64::new(ctx.seed ^ 0x1378);
    let mut correct = 0usize;
    let mut violations = 0usize;
    let mut total = 0usize;
    for table in corpus {
        let fds = discover_unary_fds(table, DiscoveryOptions::default());
        let rows = table.num_rows();
        if fds.is_empty() || rows < 3 {
            continue;
        }
        for fd in &fds {
            let k = ((rows as f64) * mask_fraction).ceil() as usize;
            let hidden = rng.sample_indices(rows, k.clamp(1, rows - 1));
            let mut imputed_values: Vec<(usize, String)> = Vec::new();
            for &h in &hidden {
                let visible: Vec<usize> =
                    (0..rows).filter(|r| *r != h && !hidden.contains(r)).collect();
                if visible.is_empty() {
                    continue;
                }
                let donor = visible[rng.next_below(visible.len())];
                let imputed = &table.columns[fd.dependent].values[donor];
                let truth = &table.columns[fd.dependent].values[h];
                total += 1;
                if imputed.group_key() == truth.group_key() {
                    correct += 1;
                }
                imputed_values.push((h, imputed.group_key()));
            }
            let dependent_of = |r: usize| -> String {
                imputed_values
                    .iter()
                    .find(|(x, _)| *x == r)
                    .map(|(_, v)| v.clone())
                    .unwrap_or_else(|| table.columns[fd.dependent].values[r].group_key())
            };
            let mut group_deps: std::collections::HashMap<
                String,
                std::collections::HashSet<String>,
            > = std::collections::HashMap::new();
            for r in 0..rows {
                let det = table.columns[fd.determinant].values[r].group_key();
                group_deps.entry(det).or_default().insert(dependent_of(r));
            }
            for (h, _) in &imputed_values {
                let det = table.columns[fd.determinant].values[*h].group_key();
                if group_deps[&det].len() > 1 {
                    violations += 1;
                }
            }
        }
    }
    if total == 0 {
        return None;
    }
    Some(ImputationResult {
        accuracy: correct as f64 / total as f64,
        fd_violation_rate: violations as f64 / total as f64,
        imputed: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use observatory_data::spider::SpiderConfig;
    use observatory_models::registry::model_by_name;

    fn corpus() -> Vec<Table> {
        SpiderConfig { num_tables: 3, rows: 20, seed: 9 }.generate().tables
    }

    #[test]
    fn experiment_runs_with_valid_rates() {
        let model = model_by_name("bert").unwrap();
        let r = impute_with_embeddings(model.as_ref(), &corpus(), 0.2, &EvalContext::default())
            .unwrap();
        assert!(r.imputed > 0);
        assert!((0.0..=1.0).contains(&r.accuracy));
        assert!((0.0..=1.0).contains(&r.fd_violation_rate));
    }

    #[test]
    fn embeddings_beat_random_imputation() {
        // Lexical similarity of determinant cells ⇒ matching determinants
        // are nearest ⇒ far better than a random donor.
        let ctx = EvalContext::default();
        let model = model_by_name("bert").unwrap();
        let emb = impute_with_embeddings(model.as_ref(), &corpus(), 0.2, &ctx).unwrap();
        let rnd = impute_randomly(&corpus(), 0.2, &ctx).unwrap();
        assert!(
            emb.accuracy > rnd.accuracy,
            "embedding accuracy {:.3} must beat random {:.3}",
            emb.accuracy,
            rnd.accuracy
        );
    }

    #[test]
    fn violations_occur_because_fds_are_not_preserved() {
        // The paper's predicted downstream damage: some imputations break
        // the dependency. (If this ever reaches exactly zero across models
        // the P4 finding itself would be in question.)
        let ctx = EvalContext::default();
        let corpus = SpiderConfig { num_tables: 6, rows: 20, seed: 9 }.generate().tables;
        let mut any_violation = false;
        for name in ["bert", "tapas", "doduo"] {
            let model = model_by_name(name).unwrap();
            for mask in [0.3, 0.5] {
                if let Some(r) = impute_with_embeddings(model.as_ref(), &corpus, mask, &ctx) {
                    any_violation |= r.fd_violation_rate > 0.0;
                }
            }
        }
        assert!(any_violation, "expected at least one model to produce FD violations");
    }

    #[test]
    fn fd_free_corpus_is_none() {
        use observatory_table::{Column, Value};
        let t = Table::new(
            "v",
            vec![
                Column::new("a", vec![Value::Int(1), Value::Int(1), Value::Int(2), Value::Int(2)]),
                Column::new("b", vec![Value::Int(7), Value::Int(8), Value::Int(7), Value::Int(8)]),
            ],
        );
        let model = model_by_name("bert").unwrap();
        assert!(
            impute_with_embeddings(model.as_ref(), &[t], 0.2, &EvalContext::default()).is_none()
        );
    }
}
