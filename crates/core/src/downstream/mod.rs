//! Downstream-task connections (paper §6): the experiments showing that
//! the property characterizations predict behaviour on real tasks.
//!
//! - [`column_type`]: P1/P2 ⇒ column-type prediction instability under row
//!   permutation (the paper's DODUO flip-rate experiment).
//! - [`join_discovery`]: P5 ⇒ sampled embeddings retain join-discovery
//!   precision/recall at a fraction of the indexing cost (the paper's T5
//!   experiment on NextiaJD).
//! - [`tableqa`]: P7 ⇒ TableQA accuracy drops under semantics-preserving
//!   schema perturbations (the paper's TAPAS observation).
//!
//! Plus two of §6's "Additional Connections":
//!
//! - [`imputation`]: P4 ⇒ embedding-driven imputation breaks functional
//!   dependencies (violation-rate experiment with a random-donor baseline).
//! - [`ensemble`]: P3 ⇒ containment and embedding rankers complement each
//!   other in join discovery when imperfectly correlated (recall@k of the
//!   rank ensemble).

pub mod column_type;
pub mod ensemble;
pub mod imputation;
pub mod join_discovery;
pub mod tableqa;
