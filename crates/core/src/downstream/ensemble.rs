//! Syntactic + semantic ensemble join discovery (paper §6, the P3
//! "Additional Connection"): *"Low Spearman's coefficient between
//! containment and embedding cosine similarity → the containment-based
//! method will complement the embedding-based method in finding join
//! candidates."*
//!
//! The experiment ranks candidates three ways — by containment, by
//! embedding cosine, and by an ensemble (mean of the two normalized
//! ranks) — and compares recall@k. When the two signals are imperfectly
//! correlated, the ensemble finds candidates either alone misses.

use crate::framework::EvalContext;
use crate::props::common::column_as_table;
use observatory_data::nextiajd::JoinPair;
use observatory_linalg::vector::cosine;
use observatory_models::TableEncoder;
use observatory_obs as obs;
use observatory_search::overlap::{containment, multiset_jaccard};
use observatory_stats::spearman::average_ranks;
use std::collections::HashSet;

/// Recall@k of the three ranking strategies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnsembleResult {
    pub recall_containment: f64,
    pub recall_embedding: f64,
    pub recall_ensemble: f64,
    /// Queries evaluated.
    pub queries: usize,
}

/// Run the ensemble experiment: every query ranks every candidate. Ground
/// truth: multiset Jaccard ≥ `relevance_threshold` (an overlap signal
/// *different* from the containment ranker, so neither ranker is the
/// oracle).
pub fn run_ensemble_discovery(
    model: &dyn TableEncoder,
    pairs: &[JoinPair],
    k: usize,
    relevance_threshold: f64,
    ctx: &EvalContext,
) -> Option<EnsembleResult> {
    let _span = obs::span(obs::Level::Info, "downstream", "ensemble_discovery")
        .with("model", model.name())
        .with("pairs", pairs.len());
    if pairs.is_empty() {
        return None;
    }
    // Embed all columns once, in two engine batches.
    let cand_tables: Vec<_> = pairs.iter().map(|p| column_as_table("cand", &p.candidate)).collect();
    let cand_embs: Vec<Vec<f64>> = ctx
        .engine
        .encode_batch(model, &cand_tables)
        .iter()
        .map(|e| e.column(0))
        .collect::<Option<Vec<_>>>()?;
    let query_tables: Vec<_> = pairs.iter().map(|p| column_as_table("query", &p.query)).collect();
    let query_embs: Vec<Vec<f64>> = ctx
        .engine
        .encode_batch(model, &query_tables)
        .iter()
        .map(|e| e.column(0))
        .collect::<Option<Vec<_>>>()?;

    let mut recall = [0.0f64; 3];
    let mut evaluated = 0usize;
    for (qi, pair) in pairs.iter().enumerate() {
        let relevant: HashSet<usize> = pairs
            .iter()
            .enumerate()
            .filter(|(_, c)| multiset_jaccard(&pair.query, &c.candidate) >= relevance_threshold)
            .map(|(j, _)| j)
            .collect();
        if relevant.is_empty() {
            continue;
        }
        evaluated += 1;
        let syntactic: Vec<f64> =
            pairs.iter().map(|c| containment(&pair.query, &c.candidate)).collect();
        let semantic: Vec<f64> = cand_embs.iter().map(|e| cosine(&query_embs[qi], e)).collect();
        let syn_ranks = average_ranks(&syntactic);
        let sem_ranks = average_ranks(&semantic);
        let ensemble: Vec<f64> = syn_ranks.iter().zip(&sem_ranks).map(|(a, b)| a + b).collect();
        for (s, scores) in [&syntactic, &semantic, &ensemble].iter().enumerate() {
            let mut order: Vec<usize> = (0..pairs.len()).collect();
            order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
            let hits = order.iter().take(k).filter(|j| relevant.contains(j)).count();
            recall[s] += hits as f64 / relevant.len().min(k) as f64;
        }
    }
    if evaluated == 0 {
        return None;
    }
    Some(EnsembleResult {
        recall_containment: recall[0] / evaluated as f64,
        recall_embedding: recall[1] / evaluated as f64,
        recall_ensemble: recall[2] / evaluated as f64,
        queries: evaluated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use observatory_data::nextiajd::NextiaJdConfig;
    use observatory_models::registry::model_by_name;

    fn pairs() -> Vec<JoinPair> {
        NextiaJdConfig { num_pairs: 30, ..Default::default() }.generate()
    }

    #[test]
    fn all_recalls_valid_and_informative() {
        let model = model_by_name("bert").unwrap();
        let r = run_ensemble_discovery(model.as_ref(), &pairs(), 5, 0.2, &EvalContext::default())
            .unwrap();
        assert!(r.queries > 0);
        for v in [r.recall_containment, r.recall_embedding, r.recall_ensemble] {
            assert!((0.0..=1.0).contains(&v), "{r:?}");
        }
        // Both single rankers must do real work (well above random).
        assert!(r.recall_containment > 0.3, "{r:?}");
        assert!(r.recall_embedding > 0.3, "{r:?}");
    }

    #[test]
    fn ensemble_not_dominated() {
        // The §6 claim: the ensemble complements — it should at least match
        // the weaker of the two single rankers, and typically approach or
        // exceed the stronger.
        let model = model_by_name("bert").unwrap();
        let r = run_ensemble_discovery(model.as_ref(), &pairs(), 5, 0.2, &EvalContext::default())
            .unwrap();
        let weakest = r.recall_containment.min(r.recall_embedding);
        assert!(
            r.recall_ensemble >= weakest - 1e-9,
            "ensemble {:.3} below weakest single ranker {:.3}",
            r.recall_ensemble,
            weakest
        );
    }

    #[test]
    fn row_only_model_is_none() {
        let model = model_by_name("taptap").unwrap();
        assert!(run_ensemble_discovery(model.as_ref(), &pairs(), 5, 0.2, &EvalContext::default())
            .is_none());
    }

    #[test]
    fn empty_workload_is_none() {
        let model = model_by_name("bert").unwrap();
        assert!(
            run_ensemble_discovery(model.as_ref(), &[], 5, 0.2, &EvalContext::default()).is_none()
        );
    }
}
