//! Join discovery with sampled vs full-value embeddings (paper §6, the
//! P5 connection; WarpGate-style pipeline).
//!
//! The paper implements T5 join discovery over NextiaJD and finds that
//! with a sample of ~5% of rows, precision and recall stay within ±3% of
//! full-value embeddings while indexing is > 7× and lookup > 2× faster.
//! This module reproduces the pipeline: embed candidates (full vs
//! sampled), index, query, score against containment ground truth, and
//! time both paths.

use crate::framework::EvalContext;
use crate::props::common::column_as_table;
use observatory_data::nextiajd::JoinPair;
use observatory_linalg::vector::mean as vec_mean;
use observatory_models::TableEncoder;
use observatory_obs as obs;
use observatory_search::join::{evaluate_join_search, JoinEval, JoinQuery};
use observatory_search::knn::KnnIndex;
use observatory_search::overlap::containment;
use observatory_table::sample::{chunk_column, sample_column};
use observatory_table::Column;
use std::collections::HashSet;
use std::time::Instant;

/// Configuration of the experiment.
#[derive(Debug, Clone)]
pub struct JoinDiscoveryConfig {
    /// Values per sampled column (paper: 100 ≈ 5% of NextiaJD-XS rows).
    pub sample_size: usize,
    /// Retrieval cutoff k.
    pub k: usize,
    /// Containment threshold defining ground-truth joinability.
    pub relevance_threshold: f64,
    /// Chunk size for full-value embeddings.
    pub chunk_rows: usize,
}

impl Default for JoinDiscoveryConfig {
    fn default() -> Self {
        Self { sample_size: 8, k: 5, relevance_threshold: 0.5, chunk_rows: 32 }
    }
}

/// Results for one embedding path (full or sampled).
#[derive(Debug, Clone, Copy)]
pub struct PathResult {
    pub eval: JoinEval,
    /// Wall-clock time to embed + index all candidates.
    pub index_micros: u128,
    /// Wall-clock time to embed + run all queries.
    pub lookup_micros: u128,
}

/// Full experiment output.
#[derive(Debug, Clone, Copy)]
pub struct JoinDiscoveryResult {
    pub full: PathResult,
    pub sampled: PathResult,
}

fn full_embedding(
    engine: &observatory_runtime::Engine,
    model: &dyn TableEncoder,
    column: &Column,
    chunk_rows: usize,
) -> Option<Vec<f64>> {
    let chunks = chunk_column(column, chunk_rows);
    let tables: Vec<_> = chunks.iter().map(|c| column_as_table("chunk", c)).collect();
    let embs: Vec<Vec<f64>> =
        engine.encode_batch(model, &tables).iter().filter_map(|e| e.column(0)).collect();
    (embs.len() == chunks.len()).then(|| vec_mean(&embs))
}

fn sampled_embedding(
    engine: &observatory_runtime::Engine,
    model: &dyn TableEncoder,
    column: &Column,
    sample_size: usize,
    seed: u64,
) -> Option<Vec<f64>> {
    let fraction = (sample_size as f64 / column.len().max(1) as f64).min(1.0);
    let sampled = sample_column(column, fraction, seed);
    engine.encode_table(model, &column_as_table("sample", &sampled)).column(0)
}

/// Run the experiment over NextiaJD-style pairs: candidates are all
/// candidate columns, queries all query columns, and ground truth is
/// containment ≥ threshold between the actual values.
pub fn run_join_discovery(
    model: &dyn TableEncoder,
    pairs: &[JoinPair],
    config: &JoinDiscoveryConfig,
    ctx: &EvalContext,
) -> Option<JoinDiscoveryResult> {
    let _span = obs::span(obs::Level::Info, "downstream", "join_discovery")
        .with("model", model.name())
        .with("pairs", pairs.len());
    if pairs.is_empty() {
        return None;
    }
    // Ground truth per query: candidate keys with sufficient containment.
    let relevant: Vec<HashSet<String>> = pairs
        .iter()
        .map(|p| {
            pairs
                .iter()
                .enumerate()
                .filter(|(_, c)| containment(&p.query, &c.candidate) >= config.relevance_threshold)
                .map(|(j, _)| format!("cand{j}"))
                .collect()
        })
        .collect();

    let run_path = |embed: &dyn Fn(&Column, u64) -> Option<Vec<f64>>| -> Option<PathResult> {
        let t0 = Instant::now();
        let mut index = KnnIndex::new(model.dim());
        for (j, p) in pairs.iter().enumerate() {
            index.insert(format!("cand{j}"), &embed(&p.candidate, ctx.seed ^ j as u64)?);
        }
        let index_micros = t0.elapsed().as_micros();
        let t1 = Instant::now();
        let queries: Vec<JoinQuery> = pairs
            .iter()
            .enumerate()
            .map(|(i, p)| {
                embed(&p.query, ctx.seed ^ (i as u64) << 20).map(|embedding| JoinQuery {
                    key: format!("query{i}"),
                    embedding,
                    relevant: relevant[i].clone(),
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let eval = evaluate_join_search(&index, &queries, config.k);
        let lookup_micros = t1.elapsed().as_micros();
        Some(PathResult { eval, index_micros, lookup_micros })
    };

    let full = run_path(&|c, _| full_embedding(&ctx.engine, model, c, config.chunk_rows))?;
    let sampled =
        run_path(&|c, seed| sampled_embedding(&ctx.engine, model, c, config.sample_size, seed))?;
    Some(JoinDiscoveryResult { full, sampled })
}

#[cfg(test)]
mod tests {
    use super::*;
    use observatory_data::nextiajd::NextiaJdConfig;
    use observatory_models::registry::model_by_name;

    fn pairs() -> Vec<JoinPair> {
        NextiaJdConfig { num_pairs: 16, ..Default::default() }.generate()
    }

    #[test]
    fn experiment_runs_and_scores_are_valid() {
        let model = model_by_name("t5").unwrap();
        let r = run_join_discovery(
            model.as_ref(),
            &pairs(),
            &JoinDiscoveryConfig::default(),
            &EvalContext::default(),
        )
        .unwrap();
        for path in [r.full, r.sampled] {
            assert!((0.0..=1.0).contains(&path.eval.mean_precision));
            assert!((0.0..=1.0).contains(&path.eval.mean_recall));
            assert_eq!(path.eval.queries, 16);
        }
    }

    #[test]
    fn retrieval_is_informative() {
        // Queries must find their own (high-containment) candidates well
        // above chance: each query has at least its own pair's candidate
        // among the relevant set when containment ≥ threshold.
        let model = model_by_name("t5").unwrap();
        let r = run_join_discovery(
            model.as_ref(),
            &pairs(),
            &JoinDiscoveryConfig { k: 5, ..Default::default() },
            &EvalContext::default(),
        )
        .unwrap();
        assert!(
            r.full.eval.mean_recall > 0.3,
            "full-value recall {} too low",
            r.full.eval.mean_recall
        );
    }

    #[test]
    fn sampled_quality_close_to_full() {
        // The P5 connection: high sample fidelity ⇒ retrieval quality is
        // retained under sampling (paper: within ±3%; we assert a loose
        // band on the small synthetic workload).
        let model = model_by_name("t5").unwrap();
        let r = run_join_discovery(
            model.as_ref(),
            &pairs(),
            &JoinDiscoveryConfig::default(),
            &EvalContext::default(),
        )
        .unwrap();
        let drop = r.full.eval.mean_recall - r.sampled.eval.mean_recall;
        assert!(drop < 0.3, "sampling lost too much recall: {drop}");
    }

    #[test]
    fn empty_workload_is_none() {
        let model = model_by_name("t5").unwrap();
        assert!(run_join_discovery(
            model.as_ref(),
            &[],
            &JoinDiscoveryConfig::default(),
            &EvalContext::default()
        )
        .is_none());
    }

    #[test]
    fn row_only_model_cannot_run() {
        let model = model_by_name("taptap").unwrap();
        assert!(run_join_discovery(
            model.as_ref(),
            &pairs(),
            &JoinDiscoveryConfig::default(),
            &EvalContext::default()
        )
        .is_none());
    }
}
