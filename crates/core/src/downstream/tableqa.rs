//! TableQA under schema perturbation (paper §6, the P7 connection).
//!
//! The paper observes TAPAS's TableQA accuracy dropping by 6.2–22.2 points
//! under synonym/abbreviation perturbations and connects it to P7: the
//! embeddings move when the schema is renamed, so the model's grounding of
//! the (unchanged) question into the (renamed) schema degrades.
//!
//! The proxy task reproduces that causal path in a retrieval form: a
//! question asks for a column by name ("what is the `<header>` …"); the
//! system grounds the question by picking the column whose embedding is
//! most similar to the question embedding. Questions are generated from
//! the *original* schema (users do not rename their questions), tables are
//! optionally perturbed — accuracy is a direct function of how far
//! perturbation moved the column embeddings.

use observatory_data::perturb::{perturb_table, Perturbation};
use observatory_linalg::vector::cosine;
use observatory_models::TableEncoder;
use observatory_obs as obs;
use observatory_table::subject::subject_column;
use observatory_table::Table;

/// One generated question with its ground-truth target column.
#[derive(Debug, Clone)]
pub struct QaItem {
    /// Natural-language question referencing original header names.
    pub question: String,
    /// Index of the column holding the answer.
    pub answer_col: usize,
}

/// Generate lookup questions for a table: for each non-subject column with
/// a header, "what is the `<header>` of `<subject value>`?" per row.
pub fn generate_questions(table: &Table, max_per_table: usize) -> Vec<QaItem> {
    let Some(subj) = subject_column(table) else {
        return Vec::new();
    };
    let mut items = Vec::new();
    'outer: for (j, col) in table.columns.iter().enumerate() {
        if j == subj || col.header.is_empty() {
            continue;
        }
        for r in 0..table.num_rows() {
            if items.len() >= max_per_table {
                break 'outer;
            }
            let entity = table.columns[subj].values[r].to_text();
            if entity.is_empty() {
                continue;
            }
            items.push(QaItem {
                question: format!("what is the {} of {}?", col.header, entity),
                answer_col: j,
            });
        }
    }
    items
}

/// Ground each question into the (possibly perturbed) table by embedding
/// similarity; return column-selection accuracy.
pub fn column_grounding_accuracy(
    model: &dyn TableEncoder,
    table: &Table,
    items: &[QaItem],
) -> Option<f64> {
    if items.is_empty() {
        return None;
    }
    let enc = observatory_runtime::global().encode_table(model, table);
    let columns: Vec<Option<Vec<f64>>> = (0..table.num_cols()).map(|j| enc.column(j)).collect();
    let present: Vec<&Vec<f64>> = columns.iter().flatten().collect();
    if present.is_empty() {
        return None;
    }
    // Anisotropy correction: contextual embeddings share a dominant common
    // direction that swamps between-column differences; centering the
    // column embeddings on their mean exposes the column-specific (header
    // and value) signal that grounding relies on.
    let centroid =
        observatory_linalg::vector::mean(&present.iter().map(|v| (*v).clone()).collect::<Vec<_>>());
    let centered: Vec<Option<Vec<f64>>> = columns
        .iter()
        .map(|c| c.as_ref().map(|e| observatory_linalg::vector::sub(e, &centroid)))
        .collect();
    let mut correct = 0usize;
    for item in items {
        let q = model.encode_text(&item.question);
        let best = centered
            .iter()
            .enumerate()
            .filter_map(|(j, e)| e.as_ref().map(|e| (j, cosine(&q, e))))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(j, _)| j);
        if best == Some(item.answer_col) {
            correct += 1;
        }
    }
    Some(correct as f64 / items.len() as f64)
}

/// Accuracy on original vs perturbed tables (questions fixed to the
/// original schema).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QaRobustness {
    pub original_accuracy: f64,
    pub perturbed_accuracy: f64,
    pub questions: usize,
}

impl QaRobustness {
    /// Accuracy drop in points (fraction).
    pub fn drop(&self) -> f64 {
        self.original_accuracy - self.perturbed_accuracy
    }
}

/// Run the robustness experiment over a corpus for one perturbation class.
pub fn qa_under_perturbation(
    model: &dyn TableEncoder,
    corpus: &[Table],
    kind: Perturbation,
    max_questions_per_table: usize,
) -> Option<QaRobustness> {
    let _span = obs::span(obs::Level::Info, "downstream", "tableqa_robustness")
        .with("model", model.name())
        .with("tables", corpus.len());
    let mut orig_correct = 0.0;
    let mut pert_correct = 0.0;
    let mut total = 0usize;
    for table in corpus {
        let items = generate_questions(table, max_questions_per_table);
        if items.is_empty() {
            continue;
        }
        let (perturbed, changed) = perturb_table(table, kind);
        if changed.is_empty() {
            continue;
        }
        let (Some(a_orig), Some(a_pert)) = (
            column_grounding_accuracy(model, table, &items),
            column_grounding_accuracy(model, &perturbed, &items),
        ) else {
            continue;
        };
        orig_correct += a_orig * items.len() as f64;
        pert_correct += a_pert * items.len() as f64;
        total += items.len();
    }
    if total == 0 {
        return None;
    }
    Some(QaRobustness {
        original_accuracy: orig_correct / total as f64,
        perturbed_accuracy: pert_correct / total as f64,
        questions: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use observatory_data::wikitables::WikiTablesConfig;
    use observatory_models::registry::model_by_name;

    fn corpus() -> Vec<Table> {
        WikiTablesConfig { num_tables: 4, min_rows: 4, max_rows: 5, seed: 3 }.generate()
    }

    #[test]
    fn questions_reference_headers_and_targets() {
        let table = &corpus()[4 % 4]; // people table template at index 0? use first
        let items = generate_questions(table, 10);
        assert!(!items.is_empty());
        for item in &items {
            assert!(item.question.starts_with("what is the "));
            assert!(item.answer_col < table.num_cols());
            assert!(item.question.contains(&table.columns[item.answer_col].header));
        }
    }

    #[test]
    fn grounding_is_above_chance_on_original_schema() {
        // Questions mention the target header verbatim; lexical grounding
        // must beat the 1/num_cols chance rate.
        let model = model_by_name("tapas").unwrap();
        let mut correct_mass = 0.0;
        let mut chance_mass = 0.0;
        for table in &corpus() {
            let items = generate_questions(table, 12);
            if let Some(acc) = column_grounding_accuracy(model.as_ref(), table, &items) {
                correct_mass += acc;
                chance_mass += 1.0 / table.num_cols() as f64;
            }
        }
        assert!(
            correct_mass > chance_mass,
            "grounding accuracy {correct_mass:.3} not above chance {chance_mass:.3}"
        );
    }

    #[test]
    fn perturbation_reduces_accuracy() {
        // The §6 claim: schema perturbation ⇒ accuracy drop (non-negative
        // drop on average; typically strictly positive).
        let model = model_by_name("tapas").unwrap();
        let r =
            qa_under_perturbation(model.as_ref(), &corpus(), Perturbation::SchemaAbbreviation, 8)
                .unwrap();
        assert!(r.questions > 0);
        assert!(
            r.drop() >= -0.05,
            "perturbed accuracy should not exceed original materially: {r:?}"
        );
        assert!((0.0..=1.0).contains(&r.original_accuracy));
    }

    #[test]
    fn schema_blind_model_is_unaffected() {
        // DODUO ignores headers entirely: original and perturbed grounding
        // are identical (zero drop) — the P7 invariance carried downstream.
        let model = model_by_name("doduo").unwrap();
        let r = qa_under_perturbation(model.as_ref(), &corpus(), Perturbation::SchemaSynonym, 8)
            .unwrap();
        assert!(r.drop().abs() < 1e-12, "{r:?}");
    }

    #[test]
    fn subjectless_table_yields_no_questions() {
        use observatory_table::{Column, Value};
        let t = Table::new(
            "nums",
            vec![Column::new("a", vec![Value::Int(1)]), Column::new("b", vec![Value::Int(2)])],
        );
        assert!(generate_questions(&t, 5).is_empty());
    }
}
