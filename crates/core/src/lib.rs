//! # observatory-core
//!
//! The Observatory framework proper: the eight primitive properties with
//! their measures (paper §3), the model-scope matrix (Table 2), the
//! evaluation runner, report types, and the downstream-task connections
//! (§6).
//!
//! ## The eight properties
//!
//! | Id | Property | Module |
//! |---|---|---|
//! | P1 | Row order insignificance | [`props::row_order`] |
//! | P2 | Column order insignificance | [`props::col_order`] |
//! | P3 | Join relationship | [`props::join_rel`] |
//! | P4 | Functional dependencies | [`props::fd`] |
//! | P5 | Sample fidelity | [`props::sample_fidelity`] |
//! | P6 | Entity stability | [`props::entity_stability`] |
//! | P7 | Perturbation robustness | [`props::perturbation`] |
//! | P8 | Heterogeneous context | [`props::hetero_context`] |
//!
//! Properties P1–P5, P7 and P8 implement the object-safe
//! [`framework::Property`] trait ("given a pretrained model f, a corpus of
//! tables T, and a property P with measure M …", Definition 1). P6
//! compares *two* embedding spaces and therefore exposes a pairwise API.
//!
//! ## Extensibility
//!
//! New models implement `observatory_models::TableEncoder`; new properties
//! implement [`framework::Property`]. The runner and report machinery work
//! with both unchanged — see `examples/custom_model.rs`.

pub mod downstream;
pub mod export;
pub mod framework;
pub mod props;
pub mod report;
pub mod scope;
pub mod summary;

pub use framework::{Distribution, EvalContext, Property, PropertyReport, RunControl};
