//! Property 2 — Column Order Insignificance (paper §3.2, Measure 2;
//! Figures 7 and 8).
//!
//! The mirror image of Property 1: attributes of a relation are unordered,
//! so permuting columns should not move embeddings. Models that exploit
//! neighbouring columns as context (DODUO-style local context, SATO-style
//! priors) are exactly the ones this measure exposes. The paper finds
//! column shuffling causes *more* variation than row shuffling across the
//! board.

use crate::framework::{EvalContext, Property, PropertyReport};
use crate::props::common::{cosines_and_mcv, invert_permutation};
use observatory_models::TableEncoder;
use observatory_obs as obs;
use observatory_table::perm::{permute_columns, sample_permutations, PERMUTATION_CAP};
use observatory_table::Table;

/// Property 2 evaluator.
#[derive(Debug, Clone)]
pub struct ColumnOrderInsignificance {
    /// Cap on sampled permutations per table (paper default 1000).
    pub max_permutations: usize,
}

impl Default for ColumnOrderInsignificance {
    fn default() -> Self {
        Self { max_permutations: PERMUTATION_CAP }
    }
}

impl Property for ColumnOrderInsignificance {
    fn id(&self) -> &'static str {
        "P2"
    }

    fn name(&self) -> &'static str {
        "Column Order Insignificance"
    }

    fn evaluate(
        &self,
        model: &dyn TableEncoder,
        corpus: &[Table],
        ctx: &EvalContext,
    ) -> PropertyReport {
        let _span = obs::span(obs::Level::Info, "props", "P2")
            .with("model", model.name())
            .with("tables", corpus.len());
        let mut report = PropertyReport::new(self.id(), model.name());
        let mut col_cos = Vec::new();
        let mut col_mcv = Vec::new();
        let mut row_cos = Vec::new();
        let mut row_mcv = Vec::new();
        let mut tbl_cos = Vec::new();
        let mut tbl_mcv = Vec::new();

        for (t_idx, table) in corpus.iter().enumerate() {
            // Cancellation checkpoint between permutation batches, as in P1.
            if ctx.control.should_stop() {
                break;
            }
            let perms = sample_permutations(
                table.num_cols(),
                self.max_permutations,
                ctx.seed ^ (t_idx as u64).wrapping_mul(0x85EB_CA6B),
            );
            if perms.len() < 2 {
                ctx.control.advance(1);
                continue;
            }
            let variants: Vec<Table> = perms.iter().map(|p| permute_columns(table, p)).collect();
            let encodings = ctx.engine.encode_batch(model, &variants);
            let inverses: Vec<Vec<usize>> = perms.iter().map(|p| invert_permutation(p)).collect();

            // Column level: original column j sits at position inv[j].
            for j in 0..table.num_cols() {
                let embs: Vec<Vec<f64>> = encodings
                    .iter()
                    .zip(&inverses)
                    .filter_map(|(e, inv)| e.column(inv[j]))
                    .collect();
                if embs.len() == encodings.len() {
                    if let Some((cos, mcv)) = cosines_and_mcv(&embs) {
                        col_cos.extend(cos);
                        col_mcv.push(mcv);
                    }
                }
            }
            // Row level: row identity is untouched by column shuffles.
            for r in 0..table.num_rows() {
                let embs: Vec<Vec<f64>> = encodings.iter().filter_map(|e| e.row(r)).collect();
                if embs.len() == encodings.len() {
                    if let Some((cos, mcv)) = cosines_and_mcv(&embs) {
                        row_cos.extend(cos);
                        row_mcv.push(mcv);
                    }
                }
            }
            // Table level.
            let embs: Vec<Vec<f64>> = encodings.iter().filter_map(|e| e.table()).collect();
            if embs.len() == encodings.len() {
                if let Some((cos, mcv)) = cosines_and_mcv(&embs) {
                    tbl_cos.extend(cos);
                    tbl_mcv.push(mcv);
                }
            }
            ctx.control.advance(1);
        }

        report.push_distribution("column/cosine", col_cos);
        report.push_distribution("column/mcv", col_mcv);
        report.push_distribution("row/cosine", row_cos);
        report.push_distribution("row/mcv", row_mcv);
        report.push_distribution("table/cosine", tbl_cos);
        report.push_distribution("table/mcv", tbl_mcv);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::row_order::RowOrderInsignificance;
    use observatory_data::wikitables::WikiTablesConfig;
    use observatory_models::registry::model_by_name;
    use observatory_stats::descriptive::mean;

    fn corpus() -> Vec<Table> {
        WikiTablesConfig { num_tables: 3, min_rows: 4, max_rows: 5, seed: 5 }.generate()
    }

    #[test]
    fn tracks_columns_through_shuffles() {
        let model = model_by_name("bert").unwrap();
        let prop = ColumnOrderInsignificance { max_permutations: 6 };
        let report = prop.evaluate(model.as_ref(), &corpus(), &EvalContext::default());
        let cos = report.distribution("column/cosine").unwrap();
        assert!(!cos.values.is_empty());
        assert!(cos.values.iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    #[test]
    fn taptap_participates_via_rows() {
        // The single property whose scope includes TapTap (Table 2).
        let model = model_by_name("taptap").unwrap();
        let prop = ColumnOrderInsignificance { max_permutations: 4 };
        let report = prop.evaluate(model.as_ref(), &corpus(), &EvalContext::default());
        assert!(report.distribution("row/cosine").is_some());
        // And column shuffling genuinely moves TapTap's row embeddings.
        let cos = report.distribution("row/cosine").unwrap();
        assert!(cos.values.iter().any(|v| *v < 1.0 - 1e-9));
    }

    #[test]
    fn column_shuffles_cause_more_variation_than_row_shuffles() {
        // The paper's headline §5.2 finding, asserted directionally for
        // BERT column embeddings on the same corpus and budget.
        let model = model_by_name("bert").unwrap();
        let ctx = EvalContext::default();
        let corpus = corpus();
        let by_cols = ColumnOrderInsignificance { max_permutations: 12 }.evaluate(
            model.as_ref(),
            &corpus,
            &ctx,
        );
        let by_rows =
            RowOrderInsignificance { max_permutations: 12 }.evaluate(model.as_ref(), &corpus, &ctx);
        let col_shuffle_cos = mean(&by_cols.distribution("column/cosine").unwrap().values);
        let row_shuffle_cos = mean(&by_rows.distribution("column/cosine").unwrap().values);
        assert!(
            col_shuffle_cos < row_shuffle_cos,
            "column shuffles {col_shuffle_cos:.4} should disturb more than row shuffles {row_shuffle_cos:.4}"
        );
    }

    #[test]
    fn deterministic() {
        let model = model_by_name("t5").unwrap();
        let prop = ColumnOrderInsignificance { max_permutations: 4 };
        let ctx = EvalContext::default();
        assert_eq!(
            prop.evaluate(model.as_ref(), &corpus(), &ctx),
            prop.evaluate(model.as_ref(), &corpus(), &ctx)
        );
    }
}
