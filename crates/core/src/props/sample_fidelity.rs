//! Property 5 — Sample Fidelity (paper §3.3, Measure 5; Figure 11).
//!
//! Embedding full columns is often infeasible; practice samples. The
//! measure: cosine similarity between the embedding of a uniform sample
//! and the *full-column* embedding, where the full embedding is obtained
//! by chunking the column (shared header per chunk) and aggregating chunk
//! embeddings — the TUTA-style workaround the paper adopts because a full
//! column may not fit one model input. Also reported: the MCV over the
//! set {full, samples} per column.

use crate::framework::{EvalContext, Property, PropertyReport};
use crate::props::common::column_as_table;
use observatory_linalg::vector::{cosine, mean as vec_mean};
use observatory_linalg::Matrix;
use observatory_models::TableEncoder;
use observatory_obs as obs;
use observatory_stats::mcv::albert_zhang_mcv;
use observatory_table::sample::{chunk_column, sample_column};
use observatory_table::{Column, Table};

/// Property 5 evaluator.
#[derive(Debug, Clone)]
pub struct SampleFidelity {
    /// Sampling fractions (paper: 0.25, 0.5, 0.75).
    pub ratios: Vec<f64>,
    /// Distinct samples drawn per (column, ratio).
    pub samples_per_ratio: usize,
    /// Chunk size (rows) for full-column embedding aggregation.
    pub chunk_rows: usize,
}

impl Default for SampleFidelity {
    fn default() -> Self {
        Self { ratios: vec![0.25, 0.5, 0.75], samples_per_ratio: 3, chunk_rows: 32 }
    }
}

impl SampleFidelity {
    /// Full-column embedding: aggregate (mean) the chunk embeddings.
    /// Chunks are encoded through the process-wide engine (batched,
    /// cached); see [`SampleFidelity::full_column_embedding_with`].
    pub fn full_column_embedding(
        &self,
        model: &dyn TableEncoder,
        column: &Column,
    ) -> Option<Vec<f64>> {
        self.full_column_embedding_with(&observatory_runtime::global(), model, column)
    }

    /// [`SampleFidelity::full_column_embedding`] through an explicit
    /// engine: all chunk encodes go through one `encode_batch` call.
    pub fn full_column_embedding_with(
        &self,
        engine: &observatory_runtime::Engine,
        model: &dyn TableEncoder,
        column: &Column,
    ) -> Option<Vec<f64>> {
        let chunks = chunk_column(column, self.chunk_rows);
        let tables: Vec<Table> = chunks.iter().map(|c| column_as_table("chunk", c)).collect();
        let embs: Vec<Vec<f64>> =
            engine.encode_batch(model, &tables).iter().filter_map(|e| e.column(0)).collect();
        if embs.len() != chunks.len() {
            return None;
        }
        Some(vec_mean(&embs))
    }
}

impl Property for SampleFidelity {
    fn id(&self) -> &'static str {
        "P5"
    }

    fn name(&self) -> &'static str {
        "Sample Fidelity"
    }

    fn evaluate(
        &self,
        model: &dyn TableEncoder,
        corpus: &[Table],
        ctx: &EvalContext,
    ) -> PropertyReport {
        let _span = obs::span(obs::Level::Info, "props", "P5")
            .with("model", model.name())
            .with("tables", corpus.len());
        let mut report = PropertyReport::new(self.id(), model.name());
        let mut fidelity: Vec<(f64, Vec<f64>)> =
            self.ratios.iter().map(|&r| (r, Vec::new())).collect();
        let mut mcvs: Vec<(f64, Vec<f64>)> = self.ratios.iter().map(|&r| (r, Vec::new())).collect();
        for (t_idx, table) in corpus.iter().enumerate() {
            for (j, column) in table.columns.iter().enumerate() {
                if column.len() < 4 {
                    continue;
                }
                let Some(full) = self.full_column_embedding_with(&ctx.engine, model, column) else {
                    continue;
                };
                for (ri, &ratio) in self.ratios.iter().enumerate() {
                    let sample_tables: Vec<Table> = (0..self.samples_per_ratio)
                        .map(|s| {
                            let seed = ctx.seed
                                ^ (t_idx as u64) << 24
                                ^ (j as u64) << 16
                                ^ (ri as u64) << 8
                                ^ s as u64;
                            column_as_table("sample", &sample_column(column, ratio, seed))
                        })
                        .collect();
                    let mut set = vec![full.clone()];
                    for enc in ctx.engine.encode_batch(model, &sample_tables) {
                        let Some(emb) = enc.column(0) else {
                            continue;
                        };
                        fidelity[ri].1.push(cosine(&full, &emb));
                        set.push(emb);
                    }
                    if set.len() > 1 {
                        mcvs[ri].1.push(albert_zhang_mcv(&Matrix::from_rows(&set)));
                    }
                }
            }
        }
        for (ratio, values) in fidelity {
            report.push_distribution(format!("fidelity@{ratio}"), values);
        }
        for (ratio, values) in mcvs {
            report.push_distribution(format!("mcv@{ratio}"), values);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use observatory_data::wikitables::WikiTablesConfig;
    use observatory_models::registry::model_by_name;
    use observatory_stats::descriptive::mean;

    fn corpus() -> Vec<Table> {
        WikiTablesConfig { num_tables: 3, min_rows: 8, max_rows: 10, seed: 17 }.generate()
    }

    #[test]
    fn fidelity_rises_with_ratio() {
        // The paper's monotonic trend: larger samples ⇒ embeddings closer
        // to full-value embeddings.
        let model = model_by_name("bert").unwrap();
        let prop = SampleFidelity::default();
        let report = prop.evaluate(model.as_ref(), &corpus(), &EvalContext::default());
        let lo = mean(&report.distribution("fidelity@0.25").unwrap().values);
        let hi = mean(&report.distribution("fidelity@0.75").unwrap().values);
        assert!(hi > lo, "fidelity@0.75 {hi:.4} should exceed fidelity@0.25 {lo:.4}");
    }

    #[test]
    fn fidelity_values_in_range() {
        let model = model_by_name("t5").unwrap();
        let prop = SampleFidelity { samples_per_ratio: 2, ..Default::default() };
        let report = prop.evaluate(model.as_ref(), &corpus(), &EvalContext::default());
        for d in &report.records {
            if d.label.starts_with("fidelity") {
                assert!(d.values.iter().all(|v| (-1.0..=1.0).contains(v)));
            }
        }
    }

    #[test]
    fn chunked_full_embedding_defined_for_long_columns() {
        let model = model_by_name("bert").unwrap();
        let prop = SampleFidelity { chunk_rows: 4, ..Default::default() };
        let long = Column::new("c", (0..40).map(|i| observatory_table::Value::Int(i)).collect());
        let full = prop.full_column_embedding(model.as_ref(), &long).unwrap();
        assert_eq!(full.len(), model.dim());
        assert!(full.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn row_only_models_yield_empty_reports() {
        let model = model_by_name("taptap").unwrap();
        let report =
            SampleFidelity::default().evaluate(model.as_ref(), &corpus(), &EvalContext::default());
        assert!(report.records.is_empty());
    }

    #[test]
    fn deterministic() {
        let model = model_by_name("tapas").unwrap();
        let prop = SampleFidelity { samples_per_ratio: 2, ..Default::default() };
        let ctx = EvalContext::default();
        assert_eq!(
            prop.evaluate(model.as_ref(), &corpus(), &ctx),
            prop.evaluate(model.as_ref(), &corpus(), &ctx)
        );
    }
}
