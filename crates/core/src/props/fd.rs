//! Property 4 — Functional Dependencies (paper §3.2, Measure 4; Table 4
//! and Figure 10).
//!
//! If an embedding space preserves an FD `X → Y`, the *translation*
//! between the determinant cell and the dependent cell should be constant
//! within each FD group (TransE-style relational translation). The measure
//! is the average group-wise variance of the translation distance:
//!
//! ```text
//! S̄² = (1/n) Σ_groups var({ d(E(v_X,i), E(v_Y,i)) : i in group })
//! ```
//!
//! computed over tables *with* mined FDs (`𝒯_FD`) and over random column
//! pairs *without* the dependency (`𝒯_¬FD`), matching the paper's pipeline:
//! FD discovery is run on the corpus (determinant size 1, exactly as the
//! paper configures HyFD), and the non-FD pairs are drawn per table to the
//! same count as the FD pairs.

use crate::framework::{EvalContext, Property, PropertyReport};
use observatory_fd::discovery::{discover_unary_fds, holds_unary, DiscoveryOptions};
use observatory_linalg::vector::{l1_distance, l2_distance};
use observatory_linalg::{moments::variance, SplitMix64};
use observatory_models::{ModelEncoding, TableEncoder};
use observatory_obs as obs;
use observatory_stats::descriptive::mean;
use observatory_table::Table;
use std::collections::HashMap;

/// Distance metric for the translation (paper uses L1 or L2 following
/// TransE).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistanceMetric {
    L1,
    L2,
}

impl DistanceMetric {
    fn apply(&self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            DistanceMetric::L1 => l1_distance(a, b),
            DistanceMetric::L2 => l2_distance(a, b),
        }
    }
}

/// Property 4 evaluator.
#[derive(Debug, Clone)]
pub struct FunctionalDependencies {
    /// Minimum FD-group size (variance needs ≥ 2 entries).
    pub min_group_size: usize,
    /// Translation distance metric.
    pub distance: DistanceMetric,
}

impl Default for FunctionalDependencies {
    fn default() -> Self {
        Self { min_group_size: 2, distance: DistanceMetric::L2 }
    }
}

impl FunctionalDependencies {
    /// S̄² for one (x, y) column pair: group rows by the x-value, take the
    /// variance of the translation distances within each (≥ min size)
    /// group, average over groups. `None` when no group is large enough or
    /// cell embeddings are unavailable.
    fn mean_group_variance(
        &self,
        enc: &ModelEncoding,
        table: &Table,
        x: usize,
        y: usize,
    ) -> Option<f64> {
        let rows = enc.rows_encoded.min(table.num_rows());
        let mut groups: HashMap<String, Vec<f64>> = HashMap::new();
        for r in 0..rows {
            let (Some(ex), Some(ey)) = (enc.cell(r, x), enc.cell(r, y)) else {
                continue;
            };
            let key = table.columns[x].values[r].group_key();
            groups.entry(key).or_default().push(self.distance.apply(&ex, &ey));
        }
        let vars: Vec<f64> = groups
            .values()
            .filter(|d| d.len() >= self.min_group_size)
            .map(|d| variance(d))
            .collect();
        if vars.is_empty() {
            None
        } else {
            Some(mean(&vars))
        }
    }
}

impl Property for FunctionalDependencies {
    fn id(&self) -> &'static str {
        "P4"
    }

    fn name(&self) -> &'static str {
        "Functional Dependencies"
    }

    fn evaluate(
        &self,
        model: &dyn TableEncoder,
        corpus: &[Table],
        ctx: &EvalContext,
    ) -> PropertyReport {
        let _span = obs::span(obs::Level::Info, "props", "P4")
            .with("model", model.name())
            .with("tables", corpus.len());
        let mut report = PropertyReport::new(self.id(), model.name());
        let mut s2_fd = Vec::new();
        let mut s2_nonfd = Vec::new();
        let mut rng = SplitMix64::new(ctx.seed ^ 0xFD);
        for table in corpus {
            let fds = discover_unary_fds(table, DiscoveryOptions::default());
            if fds.is_empty() {
                continue;
            }
            let enc = model.encode_table(table);
            let mut fd_count = 0usize;
            for fd in &fds {
                if let Some(s2) =
                    self.mean_group_variance(&enc, table, fd.determinant, fd.dependent)
                {
                    s2_fd.push(s2);
                    fd_count += 1;
                }
            }
            // Equal number of random non-FD pairs from the same table.
            let mut non_fd_pairs = Vec::new();
            for x in 0..table.num_cols() {
                for y in 0..table.num_cols() {
                    if x != y && !holds_unary(table, x, y) {
                        non_fd_pairs.push((x, y));
                    }
                }
            }
            rng.shuffle(&mut non_fd_pairs);
            let mut taken = 0;
            for &(x, y) in &non_fd_pairs {
                if taken >= fd_count {
                    break;
                }
                if let Some(s2) = self.mean_group_variance(&enc, table, x, y) {
                    s2_nonfd.push(s2);
                    taken += 1;
                }
            }
        }
        if !s2_fd.is_empty() {
            report.scalars.push(("mean_s2/fd".into(), mean(&s2_fd)));
        }
        if !s2_nonfd.is_empty() {
            report.scalars.push(("mean_s2/nonfd".into(), mean(&s2_nonfd)));
        }
        if !s2_fd.is_empty() && !s2_nonfd.is_empty() {
            // How separated are the two distributions? The paper's visual
            // "no clear separation" claim, quantified (KS D near 1 would
            // mean FDs are encoded; the paper's figures correspond to
            // moderate D with heavy overlap).
            let ks = observatory_stats::ks::ks_two_sample(&s2_fd, &s2_nonfd);
            report.scalars.push(("ks/statistic".into(), ks.statistic));
            report.scalars.push(("ks/p_value".into(), ks.p_value));
        }
        report.push_distribution("s2/fd", s2_fd);
        report.push_distribution("s2/nonfd", s2_nonfd);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use observatory_data::spider::SpiderConfig;
    use observatory_models::registry::model_by_name;

    fn corpus() -> Vec<Table> {
        SpiderConfig { num_tables: 3, rows: 16, seed: 9 }.generate().tables
    }

    #[test]
    fn produces_fd_and_nonfd_distributions() {
        let model = model_by_name("bert").unwrap();
        let report = FunctionalDependencies::default().evaluate(
            model.as_ref(),
            &corpus(),
            &EvalContext::default(),
        );
        let fd = report.distribution("s2/fd").expect("FD distribution");
        let nonfd = report.distribution("s2/nonfd").expect("non-FD distribution");
        assert!(!fd.values.is_empty());
        assert!(!nonfd.values.is_empty());
        assert!(fd.values.iter().all(|v| *v >= 0.0));
        assert!(report.scalar("mean_s2/fd").is_some());
    }

    #[test]
    fn l1_and_l2_both_work_and_differ() {
        let model = model_by_name("bert").unwrap();
        let ctx = EvalContext::default();
        let l2 = FunctionalDependencies::default().evaluate(model.as_ref(), &corpus(), &ctx);
        let l1 = FunctionalDependencies { distance: DistanceMetric::L1, ..Default::default() }
            .evaluate(model.as_ref(), &corpus(), &ctx);
        assert_ne!(l2.scalar("mean_s2/fd"), l1.scalar("mean_s2/fd"));
    }

    #[test]
    fn no_model_separates_fd_from_nonfd_cleanly() {
        // The paper's core P4 finding: the FD and non-FD variance
        // distributions overlap — models do not encode FDs as stable
        // translations. We assert the weak form: the FD distribution is
        // not uniformly below the non-FD one.
        let model = model_by_name("bert").unwrap();
        let report = FunctionalDependencies::default().evaluate(
            model.as_ref(),
            &corpus(),
            &EvalContext::default(),
        );
        let fd = report.distribution("s2/fd").unwrap();
        let nonfd = report.distribution("s2/nonfd").unwrap();
        let fd_max = fd.values.iter().copied().fold(f64::MIN, f64::max);
        let nonfd_min = nonfd.values.iter().copied().fold(f64::MAX, f64::min);
        assert!(fd_max > nonfd_min, "unexpectedly perfect FD separation");
    }

    #[test]
    fn models_without_cell_embeddings_produce_empty_reports() {
        let model = model_by_name("tapex").unwrap();
        let report = FunctionalDependencies::default().evaluate(
            model.as_ref(),
            &corpus(),
            &EvalContext::default(),
        );
        assert!(report.records.is_empty());
    }

    #[test]
    fn fd_free_corpus_is_empty_report() {
        // A table of two mutually-violating columns mines zero FDs.
        use observatory_table::{Column, Value};
        let t = Table::new(
            "v",
            vec![
                Column::new("a", vec![Value::Int(1), Value::Int(1), Value::Int(2), Value::Int(2)]),
                Column::new("b", vec![Value::Int(7), Value::Int(8), Value::Int(7), Value::Int(8)]),
            ],
        );
        let model = model_by_name("bert").unwrap();
        let report = FunctionalDependencies::default().evaluate(
            model.as_ref(),
            &[t],
            &EvalContext::default(),
        );
        assert!(report.records.is_empty());
    }
}
