//! Property 1 — Row Order Insignificance (paper §3.2, Measure 1;
//! Figures 5 and 6).
//!
//! A relational table is a *set* of rows, so row order should not leak
//! into embeddings. For each table we draw up to `max_permutations`
//! distinct row shuffles (the original order first), embed every variant,
//! and measure per level:
//!
//! - **cosine** similarity of each shuffled variant's embedding against
//!   the original order's;
//! - the **Albert–Zhang MCV** of the embedding sample (relative
//!   multivariate dispersion).
//!
//! Levels: column, row and table. Row-level tracking follows each original
//! data row through the permutation; rows that fall outside the token
//! budget in any variant are skipped so the sample stays paired.

use crate::framework::{EvalContext, Property, PropertyReport};
use crate::props::common::{cosines_and_mcv, invert_permutation};
use observatory_models::TableEncoder;
use observatory_obs as obs;
use observatory_table::perm::{permute_rows, sample_permutations, PERMUTATION_CAP};
use observatory_table::Table;

/// Property 1 evaluator.
#[derive(Debug, Clone)]
pub struct RowOrderInsignificance {
    /// Cap on sampled permutations per table (paper default 1000).
    pub max_permutations: usize,
}

impl Default for RowOrderInsignificance {
    fn default() -> Self {
        Self { max_permutations: PERMUTATION_CAP }
    }
}

impl Property for RowOrderInsignificance {
    fn id(&self) -> &'static str {
        "P1"
    }

    fn name(&self) -> &'static str {
        "Row Order Insignificance"
    }

    fn evaluate(
        &self,
        model: &dyn TableEncoder,
        corpus: &[Table],
        ctx: &EvalContext,
    ) -> PropertyReport {
        let _span = obs::span(obs::Level::Info, "props", "P1")
            .with("model", model.name())
            .with("tables", corpus.len())
            .with("max_permutations", self.max_permutations);
        let mut report = PropertyReport::new(self.id(), model.name());
        let mut col_cos = Vec::new();
        let mut col_mcv = Vec::new();
        let mut row_cos = Vec::new();
        let mut row_mcv = Vec::new();
        let mut tbl_cos = Vec::new();
        let mut tbl_mcv = Vec::new();

        for (t_idx, table) in corpus.iter().enumerate() {
            // Cancellation checkpoint: between permutation batches (one
            // batch = every variant of one table), so a cancel never
            // interrupts an encode_batch mid-flight.
            if ctx.control.should_stop() {
                break;
            }
            let perms = sample_permutations(
                table.num_rows(),
                self.max_permutations,
                ctx.seed ^ (t_idx as u64).wrapping_mul(0x9E37_79B9),
            );
            if perms.len() < 2 {
                ctx.control.advance(1);
                continue;
            }
            let variants: Vec<Table> = perms.iter().map(|p| permute_rows(table, p)).collect();
            let encodings = ctx.engine.encode_batch(model, &variants);
            let inverses: Vec<Vec<usize>> = perms.iter().map(|p| invert_permutation(p)).collect();

            // Column level: column identity is untouched by row shuffles.
            for j in 0..table.num_cols() {
                let embs: Vec<Vec<f64>> = encodings.iter().filter_map(|e| e.column(j)).collect();
                if let Some((cos, mcv)) = paired(&embs, encodings.len()) {
                    col_cos.extend(cos);
                    col_mcv.push(mcv);
                }
            }
            // Row level: original row r sits at position inv[r] after the
            // shuffle; only rows inside every variant's budget are paired.
            for r in 0..table.num_rows() {
                let embs: Vec<Vec<f64>> =
                    encodings.iter().zip(&inverses).filter_map(|(e, inv)| e.row(inv[r])).collect();
                if let Some((cos, mcv)) = paired(&embs, encodings.len()) {
                    row_cos.extend(cos);
                    row_mcv.push(mcv);
                }
            }
            // Table level.
            let embs: Vec<Vec<f64>> = encodings.iter().filter_map(|e| e.table()).collect();
            if let Some((cos, mcv)) = paired(&embs, encodings.len()) {
                tbl_cos.extend(cos);
                tbl_mcv.push(mcv);
            }
            ctx.control.advance(1);
        }

        report.push_distribution("column/cosine", col_cos);
        report.push_distribution("column/mcv", col_mcv);
        report.push_distribution("row/cosine", row_cos);
        report.push_distribution("row/mcv", row_mcv);
        report.push_distribution("table/cosine", tbl_cos);
        report.push_distribution("table/mcv", tbl_mcv);
        report
    }
}

/// Measures only when every variant produced the embedding (paired sample).
fn paired(embs: &[Vec<f64>], expected: usize) -> Option<(Vec<f64>, f64)> {
    if embs.len() != expected {
        return None;
    }
    cosines_and_mcv(embs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use observatory_data::wikitables::WikiTablesConfig;
    use observatory_models::registry::model_by_name;

    fn corpus() -> Vec<Table> {
        WikiTablesConfig { num_tables: 2, min_rows: 4, max_rows: 5, seed: 3 }.generate()
    }

    #[test]
    fn produces_all_levels_for_bert() {
        let model = model_by_name("bert").unwrap();
        let prop = RowOrderInsignificance { max_permutations: 6 };
        let report = prop.evaluate(model.as_ref(), &corpus(), &EvalContext::default());
        for label in
            ["column/cosine", "column/mcv", "row/cosine", "row/mcv", "table/cosine", "table/mcv"]
        {
            assert!(report.distribution(label).is_some(), "missing {label}");
        }
        let cos = report.distribution("column/cosine").unwrap();
        assert!(cos.values.iter().all(|v| (-1.0..=1.0).contains(v)));
        let mcv = report.distribution("column/mcv").unwrap();
        assert!(mcv.values.iter().all(|v| *v >= 0.0));
    }

    #[test]
    fn capability_limited_models_produce_partial_reports() {
        // TaPEx exposes only rows and tables: no column distributions.
        let model = model_by_name("tapex").unwrap();
        let prop = RowOrderInsignificance { max_permutations: 4 };
        let report = prop.evaluate(model.as_ref(), &corpus(), &EvalContext::default());
        assert!(report.distribution("column/cosine").is_none());
        assert!(report.distribution("row/cosine").is_some());
        assert!(report.distribution("table/cosine").is_some());
    }

    #[test]
    fn row_template_model_is_perfectly_row_stable() {
        // TapTap encodes rows independently, so tracked rows are bitwise
        // identical across shuffles: cosine exactly 1 (Table 2 excludes it
        // for being trivially out of scope — this asserts the mechanism).
        let model = model_by_name("taptap").unwrap();
        let prop = RowOrderInsignificance { max_permutations: 4 };
        let report = prop.evaluate(model.as_ref(), &corpus(), &EvalContext::default());
        let cos = report.distribution("row/cosine").unwrap();
        assert!(cos.values.iter().all(|v| (v - 1.0).abs() < 1e-9));
    }

    #[test]
    fn identity_only_corpus_is_empty_report() {
        // A 1-row table has a single permutation: nothing to measure.
        let t = Table::new(
            "one",
            vec![observatory_table::Column::new("a", vec![observatory_table::Value::Int(1)])],
        );
        let model = model_by_name("bert").unwrap();
        let prop = RowOrderInsignificance::default();
        let report = prop.evaluate(model.as_ref(), &[t], &EvalContext::default());
        assert!(report.records.is_empty());
    }

    #[test]
    fn deterministic() {
        let model = model_by_name("bert").unwrap();
        let prop = RowOrderInsignificance { max_permutations: 4 };
        let ctx = EvalContext::default();
        let a = prop.evaluate(model.as_ref(), &corpus(), &ctx);
        let b = prop.evaluate(model.as_ref(), &corpus(), &ctx);
        assert_eq!(a, b);
    }
}
