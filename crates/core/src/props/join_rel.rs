//! Property 3 — Join Relationship (paper §3.2, Measure 3; Table 3 and
//! Figure 9).
//!
//! Join candidates are classically found by value overlap (containment,
//! Jaccard) and, more recently, by embedding similarity. This property
//! tests the postulate that the two agree: the Spearman rank correlation
//! between an overlap measure `R(C_q, C_c)` and the embedding cosine
//! `cos(E(C_q), E(C_c))` over pairs of joinable columns.
//!
//! **Corpus convention**: the corpus holds the pairs as consecutive
//! single-column tables — table `2i` is pair `i`'s query column, table
//! `2i+1` its candidate. [`pairs_to_corpus`] builds this layout from the
//! NextiaJD-style generator output.

use crate::framework::{EvalContext, Property, PropertyReport, Scatter};
use observatory_data::nextiajd::JoinPair;
use observatory_linalg::vector::cosine;
use observatory_models::TableEncoder;
use observatory_obs as obs;
use observatory_search::overlap::{containment, jaccard, multiset_jaccard};
use observatory_stats::spearman::spearman_rho;
use observatory_table::Table;

/// Property 3 evaluator.
#[derive(Debug, Clone, Default)]
pub struct JoinRelationship;

/// Lay out join pairs as the corpus convention this property expects.
pub fn pairs_to_corpus(pairs: &[JoinPair]) -> Vec<Table> {
    let mut corpus = Vec::with_capacity(pairs.len() * 2);
    for (i, p) in pairs.iter().enumerate() {
        corpus.push(Table::new(format!("pair{i}_query"), vec![p.query.clone()]));
        corpus.push(Table::new(format!("pair{i}_candidate"), vec![p.candidate.clone()]));
    }
    corpus
}

impl Property for JoinRelationship {
    fn id(&self) -> &'static str {
        "P3"
    }

    fn name(&self) -> &'static str {
        "Join Relationship"
    }

    fn evaluate(
        &self,
        model: &dyn TableEncoder,
        corpus: &[Table],
        _ctx: &EvalContext,
    ) -> PropertyReport {
        let _span = obs::span(obs::Level::Info, "props", "P3")
            .with("model", model.name())
            .with("tables", corpus.len());
        let mut report = PropertyReport::new(self.id(), model.name());
        let mut cosines = Vec::new();
        let mut contain = Vec::new();
        let mut jac = Vec::new();
        let mut mjac = Vec::new();
        for pair in corpus.chunks_exact(2) {
            let (qt, ct) = (&pair[0], &pair[1]);
            let (Some(eq), Some(ec)) =
                (model.column_embedding(qt, 0), model.column_embedding(ct, 0))
            else {
                continue;
            };
            cosines.push(cosine(&eq, &ec));
            let (qc, cc) = (&qt.columns[0], &ct.columns[0]);
            contain.push(containment(qc, cc));
            jac.push(jaccard(qc, cc));
            mjac.push(multiset_jaccard(qc, cc));
        }
        if cosines.len() >= 4 {
            for (name, overlap) in
                [("containment", &contain), ("jaccard", &jac), ("multiset_jaccard", &mjac)]
            {
                let r = spearman_rho(overlap, &cosines);
                report.scalars.push((format!("spearman/{name}"), r.rho));
                report.scalars.push((format!("p_value/{name}"), r.p_value));
            }
            report.scatters.push(Scatter {
                label: "multiset-jaccard-vs-cosine".into(),
                points: mjac.iter().copied().zip(cosines.iter().copied()).collect(),
            });
        }
        report.push_distribution("cosine", cosines);
        report.push_distribution("containment", contain);
        report.push_distribution("jaccard", jac);
        report.push_distribution("multiset_jaccard", mjac);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use observatory_data::nextiajd::NextiaJdConfig;
    use observatory_models::registry::model_by_name;

    fn corpus() -> Vec<Table> {
        pairs_to_corpus(&NextiaJdConfig { num_pairs: 24, ..Default::default() }.generate())
    }

    #[test]
    fn corpus_layout() {
        let pairs = NextiaJdConfig { num_pairs: 3, ..Default::default() }.generate();
        let corpus = pairs_to_corpus(&pairs);
        assert_eq!(corpus.len(), 6);
        assert!(corpus[0].name.ends_with("query"));
        assert!(corpus[1].name.ends_with("candidate"));
        assert_eq!(corpus.iter().map(Table::num_cols).max(), Some(1));
    }

    #[test]
    fn produces_three_spearman_coefficients() {
        let model = model_by_name("bert").unwrap();
        let report = JoinRelationship.evaluate(model.as_ref(), &corpus(), &EvalContext::default());
        for name in ["containment", "jaccard", "multiset_jaccard"] {
            let rho = report.scalar(&format!("spearman/{name}")).unwrap();
            assert!((-1.0..=1.0).contains(&rho), "{name}: {rho}");
        }
        assert_eq!(report.scatters.len(), 1);
        assert_eq!(report.scatters[0].points.len(), 24);
    }

    #[test]
    fn overlap_positively_correlates_with_embedding_cosine() {
        // The postulate from the join-discovery literature the property
        // tests (and the paper confirms for all models in Table 3).
        let model = model_by_name("bert").unwrap();
        let report = JoinRelationship.evaluate(model.as_ref(), &corpus(), &EvalContext::default());
        let rho = report.scalar("spearman/multiset_jaccard").unwrap();
        assert!(rho > 0.3, "expected a clear positive correlation, got {rho}");
    }

    #[test]
    fn multiset_jaccard_bounded_by_half() {
        let model = model_by_name("bert").unwrap();
        let report = JoinRelationship.evaluate(model.as_ref(), &corpus(), &EvalContext::default());
        let mj = report.distribution("multiset_jaccard").unwrap();
        assert!(mj.values.iter().all(|v| *v <= 0.5 + 1e-12));
    }

    #[test]
    fn row_only_model_yields_no_correlations() {
        // TaPEx exposes no column embeddings: the measure has nothing to
        // correlate (this is how Table 3 ends up with six models).
        let model = model_by_name("tapex").unwrap();
        let report = JoinRelationship.evaluate(model.as_ref(), &corpus(), &EvalContext::default());
        assert!(report.scalars.is_empty());
        assert!(report.distribution("cosine").is_none());
    }
}
