//! Property 7 — Perturbation Robustness (paper §3.3, Measure 7;
//! Figure 13).
//!
//! Semantics-preserving perturbations (Dr.Spider's schema-synonym,
//! schema-abbreviation, column-equivalence) should not move embeddings of
//! the perturbed columns. The measure: cosine similarity between each
//! original column embedding and its perturbed counterpart, with a
//! distribution per perturbation class and a grand-mean scalar per class.

use crate::framework::{EvalContext, Property, PropertyReport};
use observatory_data::perturb::{perturb_table, Perturbation};
use observatory_linalg::vector::cosine;
use observatory_models::TableEncoder;
use observatory_obs as obs;
use observatory_stats::descriptive::mean;
use observatory_table::Table;

/// Property 7 evaluator.
#[derive(Debug, Clone)]
pub struct PerturbationRobustness {
    /// Perturbation classes to apply (Figure 13 uses the two schema-level
    /// classes; column-equivalence is available too).
    pub kinds: Vec<Perturbation>,
}

impl Default for PerturbationRobustness {
    fn default() -> Self {
        Self { kinds: vec![Perturbation::SchemaSynonym, Perturbation::SchemaAbbreviation] }
    }
}

impl Property for PerturbationRobustness {
    fn id(&self) -> &'static str {
        "P7"
    }

    fn name(&self) -> &'static str {
        "Perturbation Robustness"
    }

    fn evaluate(
        &self,
        model: &dyn TableEncoder,
        corpus: &[Table],
        ctx: &EvalContext,
    ) -> PropertyReport {
        let _span = obs::span(obs::Level::Info, "props", "P7")
            .with("model", model.name())
            .with("tables", corpus.len());
        let mut report = PropertyReport::new(self.id(), model.name());
        for &kind in &self.kinds {
            let mut sims = Vec::new();
            // Interleave (original, perturbed) pairs into one batch: the
            // engine parallelizes across tables, and the cache serves the
            // original-table encodings across perturbation kinds.
            let mut variants: Vec<Table> = Vec::new();
            let mut changed_cols: Vec<Vec<usize>> = Vec::new();
            for table in corpus {
                let (perturbed, changed) = perturb_table(table, kind);
                if changed.is_empty() {
                    continue;
                }
                variants.push(table.clone());
                variants.push(perturbed);
                changed_cols.push(changed);
            }
            let encodings = ctx.engine.encode_batch(model, &variants);
            for (pair, changed) in encodings.chunks_exact(2).zip(&changed_cols) {
                let (enc_orig, enc_pert) = (&pair[0], &pair[1]);
                for &j in changed {
                    if let (Some(a), Some(b)) = (enc_orig.column(j), enc_pert.column(j)) {
                        sims.push(cosine(&a, &b));
                    }
                }
            }
            if !sims.is_empty() {
                report.scalars.push((format!("mean/{}", kind.label()), mean(&sims)));
            }
            report.push_distribution(kind.label(), sims);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use observatory_data::wikitables::WikiTablesConfig;
    use observatory_models::registry::model_by_name;

    fn corpus() -> Vec<Table> {
        WikiTablesConfig { num_tables: 4, min_rows: 5, max_rows: 6, seed: 31 }.generate()
    }

    #[test]
    fn schema_perturbations_measured() {
        let model = model_by_name("bert").unwrap();
        let report = PerturbationRobustness::default().evaluate(
            model.as_ref(),
            &corpus(),
            &EvalContext::default(),
        );
        for label in ["synonym", "abbreviation"] {
            let d = report.distribution(label).unwrap_or_else(|| panic!("missing {label}"));
            assert!(!d.values.is_empty());
            assert!(d.values.iter().all(|v| (-1.0..=1.0).contains(v)));
            // Schema renames move embeddings some, not entirely.
            assert!(report.scalar(&format!("mean/{label}")).unwrap() > 0.3);
        }
    }

    #[test]
    fn doduo_is_exactly_invariant_to_schema_perturbations() {
        // DODUO ignores headers: "DODUO does not show any variance because
        // DODUO only takes in data values" (§5.7).
        let model = model_by_name("doduo").unwrap();
        let report = PerturbationRobustness::default().evaluate(
            model.as_ref(),
            &corpus(),
            &EvalContext::default(),
        );
        for label in ["synonym", "abbreviation"] {
            let d = report.distribution(label).unwrap();
            assert!(d.values.iter().all(|v| (v - 1.0).abs() < 1e-9), "{label}: {:?}", d.summary());
        }
    }

    #[test]
    fn column_equivalence_perturbs_more_than_schema_renames() {
        // Content-level rewrites change data values, which must move
        // embeddings at least as much as renames that keep values intact.
        let model = model_by_name("bert").unwrap();
        let prop = PerturbationRobustness {
            kinds: vec![Perturbation::SchemaSynonym, Perturbation::ColumnEquivalence],
        };
        let report = prop.evaluate(model.as_ref(), &corpus(), &EvalContext::default());
        let syn = report.scalar("mean/synonym").unwrap();
        let eqv = report.scalar("mean/column-equivalence").unwrap();
        assert!(eqv < syn, "column-equivalence {eqv:.3} should move more than synonym {syn:.3}");
    }

    #[test]
    fn unperturbable_corpus_gives_empty_report() {
        use observatory_table::{Column, Value};
        let t = Table::new("t", vec![Column::new("zzz", vec![Value::text("x")])]);
        let model = model_by_name("bert").unwrap();
        let report = PerturbationRobustness { kinds: vec![Perturbation::SchemaSynonym] }.evaluate(
            model.as_ref(),
            &[t],
            &EvalContext::default(),
        );
        assert!(report.records.is_empty());
    }
}
