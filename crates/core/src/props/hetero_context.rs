//! Property 8 — Heterogeneous Context (paper §3.3, Measure 8; Table 5).
//!
//! Tables mix textual and non-textual data; context (a subject column, the
//! neighbours, the whole table) disambiguates the non-textual parts —
//! Figure 4's "45.00" is probably a price because "RON" sits next to it.
//! The measure compares single-column embeddings against contextual
//! embeddings of the same column under four input settings:
//!
//! (a) only the column; (b) + subject column (or the first textual column
//! as proxy); (c) + immediate neighbours; (d) the entire table.
//!
//! One cosine distribution per (context setting × textual/non-textual).

use crate::framework::{EvalContext, Property, PropertyReport};
use crate::props::common::column_as_table;
use observatory_linalg::vector::cosine;
use observatory_models::TableEncoder;
use observatory_obs as obs;
use observatory_table::subject::{neighbor_columns, subject_column};
use observatory_table::Table;

/// Property 8 evaluator.
#[derive(Debug, Clone, Default)]
pub struct HeterogeneousContext;

/// The three contextual settings compared against the single column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContextSetting {
    SubjectColumn,
    NeighboringColumns,
    EntireTable,
}

impl ContextSetting {
    /// All settings in the paper's order.
    pub const ALL: [ContextSetting; 3] = [
        ContextSetting::SubjectColumn,
        ContextSetting::NeighboringColumns,
        ContextSetting::EntireTable,
    ];

    /// Label used in report records.
    pub fn label(&self) -> &'static str {
        match self {
            ContextSetting::SubjectColumn => "subject",
            ContextSetting::NeighboringColumns => "neighbors",
            ContextSetting::EntireTable => "table",
        }
    }
}

/// Whether a column counts as textual for the report split: by annotation
/// when present (SOTAB), by value inspection otherwise.
fn is_textual(col: &observatory_table::Column) -> bool {
    match col.semantic_type.as_deref() {
        Some(ty) => observatory_data::sotab::SemanticType::ALL
            .iter()
            .find(|t| t.label() == ty)
            .map_or_else(|| col.is_textual(), |t| t.is_textual()),
        None => col.is_textual(),
    }
}

impl Property for HeterogeneousContext {
    fn id(&self) -> &'static str {
        "P8"
    }

    fn name(&self) -> &'static str {
        "Heterogeneous Context"
    }

    fn evaluate(
        &self,
        model: &dyn TableEncoder,
        corpus: &[Table],
        _ctx: &EvalContext,
    ) -> PropertyReport {
        let _span = obs::span(obs::Level::Info, "props", "P8")
            .with("model", model.name())
            .with("tables", corpus.len());
        let mut report = PropertyReport::new(self.id(), model.name());
        // records[setting][textual? 1 : 0]
        let mut values: Vec<[Vec<f64>; 2]> =
            ContextSetting::ALL.iter().map(|_| [Vec::new(), Vec::new()]).collect();
        for table in corpus {
            let subject = subject_column(table);
            let full_enc = model.encode_table(table);
            for j in 0..table.num_cols() {
                let col = &table.columns[j];
                let Some(single) = model.column_embedding(&column_as_table("single", col), 0)
                else {
                    continue;
                };
                let slot = usize::from(is_textual(col));
                for (si, setting) in ContextSetting::ALL.iter().enumerate() {
                    let contextual = match setting {
                        ContextSetting::SubjectColumn => {
                            let Some(s) = subject else { continue };
                            if s == j {
                                continue;
                            }
                            model.encode_table(&table.project(&[s, j])).column(1)
                        }
                        ContextSetting::NeighboringColumns => {
                            let mut cols = neighbor_columns(table, j);
                            if cols.is_empty() {
                                continue;
                            }
                            let pos = cols.iter().filter(|&&c| c < j).count();
                            cols.insert(pos, j);
                            model.encode_table(&table.project(&cols)).column(pos)
                        }
                        ContextSetting::EntireTable => full_enc.column(j),
                    };
                    if let Some(c) = contextual {
                        values[si][slot].push(cosine(&single, &c));
                    }
                }
            }
        }
        for (si, setting) in ContextSetting::ALL.iter().enumerate() {
            let [non_textual, textual] = &values[si];
            report
                .push_distribution(format!("{}/non-textual", setting.label()), non_textual.clone());
            report.push_distribution(format!("{}/textual", setting.label()), textual.clone());
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use observatory_data::sotab::SotabConfig;
    use observatory_models::registry::model_by_name;
    use observatory_stats::descriptive::mean;

    fn corpus() -> Vec<Table> {
        SotabConfig { num_tables: 6, rows: 6, seed: 77 }.generate()
    }

    #[test]
    fn all_six_distributions_present() {
        let model = model_by_name("bert").unwrap();
        let report =
            HeterogeneousContext.evaluate(model.as_ref(), &corpus(), &EvalContext::default());
        for setting in ["subject", "neighbors", "table"] {
            for split in ["textual", "non-textual"] {
                let label = format!("{setting}/{split}");
                let d = report.distribution(&label).unwrap_or_else(|| panic!("missing {label}"));
                assert!(d.values.iter().all(|v| (-1.0..=1.0).contains(v)));
            }
        }
    }

    #[test]
    fn entire_table_context_changes_embeddings_most() {
        // Paper Table 5: "incorporating context, especially the entire
        // table, can change column embeddings significantly".
        let model = model_by_name("bert").unwrap();
        let report =
            HeterogeneousContext.evaluate(model.as_ref(), &corpus(), &EvalContext::default());
        let subject = mean(&report.distribution("subject/non-textual").unwrap().values);
        let table = mean(&report.distribution("table/non-textual").unwrap().values);
        assert!(
            table < subject,
            "entire-table context {table:.4} should move embeddings more than subject context {subject:.4}"
        );
    }

    #[test]
    fn context_changes_embeddings_at_all() {
        let model = model_by_name("tapas").unwrap();
        let report =
            HeterogeneousContext.evaluate(model.as_ref(), &corpus(), &EvalContext::default());
        let table = report.distribution("table/non-textual").unwrap();
        assert!(table.values.iter().any(|v| *v < 1.0 - 1e-6));
    }

    #[test]
    fn single_column_tables_yield_nothing() {
        use observatory_table::{Column, Value};
        let t = Table::new("t", vec![Column::new("a", vec![Value::Int(1), Value::Int(2)])]);
        let model = model_by_name("bert").unwrap();
        let report = HeterogeneousContext.evaluate(model.as_ref(), &[t], &EvalContext::default());
        // No subject-other column, no neighbours; only entire-table — which
        // equals the single column itself here, cosine 1.
        if let Some(d) = report.distribution("table/non-textual") {
            assert!(d.values.iter().all(|v| *v > 0.99));
        }
    }
}
