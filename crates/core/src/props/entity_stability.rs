//! Property 6 — Entity Stability (paper §3.3, Measure 6; Figure 12).
//!
//! Borrowing the NLP notion of embedding stability: how much do the
//! K-nearest-neighbour sets of query entities agree between two embedding
//! spaces? For each model, every entity mention in the corpus is embedded
//! (entity level); for each query entity the K nearest neighbours are
//! retrieved in each space, and stability is the average pairwise percent
//! overlap. Unlike the other properties this one compares *two* models, so
//! it exposes a pairwise API plus a matrix helper for the Figure 12
//! heatmaps.

use crate::framework::{EvalContext, PairwiseProperty};
use observatory_models::TableEncoder;
use observatory_obs as obs;
use observatory_search::knn::{neighbor_overlap, KnnIndex};
use observatory_table::subject::subject_column;
use observatory_table::Table;
use std::collections::HashMap;

/// Property 6 evaluator.
#[derive(Debug, Clone)]
pub struct EntityStability {
    /// Neighbourhood size K (paper uses K = 10).
    pub k: usize,
    /// Query entities for the [`PairwiseProperty`] interface; the
    /// lower-level [`EntityStability::stability_between`] takes queries
    /// explicitly instead.
    pub queries: Vec<String>,
}

impl Default for EntityStability {
    fn default() -> Self {
        Self { k: 10, queries: Vec::new() }
    }
}

impl PairwiseProperty for EntityStability {
    fn id(&self) -> &'static str {
        "P6"
    }

    fn name(&self) -> &'static str {
        "Entity Stability"
    }

    fn evaluate_pair(
        &self,
        model_a: &dyn TableEncoder,
        model_b: &dyn TableEncoder,
        corpus: &[Table],
        ctx: &EvalContext,
    ) -> Option<f64> {
        let _span = obs::span(obs::Level::Info, "props", "P6")
            .with("model_a", model_a.name())
            .with("model_b", model_b.name())
            .with("tables", corpus.len());
        self.stability_between(model_a, model_b, corpus, &self.queries, ctx)
    }
}

/// The entity space of one model over a corpus: an index of mention
/// embeddings plus the mention → embedding map for queries.
pub struct EntitySpace {
    index: KnnIndex,
    by_mention: HashMap<String, Vec<f64>>,
}

impl EntityStability {
    /// Embed every subject-column entity mention of the corpus with
    /// `model`. The first occurrence of each distinct mention defines its
    /// embedding (mentions are context-dependent; using a fixed occurrence
    /// keeps the two spaces aligned on identical inputs).
    ///
    /// Returns `None` when the model exposes no entity embeddings.
    pub fn build_space(&self, model: &dyn TableEncoder, corpus: &[Table]) -> Option<EntitySpace> {
        let mut by_mention: HashMap<String, Vec<f64>> = HashMap::new();
        let mut order: Vec<String> = Vec::new();
        for table in corpus {
            let Some(subj) = subject_column(table) else { continue };
            let enc = model.encode_table(table);
            for r in 0..enc.rows_encoded {
                let mention = table.columns[subj].values[r].to_text();
                if mention.is_empty() || by_mention.contains_key(&mention) {
                    continue;
                }
                if let Some(emb) = enc.entity(r, subj) {
                    by_mention.insert(mention.clone(), emb);
                    order.push(mention);
                }
            }
        }
        if by_mention.is_empty() {
            return None;
        }
        let mut index = KnnIndex::new(model.dim());
        for mention in &order {
            index.insert(mention.clone(), &by_mention[mention]);
        }
        Some(EntitySpace { index, by_mention })
    }

    /// Average entity stability of `queries` between two models over a
    /// corpus: `1/m Σ |s₁ ∩ s₂| / K` (Measure 6). Queries absent from
    /// either space are skipped; returns `None` when either model lacks
    /// entity embeddings or no query is resolvable.
    pub fn stability_between(
        &self,
        model_a: &dyn TableEncoder,
        model_b: &dyn TableEncoder,
        corpus: &[Table],
        queries: &[String],
        _ctx: &EvalContext,
    ) -> Option<f64> {
        let space_a = self.build_space(model_a, corpus)?;
        let space_b = self.build_space(model_b, corpus)?;
        let mut total = 0.0;
        let mut m = 0usize;
        for q in queries {
            let (Some(ea), Some(eb)) = (space_a.by_mention.get(q), space_b.by_mention.get(q))
            else {
                continue;
            };
            let s1 = space_a.index.neighbor_keys(ea, self.k, Some(q));
            let s2 = space_b.index.neighbor_keys(eb, self.k, Some(q));
            total += neighbor_overlap(&s1, &s2);
            m += 1;
        }
        if m == 0 {
            None
        } else {
            Some(total / m as f64)
        }
    }

    /// Pairwise stability matrix across models (Figure 12's heatmap).
    /// Entry (i, j) is the average stability between models i and j;
    /// diagonal entries are 1 by definition. Models without entity
    /// embeddings produce NaN rows/columns.
    pub fn stability_matrix(
        &self,
        models: &[Box<dyn TableEncoder>],
        corpus: &[Table],
        queries: &[String],
        ctx: &EvalContext,
    ) -> Vec<Vec<f64>> {
        let n = models.len();
        let mut m = vec![vec![f64::NAN; n]; n];
        for i in 0..n {
            for j in i..n {
                let v = if i == j {
                    self.stability_between(
                        models[i].as_ref(),
                        models[j].as_ref(),
                        corpus,
                        queries,
                        ctx,
                    )
                    .map(|_| 1.0)
                } else {
                    self.stability_between(
                        models[i].as_ref(),
                        models[j].as_ref(),
                        corpus,
                        queries,
                        ctx,
                    )
                };
                let v = v.unwrap_or(f64::NAN);
                m[i][j] = v;
                m[j][i] = v;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use observatory_data::entities::entity_domains;
    use observatory_models::registry::model_by_name;

    #[test]
    fn identical_models_perfectly_stable() {
        let domain = &entity_domains(1)[0];
        let bert_a = model_by_name("bert").unwrap();
        let bert_b = model_by_name("bert").unwrap();
        let s = EntityStability { k: 5, ..Default::default() }
            .stability_between(
                bert_a.as_ref(),
                bert_b.as_ref(),
                &domain.corpus,
                &domain.queries,
                &EvalContext::default(),
            )
            .unwrap();
        assert!((s - 1.0).abs() < 1e-12, "same model ⇒ stability 1, got {s}");
    }

    #[test]
    fn different_models_partially_stable() {
        let domain = &entity_domains(1)[0];
        let a = model_by_name("bert").unwrap();
        let b = model_by_name("t5").unwrap();
        let s = EntityStability { k: 5, ..Default::default() }
            .stability_between(
                a.as_ref(),
                b.as_ref(),
                &domain.corpus,
                &domain.queries,
                &EvalContext::default(),
            )
            .unwrap();
        assert!((0.0..=1.0).contains(&s));
        assert!(s < 1.0, "distinct spaces should not agree perfectly: {s}");
    }

    #[test]
    fn stability_is_symmetric() {
        let domain = &entity_domains(2)[1];
        let a = model_by_name("bert").unwrap();
        let b = model_by_name("roberta").unwrap();
        let prop = EntityStability { k: 4, ..Default::default() };
        let ctx = EvalContext::default();
        let ab = prop
            .stability_between(a.as_ref(), b.as_ref(), &domain.corpus, &domain.queries, &ctx)
            .unwrap();
        let ba = prop
            .stability_between(b.as_ref(), a.as_ref(), &domain.corpus, &domain.queries, &ctx)
            .unwrap();
        assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn rowonly_model_has_no_space() {
        let domain = &entity_domains(1)[0];
        let tapex = model_by_name("tapex").unwrap();
        assert!(EntityStability::default().build_space(tapex.as_ref(), &domain.corpus).is_none());
    }

    #[test]
    fn matrix_shape_and_diagonal() {
        let domain = &entity_domains(3)[2];
        let models: Vec<_> = ["bert", "t5"].iter().map(|n| model_by_name(n).unwrap()).collect();
        let m = EntityStability { k: 3, ..Default::default() }.stability_matrix(
            &models,
            &domain.corpus,
            &domain.queries,
            &EvalContext::default(),
        );
        assert_eq!(m.len(), 2);
        assert_eq!(m[0][0], 1.0);
        assert_eq!(m[1][1], 1.0);
        assert_eq!(m[0][1], m[1][0]);
    }
}
