//! The eight primitive properties (paper §3.2–§3.3).

pub mod col_order;
pub mod common;
pub mod entity_stability;
pub mod fd;
pub mod hetero_context;
pub mod join_rel;
pub mod perturbation;
pub mod row_order;
pub mod sample_fidelity;
