//! Shared measure plumbing for the permutation-based properties.

use observatory_linalg::vector::cosine;
use observatory_linalg::Matrix;
use observatory_stats::mcv::albert_zhang_mcv;
use observatory_table::{Column, Table};

/// Cosine similarities of each embedding against the first (the original
/// order / full data reference), plus the Albert–Zhang MCV over the whole
/// set — the paired measures used by Properties 1, 2 and 5.
///
/// Returns `None` for fewer than two embeddings.
pub fn cosines_and_mcv(embeddings: &[Vec<f64>]) -> Option<(Vec<f64>, f64)> {
    if embeddings.len() < 2 {
        return None;
    }
    let reference = &embeddings[0];
    let cosines: Vec<f64> = embeddings[1..].iter().map(|e| cosine(reference, e)).collect();
    let mcv = albert_zhang_mcv(&Matrix::from_rows(embeddings));
    Some((cosines, mcv))
}

/// Inverse of a permutation: `inv[p[i]] = i`.
pub fn invert_permutation(p: &[usize]) -> Vec<usize> {
    let mut inv = vec![0usize; p.len()];
    for (i, &v) in p.iter().enumerate() {
        inv[v] = i;
    }
    inv
}

/// Wrap a single column as a standalone single-column table (the unit of
/// encoding for Properties 3, 5 and 8's "only the column itself" setting).
pub fn column_as_table(name: &str, column: &Column) -> Table {
    Table::new(name, vec![column.clone()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use observatory_table::Value;

    #[test]
    fn cosines_reference_is_first() {
        let embs = vec![vec![1.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0]];
        let (cos, mcv) = cosines_and_mcv(&embs).unwrap();
        assert_eq!(cos, vec![1.0, 0.0]);
        assert!(mcv > 0.0);
    }

    #[test]
    fn too_few_embeddings_is_none() {
        assert!(cosines_and_mcv(&[vec![1.0]]).is_none());
        assert!(cosines_and_mcv(&[]).is_none());
    }

    #[test]
    fn permutation_inversion() {
        let p = vec![2, 0, 1];
        let inv = invert_permutation(&p);
        assert_eq!(inv, vec![1, 2, 0]);
        for i in 0..p.len() {
            assert_eq!(p[inv[i]], i);
        }
    }

    #[test]
    fn column_wrapping() {
        let c = Column::new("x", vec![Value::Int(1)]);
        let t = column_as_table("t", &c);
        assert_eq!(t.num_cols(), 1);
        assert_eq!(t.columns[0].header, "x");
    }
}
