//! Plain-text rendering of reports — the harness binaries print the same
//! rows/series the paper's tables and figures encode.

use crate::framework::PropertyReport;
use observatory_stats::descriptive::{boxplot_stats, Histogram};

/// Render a markdown-style table. All rows must have `headers.len()` cells.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "render_table: ragged row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let push_row = |out: &mut String, cells: &[String]| {
        out.push('|');
        for (cell, w) in cells.iter().zip(&widths) {
            out.push(' ');
            out.push_str(cell);
            out.extend(std::iter::repeat_n(' ', w - cell.chars().count() + 1));
            out.push('|');
        }
        out.push('\n');
    };
    push_row(&mut out, &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    out.push('|');
    for w in &widths {
        out.push_str(&"-".repeat(w + 2));
        out.push('|');
    }
    out.push('\n');
    for row in rows {
        push_row(&mut out, row);
    }
    out
}

/// Format a float with 3 decimals, rendering NaN as `-`.
pub fn fmt(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else {
        format!("{v:.3}")
    }
}

/// Render one property report: box-plot statistics per distribution,
/// scalar table, and text histograms (the paper's distribution plots in
/// terminal form).
pub fn render_report(report: &PropertyReport) -> String {
    let mut out = format!("## {} — {}\n\n", report.property, report.model);
    if !report.records.is_empty() {
        let rows: Vec<Vec<String>> = report
            .records
            .iter()
            .map(|d| {
                let b = boxplot_stats(&d.values);
                let s = &b.summary;
                vec![
                    d.label.clone(),
                    d.values.len().to_string(),
                    fmt(s.min),
                    fmt(b.whisker_lo),
                    fmt(s.q1),
                    fmt(s.median),
                    fmt(s.q3),
                    fmt(b.whisker_hi),
                    fmt(s.max),
                ]
            })
            .collect();
        out.push_str(&render_table(
            &["measure", "n", "min", "whisk-", "q1", "median", "q3", "whisk+", "max"],
            &rows,
        ));
        out.push('\n');
        for d in &report.records {
            let finite: Vec<f64> = d.values.iter().copied().filter(|v| v.is_finite()).collect();
            if finite.len() >= 2 {
                let (lo, hi) = bounds(&finite);
                let h = Histogram::new(&finite, lo, hi, 24);
                out.push_str(&format!(
                    "{:<28} [{:>8.3}, {:>8.3}] {}\n",
                    d.label,
                    lo,
                    hi,
                    h.render()
                ));
            }
        }
        out.push('\n');
    }
    if !report.scalars.is_empty() {
        let rows: Vec<Vec<String>> =
            report.scalars.iter().map(|(k, v)| vec![k.clone(), fmt(*v)]).collect();
        out.push_str(&render_table(&["scalar", "value"], &rows));
        out.push('\n');
    }
    out
}

fn bounds(xs: &[f64]) -> (f64, f64) {
    let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if lo == hi {
        (lo - 0.5, hi + 0.5)
    } else {
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_and_shape() {
        let t = render_table(
            &["model", "score"],
            &[vec!["bert".into(), "0.9".into()], vec!["roberta".into(), "0.85".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("model"));
        assert!(lines[1].starts_with("|--"));
        // All lines equal width.
        assert!(lines.iter().all(|l| l.chars().count() == lines[0].chars().count()));
    }

    #[test]
    fn fmt_nan_is_dash() {
        assert_eq!(fmt(f64::NAN), "-");
        assert_eq!(fmt(0.12345), "0.123");
    }

    #[test]
    fn report_render_includes_everything() {
        let mut r = PropertyReport::new("P1", "bert");
        r.push_distribution("column/cosine", vec![0.9, 0.95, 1.0, 0.97]);
        r.scalars.push(("mean".into(), 0.955));
        let text = render_report(&r);
        assert!(text.contains("P1 — bert"));
        assert!(text.contains("column/cosine"));
        assert!(text.contains("mean"));
        assert!(text.contains("0.955"));
    }

    #[test]
    #[should_panic(expected = "ragged row")]
    fn ragged_rows_panic() {
        render_table(&["a", "b"], &[vec!["x".into()]]);
    }
}
