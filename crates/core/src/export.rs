//! Export property reports to disk: one CSV per distribution plus a
//! markdown index — the hand-off format for plotting the paper's figures
//! with external tooling (the in-repo harness renders text; real plots
//! want raw values).

use crate::framework::PropertyReport;
use std::io::Write;
use std::path::Path;

/// Write a bundle of reports under `dir`:
///
/// - `README.md` — index with box-plot summaries per distribution;
/// - `<property>_<model>_<measure>.csv` — one `value` column per
///   distribution;
/// - `<property>_<model>_scatter_<label>.csv` — `x,y` rows per scatter.
///
/// Returns the number of files written. Creates `dir` if needed.
pub fn write_bundle(dir: &Path, reports: &[PropertyReport]) -> std::io::Result<usize> {
    std::fs::create_dir_all(dir)?;
    let mut files = 0usize;
    let mut index = String::from("# Observatory export\n\n");
    for report in reports {
        index.push_str(&format!("## {} — {}\n\n", report.property, report.model));
        for d in &report.records {
            let name = format!("{}_{}_{}.csv", report.property, report.model, sanitize(&d.label));
            let mut f = std::io::BufWriter::new(std::fs::File::create(dir.join(&name))?);
            writeln!(f, "value")?;
            for v in &d.values {
                writeln!(f, "{v}")?;
            }
            f.flush()?;
            files += 1;
            index.push_str(&format!(
                "- [{}]({name}) — n={}, {}\n",
                d.label,
                d.values.len(),
                d.summary()
            ));
        }
        for s in &report.scatters {
            let name =
                format!("{}_{}_scatter_{}.csv", report.property, report.model, sanitize(&s.label));
            let mut f = std::io::BufWriter::new(std::fs::File::create(dir.join(&name))?);
            writeln!(f, "x,y")?;
            for (x, y) in &s.points {
                writeln!(f, "{x},{y}")?;
            }
            f.flush()?;
            files += 1;
            index.push_str(&format!("- [{}]({name}) — {} points\n", s.label, s.points.len()));
        }
        if !report.scalars.is_empty() {
            index.push_str("\nscalars: ");
            index.push_str(
                &report
                    .scalars
                    .iter()
                    .map(|(k, v)| format!("{k}={v:.4}"))
                    .collect::<Vec<_>>()
                    .join(", "),
            );
            index.push('\n');
        }
        index.push('\n');
    }
    std::fs::write(dir.join("README.md"), index)?;
    Ok(files + 1)
}

/// Make a measure label filesystem-safe.
fn sanitize(label: &str) -> String {
    label
        .chars()
        .map(|c| if c.is_alphanumeric() || c == '-' || c == '.' { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::Scatter;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("obs_export_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn report() -> PropertyReport {
        let mut r = PropertyReport::new("P1", "bert");
        r.push_distribution("column/cosine", vec![0.9, 0.95, 1.0]);
        r.scalars.push(("mean".into(), 0.95));
        r.scatters.push(Scatter { label: "a-vs-b".into(), points: vec![(0.1, 0.9), (0.2, 0.8)] });
        r
    }

    #[test]
    fn writes_all_files_and_index() {
        let dir = tmpdir("all");
        let n = write_bundle(&dir, &[report()]).unwrap();
        assert_eq!(n, 3); // distribution + scatter + README
        let index = std::fs::read_to_string(dir.join("README.md")).unwrap();
        assert!(index.contains("P1 — bert"));
        assert!(index.contains("column/cosine"));
        assert!(index.contains("mean=0.9500"));
        let csv = std::fs::read_to_string(dir.join("P1_bert_column_cosine.csv")).unwrap();
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.starts_with("value\n0.9\n"));
        let scatter = std::fs::read_to_string(dir.join("P1_bert_scatter_a-vs-b.csv")).unwrap();
        assert!(scatter.contains("0.1,0.9"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sanitize_labels() {
        assert_eq!(sanitize("column/cosine"), "column_cosine");
        assert_eq!(sanitize("fidelity@0.25"), "fidelity_0.25");
    }

    #[test]
    fn empty_reports_write_only_index() {
        let dir = tmpdir("empty");
        let n = write_bundle(&dir, &[]).unwrap();
        assert_eq!(n, 1);
        assert!(dir.join("README.md").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
