//! The dataset/model scope matrix of the paper's Table 2.
//!
//! | Property | Dataset | Models in scope |
//! |---|---|---|
//! | P1 Row order insignificance | WikiTables | Except TapTap |
//! | P2 Column order insignificance | WikiTables | All |
//! | P3 Join relationship | NextiaJD | Except TURL and TapTap |
//! | P4 Functional dependencies | Spider | Except TURL, TaBERT, TapTap |
//! | P5 Sample fidelity | WikiTables | Except TapTap |
//! | P6 Entity stability | WikiTables | Except TaBERT and TapTap |
//! | P7 Perturbation robustness | Dr.Spider | Except TURL and TapTap |
//! | P8 Heterogeneous context | SOTAB | Except TURL and TapTap |
//!
//! The matrix is *scope*, not capability: a model in scope may still lack
//! the embedding level a measure needs (TaPEx has no column embeddings),
//! in which case the property simply produces no values for it —
//! precisely how the paper's figures end up with different model subsets.

/// All property ids.
pub const PROPERTY_IDS: [&str; 8] = ["P1", "P2", "P3", "P4", "P5", "P6", "P7", "P8"];

/// The dataset each property is evaluated on (paper Table 2).
pub fn dataset_for(property_id: &str) -> &'static str {
    match property_id {
        "P1" | "P2" | "P5" | "P6" => "WikiTables",
        "P3" => "NextiaJD",
        "P4" => "Spider",
        "P7" => "Dr.Spider",
        "P8" => "SOTAB",
        _ => "unknown",
    }
}

/// Whether `model` participates in `property_id` per the paper's Table 2.
///
/// Unknown property ids default to in-scope (user-defined properties are
/// not constrained by the paper's matrix); unknown models likewise.
pub fn in_scope(property_id: &str, model: &str) -> bool {
    let excluded: &[&str] = match property_id {
        "P1" | "P5" => &["taptap"],
        "P2" => &[],
        "P3" | "P7" | "P8" => &["turl", "taptap"],
        "P4" => &["turl", "tabert", "taptap"],
        "P6" => &["tabert", "taptap"],
        _ => &[],
    };
    !excluded.contains(&model)
}

/// The in-scope model names for a property, in registry order.
pub fn models_in_scope(property_id: &str) -> Vec<&'static str> {
    observatory_models::registry::MODEL_NAMES
        .iter()
        .copied()
        .filter(|m| in_scope(property_id, m))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_2_exclusions() {
        assert!(!in_scope("P1", "taptap"));
        assert!(in_scope("P1", "turl"));
        assert!(in_scope("P2", "taptap")); // the only property including TapTap
        assert!(!in_scope("P3", "turl"));
        assert!(!in_scope("P4", "tabert"));
        assert!(!in_scope("P6", "tabert"));
        assert!(in_scope("P6", "turl"));
        assert!(!in_scope("P8", "turl"));
    }

    #[test]
    fn scope_counts() {
        assert_eq!(models_in_scope("P1").len(), 8);
        assert_eq!(models_in_scope("P2").len(), 9);
        assert_eq!(models_in_scope("P3").len(), 7);
        assert_eq!(models_in_scope("P4").len(), 6);
        assert_eq!(models_in_scope("P6").len(), 7);
    }

    #[test]
    fn datasets_match_table_2() {
        assert_eq!(dataset_for("P1"), "WikiTables");
        assert_eq!(dataset_for("P3"), "NextiaJD");
        assert_eq!(dataset_for("P4"), "Spider");
        assert_eq!(dataset_for("P7"), "Dr.Spider");
        assert_eq!(dataset_for("P8"), "SOTAB");
    }

    #[test]
    fn custom_properties_unconstrained() {
        assert!(in_scope("P99", "taptap"));
        assert!(in_scope("my-property", "anything"));
    }
}
