//! Whole-framework characterization: run every property for every
//! in-scope model over the appropriate corpora and collapse the results
//! into one model × property summary matrix — the library form of "the
//! whole paper in one call" (the `observatory_report` harness binary is a
//! thin shell around this module).

use crate::framework::{run_property, EvalContext, PropertyReport};
use crate::props::col_order::ColumnOrderInsignificance;
use crate::props::entity_stability::EntityStability;
use crate::props::fd::FunctionalDependencies;
use crate::props::hetero_context::HeterogeneousContext;
use crate::props::join_rel::{pairs_to_corpus, JoinRelationship};
use crate::props::perturbation::PerturbationRobustness;
use crate::props::row_order::RowOrderInsignificance;
use crate::props::sample_fidelity::SampleFidelity;
use observatory_data::entities::entity_domains;
use observatory_data::nextiajd::NextiaJdConfig;
use observatory_data::sotab::SotabConfig;
use observatory_data::spider::SpiderConfig;
use observatory_data::wikitables::WikiTablesConfig;
use observatory_models::registry::MODEL_NAMES;
use observatory_models::TableEncoder;
use observatory_stats::descriptive::mean;

/// Workload sizes for a characterization run.
#[derive(Debug, Clone)]
pub struct SummaryConfig {
    /// WikiTables-like tables (P1/P2/P5/P7 corpora).
    pub wiki_tables: usize,
    /// Permutation cap for P1/P2.
    pub permutations: usize,
    /// NextiaJD-like join pairs (P3).
    pub join_pairs: usize,
    /// Spider-like tables (P4).
    pub spider_tables: usize,
    /// SOTAB-like tables (P8).
    pub sotab_tables: usize,
    /// K for entity stability (P6).
    pub k: usize,
}

impl Default for SummaryConfig {
    fn default() -> Self {
        Self {
            wiki_tables: 4,
            permutations: 8,
            join_pairs: 30,
            spider_tables: 4,
            sotab_tables: 6,
            k: 10,
        }
    }
}

/// One row of the summary: a property's headline number per model
/// (NaN = in scope but unmeasurable; absent model name = out of scope).
#[derive(Debug, Clone)]
pub struct SummaryRow {
    /// Property id and short description of the headline number.
    pub label: String,
    /// (model name, headline value) for every evaluated model.
    pub values: Vec<(String, f64)>,
}

impl SummaryRow {
    /// Value for a model, if evaluated.
    pub fn value(&self, model: &str) -> Option<f64> {
        self.values.iter().find(|(m, _)| m == model).map(|(_, v)| *v)
    }
}

/// The full characterization summary.
#[derive(Debug, Clone)]
pub struct Summary {
    pub rows: Vec<SummaryRow>,
}

impl Summary {
    /// Look up a row by its label prefix (e.g. `"P1"`).
    pub fn row(&self, prefix: &str) -> Option<&SummaryRow> {
        self.rows.iter().find(|r| r.label.starts_with(prefix))
    }
}

/// One representative scalar per property report (the summary cell).
pub fn headline(report: &PropertyReport) -> f64 {
    match report.property {
        "P1" | "P2" => report
            .distribution("column/cosine")
            .or_else(|| report.distribution("row/cosine"))
            .or_else(|| report.distribution("table/cosine"))
            .map_or(f64::NAN, |d| mean(&d.values)),
        "P3" => report.scalar("spearman/multiset_jaccard").unwrap_or(f64::NAN),
        "P4" => match (report.scalar("mean_s2/fd"), report.scalar("mean_s2/nonfd")) {
            (Some(fd), Some(nonfd)) if nonfd > 0.0 => fd / nonfd,
            _ => f64::NAN,
        },
        "P5" => report.distribution("fidelity@0.25").map_or(f64::NAN, |d| mean(&d.values)),
        "P7" => report.scalar("mean/synonym").unwrap_or(f64::NAN),
        "P8" => report.distribution("table/non-textual").map_or(f64::NAN, |d| mean(&d.values)),
        _ => f64::NAN,
    }
}

/// Run the complete characterization.
pub fn characterize_all(
    models: &[Box<dyn TableEncoder>],
    config: &SummaryConfig,
    ctx: &EvalContext,
) -> Summary {
    let wiki = WikiTablesConfig {
        num_tables: config.wiki_tables,
        min_rows: 5,
        max_rows: 8,
        seed: ctx.seed,
    }
    .generate();
    let joins = pairs_to_corpus(
        &NextiaJdConfig { num_pairs: config.join_pairs, ..Default::default() }.generate(),
    );
    let spider =
        SpiderConfig { num_tables: config.spider_tables, rows: 24, seed: 7 }.generate().tables;
    let sotab = SotabConfig { num_tables: config.sotab_tables, rows: 8, seed: 23 }.generate();

    let p1 = RowOrderInsignificance { max_permutations: config.permutations };
    let p2 = ColumnOrderInsignificance { max_permutations: config.permutations };
    let p4 = FunctionalDependencies::default();
    let p5 = SampleFidelity { samples_per_ratio: 2, ..Default::default() };
    let p7 = PerturbationRobustness::default();

    let mut rows = Vec::new();
    let runs: Vec<(&str, Vec<PropertyReport>)> = vec![
        ("P1 row-order cosine", run_property(&p1, models, &wiki, ctx)),
        ("P2 col-order cosine", run_property(&p2, models, &wiki, ctx)),
        ("P3 join spearman", run_property(&JoinRelationship, models, &joins, ctx)),
        ("P4 s2 ratio fd/nonfd", run_property(&p4, models, &spider, ctx)),
        ("P5 fidelity@0.25", run_property(&p5, models, &wiki, ctx)),
        ("P7 synonym cosine", run_property(&p7, models, &wiki, ctx)),
        ("P8 table-context cosine", run_property(&HeterogeneousContext, models, &sotab, ctx)),
    ];
    for (label, reports) in runs {
        rows.push(SummaryRow {
            label: label.to_string(),
            values: reports.iter().map(|r| (r.model.clone(), headline(r))).collect(),
        });
    }
    // P6: stability against the first in-scope model, over the first
    // entity domain.
    let domain = &entity_domains(ctx.seed)[0];
    let p6 = EntityStability { k: config.k, queries: domain.queries.clone() };
    let (names, matrix) = crate::framework::run_pairwise_property(&p6, models, &domain.corpus, ctx);
    if let Some(anchor) = names.first() {
        rows.push(SummaryRow {
            label: format!("P6 stability vs {anchor}"),
            values: names.iter().enumerate().map(|(i, n)| (n.clone(), matrix[0][i])).collect(),
        });
    }
    Summary { rows }
}

/// Render the summary as a markdown table over the registry's model order.
pub fn render_summary(summary: &Summary) -> String {
    let mut headers = vec!["property"];
    headers.extend(MODEL_NAMES);
    let rows: Vec<Vec<String>> = summary
        .rows
        .iter()
        .map(|row| {
            let mut cells = vec![row.label.clone()];
            for name in MODEL_NAMES {
                cells.push(row.value(name).map_or("·".to_string(), crate::report::fmt));
            }
            cells
        })
        .collect();
    crate::report::render_table(&headers, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use observatory_models::registry::all_models;

    fn tiny() -> SummaryConfig {
        SummaryConfig {
            wiki_tables: 1,
            permutations: 3,
            join_pairs: 8,
            spider_tables: 1,
            sotab_tables: 2,
            k: 3,
        }
    }

    #[test]
    fn summary_covers_all_properties() {
        let models = all_models();
        let s = characterize_all(&models, &tiny(), &EvalContext::default());
        assert_eq!(s.rows.len(), 8);
        for p in ["P1", "P2", "P3", "P4", "P5", "P6", "P7", "P8"] {
            assert!(s.row(p).is_some(), "missing {p}");
        }
    }

    #[test]
    fn scope_respected_per_row() {
        let models = all_models();
        let s = characterize_all(&models, &tiny(), &EvalContext::default());
        // TapTap only participates in P2.
        for row in &s.rows {
            let has_taptap = row.values.iter().any(|(m, _)| m == "taptap");
            assert_eq!(has_taptap, row.label.starts_with("P2"), "{}", row.label);
        }
    }

    #[test]
    fn headline_values_sane() {
        let models = all_models();
        let s = characterize_all(&models, &tiny(), &EvalContext::default());
        let p1 = s.row("P1").unwrap();
        let bert = p1.value("bert").unwrap();
        assert!((0.0..=1.0).contains(&bert), "{bert}");
    }

    #[test]
    fn render_is_well_formed() {
        let models = all_models();
        let s = characterize_all(&models, &tiny(), &EvalContext::default());
        let text = render_summary(&s);
        assert!(text.contains("bert"));
        assert!(text.lines().count() >= 10);
    }
}
