//! The evaluation framework: property trait, context, and report types.

use observatory_models::TableEncoder;
use observatory_runtime::Engine;
use observatory_stats::descriptive::{five_number_summary, FiveNumberSummary};
use observatory_table::Table;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Shared evaluation context.
#[derive(Debug, Clone)]
pub struct EvalContext {
    /// Seed for all sampling decisions (permutations, row samples, …).
    pub seed: u64,
    /// The embedding engine all encodes route through: content-addressed
    /// cache + worker pool + metrics (`observatory-runtime`). Shared, so
    /// repeated property runs over one corpus reuse cached encodings.
    pub engine: Arc<Engine>,
    /// Cooperative cancellation + progress hook. Defaults to an inert
    /// control (no allocation, checks are a single `Option` test), so
    /// offline CLI runs pay nothing; the job scheduler installs an armed
    /// one per job.
    pub control: RunControl,
}

impl Default for EvalContext {
    fn default() -> Self {
        Self { seed: 42, engine: observatory_runtime::global(), control: RunControl::default() }
    }
}

impl EvalContext {
    /// A context with the given seed and the process-wide engine.
    pub fn with_seed(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }

    /// A context with a private engine (tests that assert cache/metrics
    /// behaviour in isolation).
    pub fn with_engine(engine: Arc<Engine>) -> Self {
        Self { engine, ..Self::default() }
    }
}

/// Shared state behind an armed [`RunControl`].
struct ControlState {
    cancel: AtomicBool,
    done: AtomicU64,
    total: AtomicU64,
    deadline: Option<Instant>,
}

/// Cooperative run control threaded through [`EvalContext`].
///
/// Property evaluators poll [`RunControl::should_stop`] at checkpoints
/// between permutation batches (one checkpoint per corpus table — the
/// unit between two `encode_batch` calls) and bail out early with a
/// partial report when asked to; they report coarse progress with
/// [`RunControl::advance`]. The default control is *inert*: it never
/// stops anything, reports no progress, and costs one pointer test per
/// checkpoint — so the stop/progress plumbing cannot perturb offline
/// runs (bit-identical results depend on it). Completed runs take the
/// exact same path whether the control is armed or inert; only an
/// actual cancel/deadline changes behaviour.
#[derive(Clone, Default)]
pub struct RunControl {
    inner: Option<Arc<ControlState>>,
}

impl std::fmt::Debug for RunControl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "RunControl(inert)"),
            Some(s) => f
                .debug_struct("RunControl")
                .field("cancelled", &s.cancel.load(Ordering::Relaxed))
                .field("done", &s.done.load(Ordering::Relaxed))
                .field("total", &s.total.load(Ordering::Relaxed))
                .field("has_deadline", &s.deadline.is_some())
                .finish(),
        }
    }
}

impl RunControl {
    /// An armed control with an optional wall-clock deadline. Clones share
    /// state: cancel one, all observers stop at their next checkpoint.
    pub fn armed(deadline: Option<Instant>) -> Self {
        Self {
            inner: Some(Arc::new(ControlState {
                cancel: AtomicBool::new(false),
                done: AtomicU64::new(0),
                total: AtomicU64::new(0),
                deadline,
            })),
        }
    }

    /// Declare the total number of progress units (idempotent; inert: no-op).
    pub fn set_total(&self, total: u64) {
        if let Some(s) = &self.inner {
            s.total.store(total, Ordering::Relaxed);
        }
    }

    /// Record `n` finished progress units.
    pub fn advance(&self, n: u64) {
        if let Some(s) = &self.inner {
            s.done.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Raise the completed-unit count to at least `units` (monotone; used
    /// by runners to square progress after stages without internal hooks).
    pub fn advance_to(&self, units: u64) {
        if let Some(s) = &self.inner {
            s.done.fetch_max(units, Ordering::Relaxed);
        }
    }

    /// Request cooperative cancellation: evaluators bail at the next
    /// checkpoint. Irrevocable.
    pub fn cancel(&self) {
        if let Some(s) = &self.inner {
            s.cancel.store(true, Ordering::Relaxed);
        }
    }

    /// Was [`RunControl::cancel`] called? (Deadline expiry is separate.)
    pub fn cancelled(&self) -> bool {
        self.inner.as_ref().is_some_and(|s| s.cancel.load(Ordering::Relaxed))
    }

    /// Has the wall-clock deadline passed? Always `false` when inert or
    /// no deadline was set.
    pub fn deadline_expired(&self) -> bool {
        self.inner.as_ref().and_then(|s| s.deadline).is_some_and(|d| Instant::now() >= d)
    }

    /// Checkpoint test: should the evaluator stop now? True after an
    /// explicit cancel or once the deadline has passed.
    pub fn should_stop(&self) -> bool {
        self.cancelled() || self.deadline_expired()
    }

    /// Raw completed-unit counter (0 when inert). The scheduler uses it
    /// to tell a property that bailed mid-corpus from one that finished.
    pub fn units_done(&self) -> u64 {
        self.inner.as_ref().map_or(0, |s| s.done.load(Ordering::Relaxed))
    }

    /// Fraction of declared units completed, in `[0, 1]`. Zero until
    /// `set_total` is called; inert controls always report zero.
    pub fn fraction(&self) -> f64 {
        let Some(s) = &self.inner else { return 0.0 };
        let total = s.total.load(Ordering::Relaxed);
        if total == 0 {
            return 0.0;
        }
        (s.done.load(Ordering::Relaxed) as f64 / total as f64).min(1.0)
    }
}

/// A named sample of measure values (one box/violin in the paper's plots).
#[derive(Debug, Clone, PartialEq)]
pub struct Distribution {
    /// e.g. `"column/cosine"` or `"fidelity@0.25"`.
    pub label: String,
    /// Raw measure values.
    pub values: Vec<f64>,
}

impl Distribution {
    /// Five-number summary of the values (NaNs dropped).
    pub fn summary(&self) -> FiveNumberSummary {
        five_number_summary(&self.values)
    }
}

/// A named set of 2-D points (one scatter panel, e.g. Figure 9).
#[derive(Debug, Clone, PartialEq)]
pub struct Scatter {
    /// e.g. `"cosine-vs-multiset-jaccard"`.
    pub label: String,
    /// (x, y) points.
    pub points: Vec<(f64, f64)>,
}

/// The result of characterizing one model against one property.
#[derive(Debug, Clone, PartialEq)]
pub struct PropertyReport {
    /// Property id (`"P1"` … `"P8"`).
    pub property: &'static str,
    /// Model machine name.
    pub model: String,
    /// Measure distributions.
    pub records: Vec<Distribution>,
    /// Named scalar results (e.g. Spearman coefficients).
    pub scalars: Vec<(String, f64)>,
    /// Scatter series for figure regeneration.
    pub scatters: Vec<Scatter>,
}

impl PropertyReport {
    /// An empty report for the given property/model.
    pub fn new(property: &'static str, model: &str) -> Self {
        Self {
            property,
            model: model.to_string(),
            records: Vec::new(),
            scalars: Vec::new(),
            scatters: Vec::new(),
        }
    }

    /// Append a distribution unless it is empty.
    pub fn push_distribution(&mut self, label: impl Into<String>, values: Vec<f64>) {
        if !values.is_empty() {
            self.records.push(Distribution { label: label.into(), values });
        }
    }

    /// Look up a distribution by label.
    pub fn distribution(&self, label: &str) -> Option<&Distribution> {
        self.records.iter().find(|d| d.label == label)
    }

    /// Look up a scalar by name.
    pub fn scalar(&self, name: &str) -> Option<f64> {
        self.scalars.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
}

/// A primitive property of table embeddings (paper Definition 1): given a
/// model and a corpus, compute the measure over the induced embedding
/// distribution.
///
/// Corpus conventions are per property and documented on each
/// implementation (e.g. [`crate::props::join_rel`] expects the corpus as
/// consecutive query/candidate single-column tables).
pub trait Property {
    /// Short id, `"P1"` … `"P8"`.
    fn id(&self) -> &'static str;
    /// Human-readable name.
    fn name(&self) -> &'static str;
    /// Characterize one model over a corpus.
    fn evaluate(
        &self,
        model: &dyn TableEncoder,
        corpus: &[Table],
        ctx: &EvalContext,
    ) -> PropertyReport;
}

/// A property comparing *two* embedding spaces (paper Property 6): the
/// measure is defined over a pair of models rather than a single one.
pub trait PairwiseProperty {
    /// Short id (`"P6"`).
    fn id(&self) -> &'static str;
    /// Human-readable name.
    fn name(&self) -> &'static str;
    /// The measure for one ordered pair of models; `None` when either
    /// model cannot produce the required embeddings over this corpus.
    fn evaluate_pair(
        &self,
        model_a: &dyn TableEncoder,
        model_b: &dyn TableEncoder,
        corpus: &[Table],
        ctx: &EvalContext,
    ) -> Option<f64>;
}

/// Run a pairwise property over every in-scope model pair, returning the
/// model names and the symmetric measure matrix (diagonal = self-pairs;
/// `NaN` where a pair could not be evaluated).
pub fn run_pairwise_property(
    property: &dyn PairwiseProperty,
    models: &[Box<dyn TableEncoder>],
    corpus: &[Table],
    ctx: &EvalContext,
) -> (Vec<String>, Vec<Vec<f64>>) {
    let in_scope: Vec<&Box<dyn TableEncoder>> =
        models.iter().filter(|m| crate::scope::in_scope(property.id(), m.name())).collect();
    let names: Vec<String> = in_scope.iter().map(|m| m.name().to_string()).collect();
    let n = in_scope.len();
    let mut matrix = vec![vec![f64::NAN; n]; n];
    for i in 0..n {
        for j in i..n {
            let v = property
                .evaluate_pair(in_scope[i].as_ref(), in_scope[j].as_ref(), corpus, ctx)
                .unwrap_or(f64::NAN);
            matrix[i][j] = v;
            matrix[j][i] = v;
        }
    }
    (names, matrix)
}

/// Run a property over every model that is in scope for it (paper
/// Table 2), returning one report per evaluated model.
pub fn run_property(
    property: &dyn Property,
    models: &[Box<dyn TableEncoder>],
    corpus: &[Table],
    ctx: &EvalContext,
) -> Vec<PropertyReport> {
    models
        .iter()
        .filter(|m| crate::scope::in_scope(property.id(), m.name()))
        .map(|m| property.evaluate(m.as_ref(), corpus, ctx))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountingProperty;

    impl Property for CountingProperty {
        fn id(&self) -> &'static str {
            "P1"
        }
        fn name(&self) -> &'static str {
            "counting"
        }
        fn evaluate(
            &self,
            model: &dyn TableEncoder,
            corpus: &[Table],
            _ctx: &EvalContext,
        ) -> PropertyReport {
            let mut r = PropertyReport::new(self.id(), model.name());
            r.scalars.push(("tables".into(), corpus.len() as f64));
            r
        }
    }

    #[test]
    fn report_accessors() {
        let mut r = PropertyReport::new("P1", "bert");
        r.push_distribution("cos", vec![0.9, 1.0]);
        r.push_distribution("empty", vec![]);
        r.scalars.push(("x".into(), 3.0));
        assert_eq!(r.records.len(), 1, "empty distributions are dropped");
        assert_eq!(r.distribution("cos").unwrap().summary().max, 1.0);
        assert_eq!(r.scalar("x"), Some(3.0));
        assert_eq!(r.scalar("y"), None);
    }

    #[test]
    fn inert_control_never_stops_and_reports_zero() {
        let c = RunControl::default();
        assert!(!c.should_stop());
        assert!(!c.cancelled());
        assert!(!c.deadline_expired());
        c.set_total(10);
        c.advance(5);
        assert_eq!(c.fraction(), 0.0, "inert control ignores progress");
        c.cancel();
        assert!(!c.should_stop(), "inert control cannot be cancelled");
    }

    #[test]
    fn armed_control_tracks_progress_and_cancel() {
        let c = RunControl::armed(None);
        c.set_total(4);
        assert_eq!(c.fraction(), 0.0);
        c.advance(1);
        assert_eq!(c.fraction(), 0.25);
        c.advance_to(3);
        assert_eq!(c.fraction(), 0.75);
        c.advance_to(2);
        assert_eq!(c.fraction(), 0.75, "advance_to is monotone");
        c.advance(10);
        assert_eq!(c.fraction(), 1.0, "fraction is clamped to 1");
        assert!(!c.should_stop());
        let observer = c.clone();
        c.cancel();
        assert!(observer.should_stop(), "clones share cancellation state");
        assert!(observer.cancelled());
    }

    #[test]
    fn expired_deadline_stops_without_cancel() {
        let c = RunControl::armed(Some(Instant::now() - std::time::Duration::from_millis(1)));
        assert!(c.deadline_expired());
        assert!(c.should_stop());
        assert!(!c.cancelled(), "deadline expiry is not an explicit cancel");
    }

    #[test]
    fn runner_respects_scope() {
        // P1 excludes TapTap (Table 2).
        let models = observatory_models::registry::all_models();
        let reports = run_property(&CountingProperty, &models, &[], &EvalContext::default());
        assert_eq!(reports.len(), 8);
        assert!(reports.iter().all(|r| r.model != "taptap"));
    }
}
