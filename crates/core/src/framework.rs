//! The evaluation framework: property trait, context, and report types.

use observatory_models::TableEncoder;
use observatory_runtime::Engine;
use observatory_stats::descriptive::{five_number_summary, FiveNumberSummary};
use observatory_table::Table;
use std::sync::Arc;

/// Shared evaluation context.
#[derive(Debug, Clone)]
pub struct EvalContext {
    /// Seed for all sampling decisions (permutations, row samples, …).
    pub seed: u64,
    /// The embedding engine all encodes route through: content-addressed
    /// cache + worker pool + metrics (`observatory-runtime`). Shared, so
    /// repeated property runs over one corpus reuse cached encodings.
    pub engine: Arc<Engine>,
}

impl Default for EvalContext {
    fn default() -> Self {
        Self { seed: 42, engine: observatory_runtime::global() }
    }
}

impl EvalContext {
    /// A context with the given seed and the process-wide engine.
    pub fn with_seed(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }

    /// A context with a private engine (tests that assert cache/metrics
    /// behaviour in isolation).
    pub fn with_engine(engine: Arc<Engine>) -> Self {
        Self { seed: 42, engine }
    }
}

/// A named sample of measure values (one box/violin in the paper's plots).
#[derive(Debug, Clone, PartialEq)]
pub struct Distribution {
    /// e.g. `"column/cosine"` or `"fidelity@0.25"`.
    pub label: String,
    /// Raw measure values.
    pub values: Vec<f64>,
}

impl Distribution {
    /// Five-number summary of the values (NaNs dropped).
    pub fn summary(&self) -> FiveNumberSummary {
        five_number_summary(&self.values)
    }
}

/// A named set of 2-D points (one scatter panel, e.g. Figure 9).
#[derive(Debug, Clone, PartialEq)]
pub struct Scatter {
    /// e.g. `"cosine-vs-multiset-jaccard"`.
    pub label: String,
    /// (x, y) points.
    pub points: Vec<(f64, f64)>,
}

/// The result of characterizing one model against one property.
#[derive(Debug, Clone, PartialEq)]
pub struct PropertyReport {
    /// Property id (`"P1"` … `"P8"`).
    pub property: &'static str,
    /// Model machine name.
    pub model: String,
    /// Measure distributions.
    pub records: Vec<Distribution>,
    /// Named scalar results (e.g. Spearman coefficients).
    pub scalars: Vec<(String, f64)>,
    /// Scatter series for figure regeneration.
    pub scatters: Vec<Scatter>,
}

impl PropertyReport {
    /// An empty report for the given property/model.
    pub fn new(property: &'static str, model: &str) -> Self {
        Self {
            property,
            model: model.to_string(),
            records: Vec::new(),
            scalars: Vec::new(),
            scatters: Vec::new(),
        }
    }

    /// Append a distribution unless it is empty.
    pub fn push_distribution(&mut self, label: impl Into<String>, values: Vec<f64>) {
        if !values.is_empty() {
            self.records.push(Distribution { label: label.into(), values });
        }
    }

    /// Look up a distribution by label.
    pub fn distribution(&self, label: &str) -> Option<&Distribution> {
        self.records.iter().find(|d| d.label == label)
    }

    /// Look up a scalar by name.
    pub fn scalar(&self, name: &str) -> Option<f64> {
        self.scalars.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
}

/// A primitive property of table embeddings (paper Definition 1): given a
/// model and a corpus, compute the measure over the induced embedding
/// distribution.
///
/// Corpus conventions are per property and documented on each
/// implementation (e.g. [`crate::props::join_rel`] expects the corpus as
/// consecutive query/candidate single-column tables).
pub trait Property {
    /// Short id, `"P1"` … `"P8"`.
    fn id(&self) -> &'static str;
    /// Human-readable name.
    fn name(&self) -> &'static str;
    /// Characterize one model over a corpus.
    fn evaluate(
        &self,
        model: &dyn TableEncoder,
        corpus: &[Table],
        ctx: &EvalContext,
    ) -> PropertyReport;
}

/// A property comparing *two* embedding spaces (paper Property 6): the
/// measure is defined over a pair of models rather than a single one.
pub trait PairwiseProperty {
    /// Short id (`"P6"`).
    fn id(&self) -> &'static str;
    /// Human-readable name.
    fn name(&self) -> &'static str;
    /// The measure for one ordered pair of models; `None` when either
    /// model cannot produce the required embeddings over this corpus.
    fn evaluate_pair(
        &self,
        model_a: &dyn TableEncoder,
        model_b: &dyn TableEncoder,
        corpus: &[Table],
        ctx: &EvalContext,
    ) -> Option<f64>;
}

/// Run a pairwise property over every in-scope model pair, returning the
/// model names and the symmetric measure matrix (diagonal = self-pairs;
/// `NaN` where a pair could not be evaluated).
pub fn run_pairwise_property(
    property: &dyn PairwiseProperty,
    models: &[Box<dyn TableEncoder>],
    corpus: &[Table],
    ctx: &EvalContext,
) -> (Vec<String>, Vec<Vec<f64>>) {
    let in_scope: Vec<&Box<dyn TableEncoder>> =
        models.iter().filter(|m| crate::scope::in_scope(property.id(), m.name())).collect();
    let names: Vec<String> = in_scope.iter().map(|m| m.name().to_string()).collect();
    let n = in_scope.len();
    let mut matrix = vec![vec![f64::NAN; n]; n];
    for i in 0..n {
        for j in i..n {
            let v = property
                .evaluate_pair(in_scope[i].as_ref(), in_scope[j].as_ref(), corpus, ctx)
                .unwrap_or(f64::NAN);
            matrix[i][j] = v;
            matrix[j][i] = v;
        }
    }
    (names, matrix)
}

/// Run a property over every model that is in scope for it (paper
/// Table 2), returning one report per evaluated model.
pub fn run_property(
    property: &dyn Property,
    models: &[Box<dyn TableEncoder>],
    corpus: &[Table],
    ctx: &EvalContext,
) -> Vec<PropertyReport> {
    models
        .iter()
        .filter(|m| crate::scope::in_scope(property.id(), m.name()))
        .map(|m| property.evaluate(m.as_ref(), corpus, ctx))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountingProperty;

    impl Property for CountingProperty {
        fn id(&self) -> &'static str {
            "P1"
        }
        fn name(&self) -> &'static str {
            "counting"
        }
        fn evaluate(
            &self,
            model: &dyn TableEncoder,
            corpus: &[Table],
            _ctx: &EvalContext,
        ) -> PropertyReport {
            let mut r = PropertyReport::new(self.id(), model.name());
            r.scalars.push(("tables".into(), corpus.len() as f64));
            r
        }
    }

    #[test]
    fn report_accessors() {
        let mut r = PropertyReport::new("P1", "bert");
        r.push_distribution("cos", vec![0.9, 1.0]);
        r.push_distribution("empty", vec![]);
        r.scalars.push(("x".into(), 3.0));
        assert_eq!(r.records.len(), 1, "empty distributions are dropped");
        assert_eq!(r.distribution("cos").unwrap().summary().max, 1.0);
        assert_eq!(r.scalar("x"), Some(3.0));
        assert_eq!(r.scalar("y"), None);
    }

    #[test]
    fn runner_respects_scope() {
        // P1 excludes TapTap (Table 2).
        let models = observatory_models::registry::all_models();
        let reports = run_property(&CountingProperty, &models, &[], &EvalContext::default());
        assert_eq!(reports.len(), 8);
        assert!(reports.iter().all(|r| r.model != "taptap"));
    }
}
