//! Property-based tests for the model adapters: the full serialize →
//! encode → aggregate pipeline on arbitrary tables, for every model in
//! the zoo.

use observatory_models::registry::{all_models, model_by_name};
use observatory_table::{Column, Table, Value};
use proptest::prelude::*;

fn arb_table() -> impl Strategy<Value = Table> {
    let cell = prop_oneof![
        any::<i16>().prop_map(|i| Value::Int(i64::from(i))),
        "[a-z]{1,10}".prop_map(Value::text),
        (-1e4f64..1e4).prop_map(Value::Float),
        Just(Value::Null),
        Just(Value::Bool(true)),
    ];
    (1usize..4, 1usize..6).prop_flat_map(move |(cols, rows)| {
        proptest::collection::vec(proptest::collection::vec(cell.clone(), rows), cols).prop_map(
            |columns| {
                Table::new(
                    "t",
                    columns
                        .into_iter()
                        .enumerate()
                        .map(|(j, values)| Column::new(format!("col{j}"), values))
                        .collect(),
                )
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Every model encodes every table without panicking, with finite
    /// embeddings and aligned provenance.
    #[test]
    fn all_models_total_on_arbitrary_tables(table in arb_table()) {
        for model in all_models() {
            let enc = model.encode_table(&table);
            prop_assert_eq!(enc.provenance.len(), enc.embeddings.rows(), "{}", model.name());
            prop_assert!(
                enc.embeddings.as_slice().iter().all(|x| x.is_finite()),
                "{} produced non-finite embeddings",
                model.name()
            );
        }
    }

    /// Capability gating is total: levels a model does not support return
    /// None for every index; supported levels return embeddings of the
    /// model's dimensionality whenever they return at all.
    #[test]
    fn capability_gating_consistent(table in arb_table()) {
        for model in all_models() {
            let caps = model.capabilities();
            let enc = model.encode_table(&table);
            for j in 0..table.num_cols() {
                match enc.column(j) {
                    Some(e) => {
                        prop_assert!(caps.column, "{} column w/o capability", model.name());
                        prop_assert_eq!(e.len(), model.dim());
                    }
                    None => prop_assert!(
                        !caps.column || enc.rows_encoded <= table.num_rows(),
                        "{}", model.name()
                    ),
                }
            }
            for i in 0..table.num_rows() {
                if let Some(e) = enc.row(i) {
                    prop_assert!(caps.row);
                    prop_assert_eq!(e.len(), model.dim());
                }
            }
            if let Some(e) = enc.table() {
                prop_assert!(caps.table);
                prop_assert_eq!(e.len(), model.dim());
            }
        }
    }

    /// Determinism through the whole pipeline, per model.
    #[test]
    fn pipeline_deterministic(table in arb_table()) {
        for name in ["bert", "doduo", "tabert", "taptap"] {
            let m1 = model_by_name(name).unwrap();
            let m2 = model_by_name(name).unwrap();
            let a = m1.encode_table(&table);
            let b = m2.encode_table(&table);
            prop_assert_eq!(a.embeddings, b.embeddings, "{}", name);
        }
    }

    /// Appending rows never changes how many *fewer* rows fit: the row
    /// budget is monotone in table size.
    #[test]
    fn row_budget_monotone(table in arb_table()) {
        let model = model_by_name("bert").unwrap();
        let small = model.encode_table(&table);
        // Duplicate the table's rows.
        let idx: Vec<usize> =
            (0..table.num_rows()).chain(0..table.num_rows()).collect();
        let doubled = table.select_rows(&idx);
        let big = model.encode_table(&doubled);
        prop_assert!(big.rows_encoded >= small.rows_encoded.min(doubled.num_rows()).min(big.rows_encoded));
        prop_assert!(big.rows_encoded <= doubled.num_rows());
    }

    /// Text encoding is total and finite for arbitrary strings.
    #[test]
    fn text_encoding_total(text in "\\PC{0,48}") {
        for name in ["bert", "t5", "tapas"] {
            let m = model_by_name(name).unwrap();
            let v = m.encode_text(&text);
            prop_assert_eq!(v.len(), m.dim());
            prop_assert!(v.iter().all(|x| x.is_finite()));
        }
    }
}
