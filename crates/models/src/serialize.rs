//! Table serialization into token sequences (paper §4.3).
//!
//! Transformer models expect flat sequences, so two-dimensional tables must
//! be linearized. The paper distinguishes two families:
//!
//! 1. **Row-wise** (TURL, TAPAS, TaBERT, BERT/RoBERTa/T5 by convention):
//!    rows concatenated, with optional `[SEP]` cell delimiters, a leading
//!    `[CLS]`, an optional auxiliary text slot (NL question / SQL query),
//!    and an optional header row.
//! 2. **Column-wise** (DODUO): one `[CLS]` per column followed by the
//!    column's values; the `[CLS]` tokens serve as column representations.
//!
//! Plus TapTap's **row template**: each row rendered as natural-language
//! text `"h₁ is v₁, h₂ is v₂, …"`.
//!
//! All serializers keep **every column** and fit as many rows as the token
//! budget permits; [`fit_rows`] finds the maximum row count by binary
//! search, exactly as described in the paper.

use crate::encoding::TokenProvenance;
use observatory_table::Table;
use observatory_tokenizer::{special, Tokenizer};
use observatory_transformer::TokenInput;

/// Options for row-wise serialization.
#[derive(Debug, Clone)]
pub struct RowWiseOptions {
    /// Emit a leading `[CLS]`.
    pub cls: bool,
    /// Emit the header row (segment 0) before data rows.
    pub include_headers: bool,
    /// Emit `[SEP]` between cells (TaBERT).
    pub sep_cells: bool,
    /// Emit a `[ROW]` marker at the end of each row.
    pub row_markers: bool,
    /// Auxiliary text prepended after `[CLS]` (TAPAS's NL question,
    /// TaPEx's SQL query), encoded as segment 2.
    pub auxiliary_text: Option<String>,
}

impl Default for RowWiseOptions {
    fn default() -> Self {
        Self {
            cls: true,
            include_headers: true,
            sep_cells: false,
            row_markers: true,
            auxiliary_text: None,
        }
    }
}

/// A serialized table: token inputs plus provenance, aligned index-wise.
pub struct Serialized {
    pub tokens: Vec<TokenInput>,
    pub provenance: Vec<TokenProvenance>,
    /// Index of the sequence `[CLS]`, if any.
    pub table_cls: Option<usize>,
    /// Per-column `[CLS]` indices (column-wise serialization only).
    pub column_cls: Vec<Option<usize>>,
    /// Data rows included.
    pub rows: usize,
}

impl Serialized {
    fn new() -> Self {
        Self {
            tokens: Vec::new(),
            provenance: Vec::new(),
            table_cls: None,
            column_cls: Vec::new(),
            rows: 0,
        }
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    fn push_special(&mut self, id: u32, row: u32, col: u32) {
        self.tokens.push(TokenInput { id, row, col, segment: 0 });
        self.provenance.push(TokenProvenance { row, col, special: true });
    }

    fn push_text(&mut self, tokenizer: &Tokenizer, text: &str, row: u32, col: u32, segment: u8) {
        for id in tokenizer.encode(text) {
            self.tokens.push(TokenInput { id, row, col, segment });
            self.provenance.push(TokenProvenance { row, col, special: false });
        }
    }
}

/// Row-wise serialization of the first `n_rows` data rows.
pub fn serialize_row_wise(
    table: &Table,
    tokenizer: &Tokenizer,
    n_rows: usize,
    opts: &RowWiseOptions,
) -> Serialized {
    let mut s = Serialized::new();
    if opts.cls {
        s.table_cls = Some(s.len());
        s.push_special(special::CLS, 0, 0);
    }
    if let Some(aux) = &opts.auxiliary_text {
        s.push_text(tokenizer, aux, 0, 0, 2);
        s.push_special(special::SEP, 0, 0);
    }
    if opts.include_headers {
        for (j, col) in table.columns.iter().enumerate() {
            if !col.header.is_empty() {
                s.push_text(tokenizer, &col.header, 0, (j + 1) as u32, 0);
            }
            if opts.sep_cells {
                s.push_special(special::SEP, 0, (j + 1) as u32);
            }
        }
        if opts.row_markers {
            s.push_special(special::ROW, 0, 0);
        }
    }
    let n_rows = n_rows.min(table.num_rows());
    for i in 0..n_rows {
        let row_id = (i + 1) as u32;
        for (j, col) in table.columns.iter().enumerate() {
            let col_id = (j + 1) as u32;
            let v = &col.values[i];
            if v.is_null() {
                s.tokens.push(TokenInput {
                    id: special::NULL,
                    row: row_id,
                    col: col_id,
                    segment: 1,
                });
                s.provenance.push(TokenProvenance { row: row_id, col: col_id, special: false });
            } else {
                s.push_text(tokenizer, &v.to_text(), row_id, col_id, 1);
            }
            if opts.sep_cells {
                s.push_special(special::SEP, row_id, col_id);
            }
        }
        if opts.row_markers {
            s.push_special(special::ROW, row_id, 0);
        }
    }
    s.rows = n_rows;
    s
}

/// Column-wise serialization (DODUO): `[CLS] v₁₁ v₂₁ … [CLS] v₁₂ v₂₂ …`,
/// data values only — DODUO ignores the schema entirely.
pub fn serialize_column_wise(table: &Table, tokenizer: &Tokenizer, n_rows: usize) -> Serialized {
    let mut s = Serialized::new();
    let n_rows = n_rows.min(table.num_rows());
    s.column_cls = vec![None; table.num_cols()];
    for (j, col) in table.columns.iter().enumerate() {
        let col_id = (j + 1) as u32;
        s.column_cls[j] = Some(s.len());
        s.push_special(special::CLS, 0, col_id);
        for i in 0..n_rows {
            let row_id = (i + 1) as u32;
            let v = &col.values[i];
            if v.is_null() {
                s.tokens.push(TokenInput {
                    id: special::NULL,
                    row: row_id,
                    col: col_id,
                    segment: 1,
                });
                s.provenance.push(TokenProvenance { row: row_id, col: col_id, special: false });
            } else {
                s.push_text(tokenizer, &v.to_text(), row_id, col_id, 1);
            }
        }
    }
    s.rows = n_rows;
    s
}

/// TapTap's per-row template: `"h₁ is v₁, h₂ is v₂, …"` for row `i`.
pub fn serialize_row_template(table: &Table, tokenizer: &Tokenizer, i: usize) -> Serialized {
    let mut s = Serialized::new();
    let row_id = (i + 1) as u32;
    for (j, col) in table.columns.iter().enumerate() {
        let col_id = (j + 1) as u32;
        if !col.header.is_empty() {
            s.push_text(tokenizer, &col.header, row_id, col_id, 0);
            s.push_text(tokenizer, "is", row_id, col_id, 0);
        }
        s.push_text(tokenizer, &col.values[i].to_text(), row_id, col_id, 1);
        if j + 1 < table.num_cols() {
            s.push_text(tokenizer, ",", row_id, 0, 0);
        }
    }
    s.rows = 1;
    s
}

/// Find the maximum number of rows whose serialization fits `budget`
/// tokens, by binary search (paper §4.3: "We use binary search to find the
/// maximum number of rows that can fit into the input limit").
///
/// `serialize(k)` must be monotone in length (more rows → more tokens).
/// Returns 0 when even the rowless serialization overflows.
pub fn fit_rows<F: Fn(usize) -> usize>(
    total_rows: usize,
    budget: usize,
    serialized_len: F,
) -> usize {
    if serialized_len(0) > budget {
        return 0;
    }
    let (mut lo, mut hi) = (0usize, total_rows);
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if serialized_len(mid) <= budget {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use observatory_table::{Column, Value};

    fn table() -> Table {
        Table::new(
            "t",
            vec![
                Column::new("year", vec![Value::Int(1993), Value::Int(1994)]),
                Column::new(
                    "competition",
                    vec![Value::text("Asian Championships"), Value::text("Asian Games")],
                ),
            ],
        )
    }

    #[test]
    fn row_wise_has_cls_headers_and_all_cells() {
        let tok = Tokenizer::default();
        let s = serialize_row_wise(&table(), &tok, 2, &RowWiseOptions::default());
        assert_eq!(s.table_cls, Some(0));
        assert!(s.tokens[0].id == special::CLS);
        // Header tokens carry row 0 and their column id.
        assert!(s.provenance.iter().any(|p| p.row == 0 && p.col == 1 && !p.special));
        // Every (row, col) cell contributed at least one token.
        for r in 1..=2u32 {
            for c in 1..=2u32 {
                assert!(
                    s.provenance.iter().any(|p| p.row == r && p.col == c && !p.special),
                    "missing tokens for cell ({r},{c})"
                );
            }
        }
        assert_eq!(s.rows, 2);
        assert_eq!(s.tokens.len(), s.provenance.len());
    }

    #[test]
    fn row_wise_row_count_respected() {
        let tok = Tokenizer::default();
        let s = serialize_row_wise(&table(), &tok, 1, &RowWiseOptions::default());
        assert!(s.provenance.iter().all(|p| p.row <= 1));
        assert_eq!(s.rows, 1);
    }

    #[test]
    fn auxiliary_text_uses_segment_2() {
        let tok = Tokenizer::default();
        let opts =
            RowWiseOptions { auxiliary_text: Some("how many games".into()), ..Default::default() };
        let s = serialize_row_wise(&table(), &tok, 1, &opts);
        assert!(s.tokens.iter().any(|t| t.segment == 2));
    }

    #[test]
    fn sep_cells_inserts_separators() {
        let tok = Tokenizer::default();
        let opts = RowWiseOptions { sep_cells: true, ..Default::default() };
        let s = serialize_row_wise(&table(), &tok, 2, &opts);
        let seps = s.tokens.iter().filter(|t| t.id == special::SEP).count();
        assert_eq!(seps, 2 + 4); // 2 header cells + 4 data cells
    }

    #[test]
    fn column_wise_one_cls_per_column() {
        let tok = Tokenizer::default();
        let s = serialize_column_wise(&table(), &tok, 2);
        assert_eq!(s.column_cls.len(), 2);
        let cls0 = s.column_cls[0].unwrap();
        let cls1 = s.column_cls[1].unwrap();
        assert_eq!(s.tokens[cls0].id, special::CLS);
        assert_eq!(s.tokens[cls1].id, special::CLS);
        assert!(cls0 < cls1);
        // Values-only: no header tokens (row 0 non-special).
        assert!(!s.provenance.iter().any(|p| p.row == 0 && !p.special));
        // Column 1's values all precede column 2's CLS.
        assert!(s.provenance[cls0 + 1..cls1].iter().all(|p| p.col == 1));
    }

    #[test]
    fn null_cells_get_null_token() {
        let tok = Tokenizer::default();
        let t = Table::new("t", vec![Column::new("a", vec![Value::Null])]);
        let s = serialize_row_wise(&t, &tok, 1, &RowWiseOptions::default());
        assert!(s.tokens.iter().any(|tk| tk.id == special::NULL));
    }

    #[test]
    fn row_template_mentions_headers_and_values() {
        let tok = Tokenizer::default();
        let s = serialize_row_template(&table(), &tok, 0);
        assert_eq!(s.rows, 1);
        assert!(s.provenance.iter().all(|p| p.row == 1));
        // header tokens (segment 0) and value tokens (segment 1) both present
        assert!(s.tokens.iter().any(|t| t.segment == 0));
        assert!(s.tokens.iter().any(|t| t.segment == 1));
    }

    #[test]
    fn fit_rows_binary_search() {
        // Each row costs 10 tokens plus a fixed 7-token preamble.
        let len = |k: usize| 7 + 10 * k;
        assert_eq!(fit_rows(100, 57, len), 5);
        assert_eq!(fit_rows(100, 56, len), 4);
        assert_eq!(fit_rows(3, 1000, len), 3); // capped by total rows
        assert_eq!(fit_rows(100, 5, len), 0); // preamble alone overflows
        assert_eq!(fit_rows(100, 7, len), 0);
        assert_eq!(fit_rows(100, 17, len), 1);
    }

    #[test]
    fn fit_rows_matches_linear_scan() {
        let tok = Tokenizer::default();
        let t = table();
        let opts = RowWiseOptions::default();
        for budget in [0usize, 5, 10, 20, 40, 100] {
            let by_search =
                fit_rows(t.num_rows(), budget, |k| serialize_row_wise(&t, &tok, k, &opts).len());
            let mut by_scan = 0;
            for k in 0..=t.num_rows() {
                if serialize_row_wise(&t, &tok, k, &opts).len() <= budget {
                    by_scan = k;
                }
            }
            assert_eq!(by_search, by_scan, "budget {budget}");
        }
    }
}
