//! The model zoo: the nine table-embedding models of the paper's
//! evaluation (§4.1, Table 1), each a configuration of
//! [`crate::adapter::BaseModel`].
//!
//! Shared hyperparameters live in [`base_config`]; each model module sets
//! only what its namesake's architecture actually changes: serialization,
//! positional scheme, structural attention, exposed levels, aggregation.

pub mod bert;
pub mod doduo;
pub mod roberta;
pub mod t5;
pub mod tabert;
pub mod tapas;
pub mod tapex;
pub mod taptap;
pub mod turl;

use observatory_transformer::TransformerConfig;

/// Workspace-wide default hyperparameters for the synthetic checkpoints.
///
/// The hidden size (64) and token budget (192) are scaled down from the
/// real models' 768/512 to keep thousand-permutation experiments tractable
/// on one machine; every measure in Observatory is dimension-agnostic
/// (Albert–Zhang's MCV was chosen by the paper precisely because it
/// tolerates any n-vs-d regime).
pub fn base_config(seed_label: &str) -> TransformerConfig {
    TransformerConfig {
        dim: 64,
        n_heads: 4,
        n_layers: 2,
        ffn_dim: 128,
        max_len: 192,
        vocab_size: 8192,
        seed_label: seed_label.to_string(),
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use crate::registry::all_models;
    use observatory_table::{Column, Table, Value};

    fn demo_table() -> Table {
        Table::new(
            "demo",
            vec![
                Column::new("id", (1..=4).map(Value::Int).collect()),
                Column::new(
                    "city",
                    ["Amsterdam", "Ann Arbor", "Utrecht", "Detroit"]
                        .iter()
                        .map(|s| Value::text(*s))
                        .collect(),
                ),
                Column::new(
                    "population",
                    vec![
                        Value::Int(921_402),
                        Value::Int(123_851),
                        Value::Int(361_699),
                        Value::Int(620_376),
                    ],
                ),
            ],
        )
    }

    #[test]
    fn every_model_encodes_the_demo_table() {
        for m in all_models() {
            let enc = m.encode_table(&demo_table());
            assert!(enc.embeddings.as_slice().iter().all(|x| x.is_finite()), "{}", m.name());
            assert!(enc.rows_encoded > 0, "{} encoded no rows", m.name());
        }
    }

    #[test]
    fn capabilities_match_paper_table_1() {
        use crate::encoding::Level::*;
        let expect = [
            ("bert", vec![Table, Column, Row, Cell, Entity]),
            ("roberta", vec![Table, Column, Row, Cell, Entity]),
            ("t5", vec![Table, Column, Row, Cell, Entity]),
            ("tapas", vec![Table, Column, Row, Cell, Entity]),
            ("tabert", vec![Table, Column]),
            ("tapex", vec![Table, Row]),
            ("turl", vec![Column, Entity, Cell]),
            ("doduo", vec![Column, Cell, Entity]),
            ("taptap", vec![Row]),
        ];
        for (name, levels) in expect {
            let m = crate::registry::model_by_name(name).unwrap();
            for level in crate::encoding::Level::ALL {
                assert_eq!(
                    m.capabilities().supports(level),
                    levels.contains(&level),
                    "{name} level {level:?}"
                );
            }
        }
    }

    #[test]
    fn embeddings_differ_across_models() {
        let t = demo_table();
        let models = all_models();
        let embs: Vec<Option<Vec<f64>>> =
            models.iter().map(|m| m.column_embedding(&t, 1)).collect();
        for i in 0..models.len() {
            for j in (i + 1)..models.len() {
                if let (Some(a), Some(b)) = (&embs[i], &embs[j]) {
                    assert_ne!(a, b, "{} vs {}", models[i].name(), models[j].name());
                }
            }
        }
    }

    #[test]
    fn text_encoding_works_for_all() {
        for m in all_models() {
            let v = m.encode_text("World Championships 1997");
            assert_eq!(v.len(), m.dim());
            assert!(v.iter().all(|x| x.is_finite()));
        }
    }
}
