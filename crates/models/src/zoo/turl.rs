//! TURL (Deng et al., 2020): table understanding through representation
//! learning over entity-rich web tables.
//!
//! TURL consumes the table *with metadata* (caption and headers as
//! context) and produces **entity** and **column** representations; the
//! paper notes it "is designed and implemented to output embeddings from
//! entity-rich tables like those in WikiTables" and excludes it from the
//! join/perturbation/context experiments (Table 2). The adapter keeps the
//! caption in the serialization (segment 2) and exposes entity embeddings
//! as mention spans enriched by structural ids.

use crate::adapter::{BaseModel, SerializationKind, TableEncoder};
use crate::encoding::{Capabilities, ModelEncoding, Readout};
use crate::serialize::RowWiseOptions;
use observatory_table::Table;
use observatory_transformer::{PositionalScheme, TransformerConfig};

/// The TURL adapter. Wraps [`BaseModel`] to inject the table caption as
/// metadata context, TURL's distinguishing input component.
pub struct Turl {
    base: BaseModel,
}

/// Construct the TURL adapter.
pub fn turl() -> Turl {
    let config = TransformerConfig {
        positional: PositionalScheme::TableAware,
        ..super::base_config("turl")
    };
    let opts = RowWiseOptions::default();
    Turl {
        base: BaseModel::new(
            "turl",
            "TURL",
            config,
            SerializationKind::RowWise(opts),
            Capabilities { column: true, cell: true, entity: true, ..Capabilities::none() },
            Readout::MeanPool,
            Readout::MeanPool,
            None,
        ),
    }
}

impl TableEncoder for Turl {
    fn name(&self) -> &str {
        self.base.name()
    }

    fn display_name(&self) -> &str {
        self.base.display_name()
    }

    fn dim(&self) -> usize {
        self.base.dim()
    }

    fn capabilities(&self) -> Capabilities {
        self.base.capabilities()
    }

    fn encode_table(&self, table: &Table) -> ModelEncoding {
        // TURL's input includes table metadata: prepend the caption as a
        // pseudo-header column-0 context by renaming the table into the
        // first column's header region is invasive; instead encode the
        // caption through the auxiliary-text channel by cloning the table
        // with a caption-bearing name. The serializer reads only headers
        // and values, so we splice the caption via a dedicated serialization
        // below.
        let mut named = table.clone();
        if !table.name.is_empty() {
            // Caption participates as metadata on the first column header
            // row: "<caption> | headers | values".
            named.name = table.name.clone();
        }
        self.base.encode_table_with_caption(&named)
    }

    fn encode_text(&self, text: &str) -> Vec<f64> {
        self.base.encode_text(text)
    }
}

impl BaseModel {
    /// Row-wise encoding with the table caption injected as auxiliary
    /// metadata (TURL's input convention).
    pub(crate) fn encode_table_with_caption(&self, table: &Table) -> ModelEncoding {
        self.encode_table_with_aux(table, (!table.name.is_empty()).then(|| table.name.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use observatory_table::{Column, Value};

    fn entity_table(name: &str) -> Table {
        Table::new(
            name,
            vec![
                Column::new(
                    "player",
                    ["Federer", "Nadal", "Djokovic"].iter().map(|s| Value::text(*s)).collect(),
                ),
                Column::new(
                    "country",
                    ["Switzerland", "Spain", "Serbia"].iter().map(|s| Value::text(*s)).collect(),
                ),
            ],
        )
    }

    #[test]
    fn entity_embeddings_exposed() {
        let m = turl();
        let t = entity_table("tennis players");
        assert!(m.entity_embedding(&t, 0, 0).is_some());
        assert!(m.column_embedding(&t, 0).is_some());
        assert!(m.row_embedding(&t, 0).is_none());
        assert!(m.table_embedding(&t).is_none());
    }

    #[test]
    fn caption_conditions_entities() {
        let m = turl();
        let a = entity_table("tennis players");
        let b = entity_table("badminton world championships");
        assert_ne!(m.entity_embedding(&a, 0, 0), m.entity_embedding(&b, 0, 0));
    }

    #[test]
    fn same_mention_different_context_differs() {
        // "World Championships" as athletics vs badminton context — the
        // paper's Property 6 example of context-dependent entity linking.
        let m = turl();
        let mut a = entity_table("athletics");
        let mut b = entity_table("badminton");
        a.columns[0].values[0] = Value::text("World Championships");
        b.columns[0].values[0] = Value::text("World Championships");
        b.columns[1].values[1] = Value::text("Denmark");
        assert_ne!(m.entity_embedding(&a, 0, 0), m.entity_embedding(&b, 0, 0));
    }
}
