//! T5 (Raffel et al., 2020): encoder of the text-to-text transformer.
//!
//! T5 has **no absolute position embeddings**; position enters only
//! through a learned relative attention bias. There is also no `[CLS]`
//! token, so every level — including the table — is mean-pooled. The
//! paper's signature T5 observation (Figures 6/8) is that its embedding
//! clouds stretch along a dominant direction: high cosine similarity *and*
//! high MCV at once.

use crate::adapter::{BaseModel, SerializationKind};
use crate::encoding::{Capabilities, Readout};
use crate::serialize::RowWiseOptions;
use observatory_transformer::{PositionalScheme, TransformerConfig};

/// Construct the T5 adapter.
pub fn t5() -> BaseModel {
    let config = TransformerConfig {
        positional: PositionalScheme::RelativeBias,
        ..super::base_config("t5")
    };
    let opts = RowWiseOptions { cls: false, ..Default::default() };
    BaseModel::new(
        "t5",
        "T5",
        config,
        SerializationKind::RowWise(opts),
        Capabilities::all(),
        Readout::MeanPool,
        Readout::MeanPool,
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::TableEncoder;
    use observatory_table::{Column, Table, Value};

    fn table() -> Table {
        Table::new(
            "t",
            vec![
                Column::new("a", (0..5).map(Value::Int).collect()),
                Column::new(
                    "b",
                    ["v", "w", "x", "y", "z"].iter().map(|s| Value::text(*s)).collect(),
                ),
            ],
        )
    }

    #[test]
    fn no_cls_token() {
        let m = t5();
        let enc = m.encode_table(&table());
        assert_eq!(enc.table_cls, None);
        assert!(enc.table().is_some(), "table embedding falls back to mean pooling");
    }

    #[test]
    fn relative_positions_still_order_sensitive() {
        // Relative bias means shuffling tokens can still change embeddings
        // (relative distances change), just without an absolute anchor.
        let m = t5();
        let t = table();
        let swapped = observatory_table::perm::permute_rows(&t, &[4, 3, 2, 1, 0]);
        assert_ne!(m.column_embedding(&t, 1), m.column_embedding(&swapped, 1));
    }
}
