//! TaPEx (Liu et al., 2022): pretraining as a neural SQL executor.
//!
//! BART-style encoder taking a SQL query plus the flattened table. Per the
//! paper's Table 1 it exposes **row and table** embeddings; Observatory
//! excludes it from column-level experiments accordingly.

use crate::adapter::{BaseModel, SerializationKind};
use crate::encoding::{Capabilities, Readout};
use crate::serialize::RowWiseOptions;

/// Construct the TaPEx adapter with an empty query slot.
pub fn tapex() -> BaseModel {
    tapex_with_query(None)
}

/// Construct a TaPEx adapter whose serialization prepends a SQL query.
pub fn tapex_with_query(query: Option<&str>) -> BaseModel {
    let opts = RowWiseOptions { auxiliary_text: query.map(str::to_string), ..Default::default() };
    BaseModel::new(
        "tapex",
        "TaPEx",
        super::base_config("tapex"),
        SerializationKind::RowWise(opts),
        Capabilities { table: true, row: true, ..Capabilities::none() },
        Readout::MeanPool,
        Readout::Cls,
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::TableEncoder;
    use observatory_table::{Column, Table, Value};

    fn table() -> Table {
        Table::new("t", vec![Column::new("a", vec![Value::Int(1), Value::Int(2), Value::Int(3)])])
    }

    #[test]
    fn row_and_table_only() {
        let m = tapex();
        let t = table();
        assert!(m.row_embedding(&t, 1).is_some());
        assert!(m.table_embedding(&t).is_some());
        assert!(m.column_embedding(&t, 0).is_none());
        assert!(m.cell_embedding(&t, 0, 0).is_none());
    }

    #[test]
    fn sql_query_conditions_the_encoding() {
        let plain = tapex();
        let queried = tapex_with_query(Some("select a from t where a > 1"));
        let t = table();
        assert_ne!(plain.row_embedding(&t, 0), queried.row_embedding(&t, 0));
    }
}
