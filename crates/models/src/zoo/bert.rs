//! BERT (Devlin et al., 2019): the vanilla-LM baseline.
//!
//! No table-specific design: row-wise serialization is applied
//! "experimentally" as the paper does for vanilla LMs (§4.3), with learned
//! absolute positions, a leading `[CLS]` used as the table embedding, and
//! mean-pooled token spans for columns/rows/cells.

use crate::adapter::{BaseModel, SerializationKind};
use crate::encoding::{Capabilities, Readout};
use crate::serialize::RowWiseOptions;

/// Construct the BERT adapter.
pub fn bert() -> BaseModel {
    BaseModel::new(
        "bert",
        "BERT",
        super::base_config("bert"),
        SerializationKind::RowWise(RowWiseOptions::default()),
        Capabilities::all(),
        Readout::MeanPool,
        Readout::Cls,
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::TableEncoder;
    use observatory_linalg::vector::cosine;
    use observatory_table::{perm, Column, Table, Value};

    fn table() -> Table {
        Table::new(
            "t",
            vec![
                Column::new("year", (1990..1996).map(Value::Int).collect()),
                Column::new(
                    "event",
                    ["a", "bb", "ccc", "dd", "e", "fff"].iter().map(|s| Value::text(*s)).collect(),
                ),
            ],
        )
    }

    #[test]
    fn identity_basics() {
        let m = bert();
        assert_eq!(m.name(), "bert");
        assert_eq!(m.display_name(), "BERT");
        assert_eq!(m.dim(), 64);
    }

    #[test]
    fn column_embeddings_fairly_robust_to_row_shuffles() {
        // The paper's headline finding for BERT: column embeddings are
        // robust to row order (Q1 cosine > 0.97 on WikiTables). On this
        // small synthetic table we assert the weaker directional claim.
        let m = bert();
        let t = table();
        let base = m.column_embedding(&t, 1).unwrap();
        for shuffled in perm::row_shuffles(&t, 6, 9).iter().skip(1) {
            let e = m.column_embedding(shuffled, 1).unwrap();
            assert!(cosine(&base, &e) > 0.8, "cosine {}", cosine(&base, &e));
        }
    }

    #[test]
    fn table_embedding_is_cls() {
        let m = bert();
        let enc = m.encode_table(&table());
        let cls_idx = enc.table_cls.unwrap();
        assert_eq!(enc.table().unwrap(), enc.embeddings.row(cls_idx).to_vec());
    }
}
