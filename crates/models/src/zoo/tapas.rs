//! TAPAS (Herzig et al., 2020): weakly-supervised table parsing.
//!
//! Row-wise serialization with an NL-question slot, and — the structural
//! signature — **dedicated row-id and column-id embeddings per token** on
//! top of (deliberately cooler) absolute positions. Because every data
//! token knows its own row/column directly, TAPAS depends less on sequence
//! position, which is why the paper finds it comparatively robust to row
//! order and sampling.

use crate::adapter::{BaseModel, SerializationKind};
use crate::encoding::{Capabilities, Readout};
use crate::serialize::RowWiseOptions;
use observatory_transformer::{PositionalScheme, TransformerConfig};

/// Construct the TAPAS adapter with an empty question slot.
pub fn tapas() -> BaseModel {
    tapas_with_question(None)
}

/// Construct a TAPAS adapter whose serialization prepends an NL question —
/// the model's native operating mode for TableQA.
pub fn tapas_with_question(question: Option<&str>) -> BaseModel {
    let config = TransformerConfig {
        positional: PositionalScheme::TableAware,
        pos_std_scale: 0.5,
        ..super::base_config("tapas")
    };
    let opts =
        RowWiseOptions { auxiliary_text: question.map(str::to_string), ..Default::default() };
    BaseModel::new(
        "tapas",
        "TAPAS",
        config,
        SerializationKind::RowWise(opts),
        Capabilities::all(),
        Readout::MeanPool,
        Readout::Cls,
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::TableEncoder;
    use observatory_table::{Column, Table, Value};

    fn table() -> Table {
        Table::new(
            "t",
            vec![
                Column::new("year", (1990..1995).map(Value::Int).collect()),
                Column::new(
                    "event",
                    ["aa", "bb", "cc", "dd", "ee"].iter().map(|s| Value::text(*s)).collect(),
                ),
            ],
        )
    }

    #[test]
    fn question_changes_embeddings() {
        let plain = tapas();
        let asked = tapas_with_question(Some("which year has event aa"));
        let t = table();
        assert_ne!(plain.column_embedding(&t, 0), asked.column_embedding(&t, 0));
    }

    #[test]
    fn question_tokens_are_not_data() {
        let asked = tapas_with_question(Some("how many events"));
        let enc = asked.encode_table(&table());
        // All question tokens live outside any (row, col) cell.
        assert!(enc
            .provenance
            .iter()
            .zip(0..)
            .all(|(p, _)| !(p.row > 0 && p.col == 0 && !p.special)));
        assert!(enc.column(0).is_some());
    }
}
