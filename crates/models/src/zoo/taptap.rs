//! TapTap (Zhang et al., 2023): generative table pretraining for tabular
//! prediction.
//!
//! TapTap "encodes single rows independently using a text template
//! serialization strategy and only gives row embeddings" (paper §4.2) —
//! the reason it is excluded from every experiment except column-order
//! insignificance (Table 2). Each row is rendered as
//! `"h₁ is v₁, h₂ is v₂, …"` and encoded with no cross-row attention.

use crate::adapter::{BaseModel, SerializationKind};
use crate::encoding::{Capabilities, Readout};

/// Construct the TapTap adapter.
pub fn taptap() -> BaseModel {
    BaseModel::new(
        "taptap",
        "TapTap",
        super::base_config("taptap"),
        SerializationKind::RowTemplate,
        Capabilities { row: true, ..Capabilities::none() },
        Readout::MeanPool,
        Readout::MeanPool,
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::TableEncoder;
    use observatory_table::{perm, Column, Table, Value};

    fn table() -> Table {
        Table::new(
            "t",
            vec![
                Column::new("name", vec![Value::text("ada"), Value::text("bob")]),
                Column::new("age", vec![Value::Int(36), Value::Int(41)]),
            ],
        )
    }

    #[test]
    fn row_embeddings_independent_of_other_rows() {
        let m = taptap();
        let t = table();
        let shuffled = perm::permute_rows(&t, &[1, 0]);
        // The *content* row "ada, 36" has the same embedding wherever it
        // sits — rows are encoded in isolation.
        assert_eq!(m.row_embedding(&t, 0), m.row_embedding(&shuffled, 1));
    }

    #[test]
    fn row_only_capabilities() {
        let m = taptap();
        let t = table();
        assert!(m.row_embedding(&t, 0).is_some());
        assert!(m.column_embedding(&t, 0).is_none());
        assert!(m.table_embedding(&t).is_none());
    }

    #[test]
    fn template_is_schema_aware() {
        // Unlike DODUO, TapTap's template mentions headers: renaming a
        // column changes row embeddings.
        let m = taptap();
        let t1 = table();
        let mut t2 = table();
        t2.columns[1].header = "years_alive".into();
        assert_ne!(m.row_embedding(&t1, 0), m.row_embedding(&t2, 0));
    }

    #[test]
    fn column_order_still_matters() {
        // Table 2 keeps TapTap in the column-order experiment: the template
        // concatenates columns in order, so permuting columns changes rows.
        let m = taptap();
        let t = table();
        let swapped = perm::permute_columns(&t, &[1, 0]);
        assert_ne!(m.row_embedding(&t, 0), m.row_embedding(&swapped, 0));
    }
}
