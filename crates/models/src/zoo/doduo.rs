//! DODUO (Suhara et al., 2022): column type / relation annotation.
//!
//! Column-wise serialization of **data values only** (the schema is
//! ignored entirely — headers never enter the input), one `[CLS]` inserted
//! per column, and that `[CLS]` *is* the column representation. Two paper
//! findings follow directly from this design and are asserted in the
//! tests: DODUO shows literally zero variance under schema-level
//! perturbations (§5.7), and its `[CLS]` readout makes it the most
//! row-order- and sampling-sensitive model in the study (§5.1, §5.5).

use crate::adapter::{BaseModel, SerializationKind};
use crate::encoding::{Capabilities, Readout};

/// Construct the DODUO adapter.
pub fn doduo() -> BaseModel {
    BaseModel::new(
        "doduo",
        "DODUO",
        observatory_transformer::TransformerConfig {
            // Hot positions and sharp (selective) attention: DODUO's
            // fine-tuned, per-column [CLS] readout makes it the most
            // row-order- and sampling-sensitive model in the paper (§5.1,
            // §5.5). Selectivity is what converts value reordering into
            // [CLS] movement — near-uniform attention would average it out.
            pos_std_scale: 1.5,
            attention_sharpness: 16.0,
            attention_gain: 2.5,
            ..super::base_config("doduo")
        },
        SerializationKind::ColumnWise,
        // Native output is columns (Table 1), but Observatory's token-
        // provenance retrieval also extracts cell/entity spans from DODUO —
        // the paper includes DODUO in the cell-level FD experiment
        // (Table 4) and the entity-stability heatmaps (Figure 12).
        Capabilities { column: true, cell: true, entity: true, ..Capabilities::none() },
        Readout::Cls,
        Readout::MeanPool,
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::TableEncoder;
    use observatory_table::{Column, Table, Value};

    fn table() -> Table {
        Table::new(
            "t",
            vec![
                Column::new("alpha", vec![Value::Int(1), Value::Int(2)]),
                Column::new("beta", vec![Value::text("x"), Value::text("y")]),
            ],
        )
    }

    #[test]
    fn schema_blind() {
        // Renaming every header must not move any embedding: DODUO only
        // reads data values. This is the mechanism behind its zero variance
        // in the paper's perturbation-robustness experiment.
        let m = doduo();
        let t1 = table();
        let mut t2 = table();
        t2.columns[0].header = "totally_different".into();
        t2.columns[1].header = "names_here".into();
        assert_eq!(m.column_embedding(&t1, 0), m.column_embedding(&t2, 0));
        assert_eq!(m.column_embedding(&t1, 1), m.column_embedding(&t2, 1));
    }

    #[test]
    fn column_only_capabilities() {
        let m = doduo();
        let t = table();
        assert!(m.column_embedding(&t, 0).is_some());
        assert!(m.row_embedding(&t, 0).is_none());
        assert!(m.table_embedding(&t).is_none());
        assert!(m.cell_embedding(&t, 0, 0).is_some());
    }

    #[test]
    fn cls_readout_is_the_column_embedding() {
        let m = doduo();
        let enc = m.encode_table(&table());
        let cls0 = enc.column_cls[0].unwrap();
        assert_eq!(enc.column(0).unwrap(), enc.embeddings.row(cls0).to_vec());
    }

    #[test]
    fn value_order_moves_the_cls() {
        // The [CLS] readout is position-conditioned: reordering the values
        // within columns (a row permutation) moves DODUO's embeddings.
        let m = doduo();
        let t = table();
        let swapped = observatory_table::perm::permute_rows(&t, &[1, 0]);
        assert_ne!(m.column_embedding(&t, 0), m.column_embedding(&swapped, 0));
    }
}
