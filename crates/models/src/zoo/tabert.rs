//! TaBERT (Yin et al., 2020): joint text/table pretraining.
//!
//! Three reproduced signatures:
//!
//! 1. `[SEP]`-delimited cells in a row-wise serialization;
//! 2. a **vertical attention** pass fusing information across rows within
//!    each column — after which only column (and table) embeddings are
//!    meaningful, which is why the paper excludes TaBERT from row/cell
//!    experiments (Table 2);
//! 3. the hard-coded **first-3-rows** input (the paper cites TaBERT's
//!    config; it is the root cause of TaBERT's "lucky" sample fidelity in
//!    §5.5).

use crate::adapter::{BaseModel, SerializationKind};
use crate::encoding::{Capabilities, Readout};
use crate::serialize::RowWiseOptions;
use observatory_transformer::{PositionalScheme, TransformerConfig};

/// TaBERT's hard input cap on rows (`vertical/config.py` in the original).
pub const TABERT_MAX_ROWS: usize = 3;

/// Construct the TaBERT adapter.
pub fn tabert() -> BaseModel {
    let config = TransformerConfig {
        positional: PositionalScheme::TableAware,
        vertical_attention: true,
        ..super::base_config("tabert")
    };
    let opts = RowWiseOptions { sep_cells: true, ..Default::default() };
    BaseModel::new(
        "tabert",
        "TaBERT",
        config,
        SerializationKind::RowWise(opts),
        Capabilities { table: true, column: true, ..Capabilities::none() },
        Readout::HeaderBiasedMean { header_weight: 0.8 },
        Readout::Cls,
        Some(TABERT_MAX_ROWS),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::TableEncoder;
    use observatory_table::{Column, Table, Value};

    fn table(n: usize) -> Table {
        Table::new(
            "t",
            vec![
                Column::new("id", (0..n as i64).map(Value::Int).collect()),
                Column::new("name", (0..n).map(|i| Value::text(format!("row{i}"))).collect()),
            ],
        )
    }

    #[test]
    fn only_first_three_rows_are_read() {
        let m = tabert();
        // Tables identical in the first 3 rows must encode identically,
        // whatever comes after — TaBERT's defining quirk.
        let mut a = table(10);
        let mut b = table(10);
        for i in 3..10 {
            a.columns[1].values[i] = Value::text(format!("aaa{i}"));
            b.columns[1].values[i] = Value::text(format!("zzz{i}"));
        }
        assert_eq!(m.column_embedding(&a, 1), m.column_embedding(&b, 1));
        assert_eq!(m.encode_table(&a).rows_encoded, 3);
    }

    #[test]
    fn rows_and_cells_not_exposed() {
        let m = tabert();
        let t = table(3);
        assert!(m.row_embedding(&t, 0).is_none());
        assert!(m.cell_embedding(&t, 0, 0).is_none());
        assert!(m.column_embedding(&t, 0).is_some());
        assert!(m.table_embedding(&t).is_some());
    }
}
