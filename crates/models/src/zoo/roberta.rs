//! RoBERTa (Liu et al., 2019): BERT's architecture, retuned pretraining.
//!
//! Same serialization and aggregation as BERT but independent weights and a
//! hotter positional component (`pos_std_scale` 2.5). The paper repeatedly
//! finds RoBERTa more position-sensitive than BERT: a > 5% median cosine
//! drop under column shuffling (§5.2) and surprising outliers under schema
//! perturbations (§5.7) — the adapter reproduces that imbalance between
//! content and position signal.

use crate::adapter::{BaseModel, SerializationKind};
use crate::encoding::{Capabilities, Readout};
use crate::serialize::RowWiseOptions;
use observatory_transformer::TransformerConfig;

/// Construct the RoBERTa adapter.
pub fn roberta() -> BaseModel {
    let config = TransformerConfig { pos_std_scale: 2.5, ..super::base_config("roberta") };
    BaseModel::new(
        "roberta",
        "RoBERTa",
        config,
        SerializationKind::RowWise(RowWiseOptions::default()),
        Capabilities::all(),
        Readout::MeanPool,
        Readout::Cls,
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::super::bert::bert;
    use super::*;
    use crate::adapter::TableEncoder;
    use observatory_linalg::vector::cosine;
    use observatory_stats::descriptive::mean;
    use observatory_table::{perm, Column, Table, Value};

    fn table(seed: u64) -> Table {
        let words = ["red", "green", "blue", "amber", "teal", "plum", "gold", "jade"];
        Table::new(
            "t",
            vec![
                Column::new("id", (0..8).map(|i| Value::Int(i + seed as i64)).collect()),
                Column::new("color", words.iter().map(|s| Value::text(*s)).collect()),
                Column::new("score", (0..8).map(|i| Value::Float(i as f64 * 1.5)).collect()),
            ],
        )
    }

    #[test]
    fn distinct_space_from_bert() {
        let (r, b) = (roberta(), bert());
        let t = table(0);
        assert_ne!(r.column_embedding(&t, 1), b.column_embedding(&t, 1));
    }

    #[test]
    fn more_column_order_sensitive_than_bert() {
        // Directional reproduction of §5.2: RoBERTa's cosine under column
        // shuffling sits below BERT's, averaged over tables and shuffles.
        let (r, b) = (roberta(), bert());
        let mut r_cos = Vec::new();
        let mut b_cos = Vec::new();
        for seed in 0..4u64 {
            let t = table(seed);
            let shuffles = perm::column_shuffles(&t, 6, seed);
            let (r0, b0) = (r.column_embedding(&t, 0).unwrap(), b.column_embedding(&t, 0).unwrap());
            for s in shuffles.iter().skip(1) {
                let j = s.column_index("id").unwrap();
                r_cos.push(cosine(&r0, &r.column_embedding(s, j).unwrap()));
                b_cos.push(cosine(&b0, &b.column_embedding(s, j).unwrap()));
            }
        }
        assert!(
            mean(&r_cos) < mean(&b_cos),
            "roberta {:.4} should be below bert {:.4}",
            mean(&r_cos),
            mean(&b_cos)
        );
    }
}
