//! Partitioned encoding of large tables (paper §7, "Impact of Tables with
//! Large Dimensionality").
//!
//! NextiaJD-S tables average 209k rows × 56 columns — far beyond any token
//! budget. The paper's handling: "large tables are partitioned into small
//! tables and the embeddings are aggregated accordingly", and it observes
//! no significant difference in the order-insignificance findings. This
//! module implements that path: split the table into row blocks, encode
//! each block independently, and aggregate per level by averaging the
//! block-level embeddings (weighted by the rows each block contributed).

use crate::adapter::TableEncoder;
use crate::encoding::ModelEncoding;
use observatory_linalg::vector;
use observatory_table::Table;

/// The aggregated encoding of a row-partitioned table.
pub struct PartitionedEncoding {
    /// Per-block encodings, in block order.
    blocks: Vec<ModelEncoding>,
    /// Rows per block (the last block may be short).
    block_rows: usize,
    total_rows: usize,
    cols: usize,
}

/// Encode `table` in row blocks of `block_rows` with `model`, for
/// aggregation via [`PartitionedEncoding`].
///
/// # Panics
/// Panics if `block_rows` is 0.
pub fn encode_partitioned(
    model: &dyn TableEncoder,
    table: &Table,
    block_rows: usize,
) -> PartitionedEncoding {
    assert!(block_rows > 0, "encode_partitioned: zero block size");
    let total_rows = table.num_rows();
    let mut blocks = Vec::new();
    let mut start = 0;
    loop {
        let end = (start + block_rows).min(total_rows);
        let idx: Vec<usize> = (start..end).collect();
        if idx.is_empty() && start > 0 {
            break;
        }
        let block = table.select_rows(&idx);
        blocks.push(model.encode_table(&block));
        if end >= total_rows {
            break;
        }
        start = end;
    }
    PartitionedEncoding { blocks, block_rows, total_rows, cols: table.num_cols() }
}

impl PartitionedEncoding {
    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Aggregated column embedding: mean of the block column embeddings
    /// (blocks whose budget dropped the column are skipped).
    pub fn column(&self, j: usize) -> Option<Vec<f64>> {
        if j >= self.cols {
            return None;
        }
        let embs: Vec<Vec<f64>> = self.blocks.iter().filter_map(|b| b.column(j)).collect();
        if embs.is_empty() {
            None
        } else {
            Some(vector::mean(&embs))
        }
    }

    /// Row embedding: rows map to exactly one block.
    pub fn row(&self, i: usize) -> Option<Vec<f64>> {
        if i >= self.total_rows {
            return None;
        }
        let block = i / self.block_rows;
        self.blocks.get(block)?.row(i % self.block_rows)
    }

    /// Aggregated table embedding: mean of block table embeddings.
    pub fn table(&self) -> Option<Vec<f64>> {
        let embs: Vec<Vec<f64>> = self.blocks.iter().filter_map(|b| b.table()).collect();
        if embs.is_empty() {
            None
        } else {
            Some(vector::mean(&embs))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::model_by_name;
    use observatory_table::{Column, Value};

    fn big_table(rows: usize) -> Table {
        Table::new(
            "big",
            vec![
                Column::new("id", (0..rows as i64).map(Value::Int).collect()),
                Column::new(
                    "name",
                    (0..rows).map(|i| Value::text(format!("entity {}", i % 17))).collect(),
                ),
            ],
        )
    }

    #[test]
    fn blocks_cover_all_rows() {
        let model = model_by_name("bert").unwrap();
        let t = big_table(25);
        let p = encode_partitioned(model.as_ref(), &t, 8);
        assert_eq!(p.num_blocks(), 4); // 8+8+8+1
        for i in 0..25 {
            assert!(p.row(i).is_some(), "row {i} unreachable");
        }
        assert!(p.row(25).is_none());
    }

    #[test]
    fn aggregated_levels_defined_and_finite() {
        let model = model_by_name("bert").unwrap();
        let t = big_table(30);
        let p = encode_partitioned(model.as_ref(), &t, 10);
        let col = p.column(1).unwrap();
        assert_eq!(col.len(), model.dim());
        assert!(col.iter().all(|x| x.is_finite()));
        assert!(p.table().is_some());
        assert!(p.column(2).is_none());
    }

    #[test]
    fn partitioning_is_close_to_direct_encoding_for_small_tables() {
        // One block == direct encoding.
        let model = model_by_name("bert").unwrap();
        let t = big_table(6);
        let direct = model.encode_table(&t);
        let p = encode_partitioned(model.as_ref(), &t, 100);
        assert_eq!(p.num_blocks(), 1);
        assert_eq!(p.column(0), direct.column(0));
    }

    #[test]
    fn beats_the_token_budget() {
        // 300 rows cannot fit any budget directly; partitioned encoding
        // still yields every row.
        let model = model_by_name("bert").unwrap();
        let t = big_table(300);
        let direct = model.encode_table(&t);
        assert!(direct.rows_encoded < 300);
        let p = encode_partitioned(model.as_ref(), &t, 8);
        assert!(p.row(299).is_some());
    }
}
