//! The [`TableEncoder`] trait and the shared adapter machinery.
//!
//! `TableEncoder` is Observatory's model interface: "researchers and
//! practitioners can use Observatory for analysis of new models by
//! specifying the procedure of embedding inference following the
//! implemented interface" (paper §1). Anything that can turn a table into
//! token embeddings with provenance — and a piece of text into a vector —
//! can be characterized by every property.

use crate::encoding::{Capabilities, ModelEncoding, Readout, TokenProvenance};
use crate::serialize::{
    fit_rows, serialize_column_wise, serialize_row_template, serialize_row_wise, RowWiseOptions,
    Serialized,
};
use observatory_linalg::Matrix;
use observatory_table::Table;
use observatory_tokenizer::Tokenizer;
use observatory_transformer::{Encoder, TokenInput, TransformerConfig};

/// A model that embeds relational tables. Object-safe; the registry hands
/// out `Box<dyn TableEncoder>`.
pub trait TableEncoder: Send + Sync {
    /// Stable machine name (lowercase, e.g. `"bert"`).
    fn name(&self) -> &str;
    /// Human-readable name (e.g. `"BERT"`).
    fn display_name(&self) -> &str;
    /// Embedding dimensionality.
    fn dim(&self) -> usize;
    /// Levels natively exposed (paper Table 1).
    fn capabilities(&self) -> Capabilities;
    /// Encode a table into token embeddings with provenance.
    fn encode_table(&self, table: &Table) -> ModelEncoding;
    /// Encode free text (entity mentions, NL questions) into one vector.
    fn encode_text(&self, text: &str) -> Vec<f64>;

    /// Column embedding of 0-based column `j` (convenience single-shot).
    fn column_embedding(&self, table: &Table, j: usize) -> Option<Vec<f64>> {
        self.encode_table(table).column(j)
    }

    /// Row embedding of 0-based row `i`.
    fn row_embedding(&self, table: &Table, i: usize) -> Option<Vec<f64>> {
        self.encode_table(table).row(i)
    }

    /// Table embedding.
    fn table_embedding(&self, table: &Table) -> Option<Vec<f64>> {
        self.encode_table(table).table()
    }

    /// Cell embedding at (row, column).
    fn cell_embedding(&self, table: &Table, i: usize, j: usize) -> Option<Vec<f64>> {
        self.encode_table(table).cell(i, j)
    }

    /// Entity embedding at (row, column); defaults to the cell span.
    fn entity_embedding(&self, table: &Table, i: usize, j: usize) -> Option<Vec<f64>> {
        self.encode_table(table).entity(i, j)
    }
}

/// How a [`BaseModel`] serializes tables.
#[derive(Debug, Clone)]
pub enum SerializationKind {
    /// Row-wise with the given options (most models).
    RowWise(RowWiseOptions),
    /// Column-wise, one `[CLS]` per column, values only (DODUO).
    ColumnWise,
    /// Every row encoded independently through a text template (TapTap).
    RowTemplate,
}

/// Shared implementation: a deterministic encoder + tokenizer + a
/// serialization/readout policy. The nine zoo adapters are thin
/// configurations of this struct.
pub struct BaseModel {
    name: &'static str,
    display: &'static str,
    encoder: Encoder,
    tokenizer: Tokenizer,
    serialization: SerializationKind,
    capabilities: Capabilities,
    column_readout: Readout,
    table_readout: Readout,
    /// Hard cap on input rows applied *before* budget fitting (TaBERT's
    /// first-3-rows convention); `None` = budget-only.
    max_input_rows: Option<usize>,
}

impl BaseModel {
    /// Assemble a model. `config.seed_label` should be the model name so
    /// weights are independent across models.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &'static str,
        display: &'static str,
        config: TransformerConfig,
        serialization: SerializationKind,
        capabilities: Capabilities,
        column_readout: Readout,
        table_readout: Readout,
        max_input_rows: Option<usize>,
    ) -> Self {
        let tokenizer = Tokenizer::new(config.vocab_size as u32);
        let encoder = Encoder::new(config);
        Self {
            name,
            display,
            encoder,
            tokenizer,
            serialization,
            capabilities,
            column_readout,
            table_readout,
            max_input_rows,
        }
    }

    fn budget(&self) -> usize {
        self.encoder.max_len()
    }

    /// Row-wise encoding with `aux` overriding the serialization's
    /// auxiliary-text slot when set (TURL captions, per-call questions).
    /// Falls back to the normal path for non-row-wise serializations.
    pub(crate) fn encode_table_with_aux(
        &self,
        table: &Table,
        aux: Option<String>,
    ) -> ModelEncoding {
        match (&self.serialization, aux) {
            (SerializationKind::RowWise(opts), Some(aux)) => {
                let opts = RowWiseOptions { auxiliary_text: Some(aux), ..opts.clone() };
                let capped;
                let table = match self.max_input_rows {
                    Some(k) if table.num_rows() > k => {
                        capped = table.head(k);
                        &capped
                    }
                    _ => table,
                };
                let rows = fit_rows(table.num_rows(), self.budget(), |k| {
                    serialize_row_wise(table, &self.tokenizer, k, &opts).len()
                });
                let s = serialize_row_wise(table, &self.tokenizer, rows, &opts);
                self.run(s, table.num_cols())
            }
            _ => self.encode_table(table),
        }
    }

    /// Encode a table and return the encoder's per-layer attention maps
    /// alongside the embeddings — the substrate for attention-pattern
    /// analyses of table models (paper §2.2, Koleva et al.). Provenance in
    /// the returned encoding indexes the attention maps' rows/columns.
    /// Row-template serializations return no maps (rows are independent
    /// sequences).
    pub fn encode_table_with_attention(&self, table: &Table) -> (ModelEncoding, Vec<Matrix>) {
        let capped;
        let table = match self.max_input_rows {
            Some(k) if table.num_rows() > k => {
                capped = table.head(k);
                &capped
            }
            _ => table,
        };
        let s = match &self.serialization {
            SerializationKind::RowWise(opts) => {
                let rows = fit_rows(table.num_rows(), self.budget(), |k| {
                    serialize_row_wise(table, &self.tokenizer, k, opts).len()
                });
                serialize_row_wise(table, &self.tokenizer, rows, opts)
            }
            SerializationKind::ColumnWise => {
                let rows = fit_rows(table.num_rows(), self.budget(), |k| {
                    serialize_column_wise(table, &self.tokenizer, k).len()
                });
                serialize_column_wise(table, &self.tokenizer, rows)
            }
            SerializationKind::RowTemplate => {
                return (self.encode_table(table), Vec::new());
            }
        };
        if s.is_empty() {
            return (self.run(s, table.num_cols()), Vec::new());
        }
        let (embeddings, maps) = self.encoder.encode_with_attention(&s.tokens);
        let encoding = ModelEncoding {
            embeddings,
            provenance: s.provenance,
            table_cls: s.table_cls,
            column_cls: s.column_cls,
            rows_encoded: s.rows,
            cols_encoded: table.num_cols(),
            column_readout: self.column_readout,
            table_readout: self.table_readout,
            capabilities: self.capabilities,
        };
        (encoding, maps)
    }

    fn run(&self, s: Serialized, cols: usize) -> ModelEncoding {
        let (embeddings, provenance) = if s.is_empty() {
            (
                Matrix::zeros(1, self.encoder.dim()),
                vec![TokenProvenance { row: 0, col: 0, special: true }],
            )
        } else {
            (self.encoder.encode(&s.tokens), s.provenance)
        };
        ModelEncoding {
            embeddings,
            provenance,
            table_cls: s.table_cls,
            column_cls: s.column_cls,
            rows_encoded: s.rows,
            cols_encoded: cols,
            column_readout: self.column_readout,
            table_readout: self.table_readout,
            capabilities: self.capabilities,
        }
    }
}

impl TableEncoder for BaseModel {
    fn name(&self) -> &str {
        self.name
    }

    fn display_name(&self) -> &str {
        self.display
    }

    fn dim(&self) -> usize {
        self.encoder.dim()
    }

    fn capabilities(&self) -> Capabilities {
        self.capabilities
    }

    fn encode_table(&self, table: &Table) -> ModelEncoding {
        let capped;
        let table = match self.max_input_rows {
            Some(k) if table.num_rows() > k => {
                capped = table.head(k);
                &capped
            }
            _ => table,
        };
        match &self.serialization {
            SerializationKind::RowWise(opts) => {
                let rows = fit_rows(table.num_rows(), self.budget(), |k| {
                    serialize_row_wise(table, &self.tokenizer, k, opts).len()
                });
                let s = serialize_row_wise(table, &self.tokenizer, rows, opts);
                self.run(s, table.num_cols())
            }
            SerializationKind::ColumnWise => {
                let rows = fit_rows(table.num_rows(), self.budget(), |k| {
                    serialize_column_wise(table, &self.tokenizer, k).len()
                });
                let s = serialize_column_wise(table, &self.tokenizer, rows);
                self.run(s, table.num_cols())
            }
            SerializationKind::RowTemplate => {
                // Each row is encoded independently: no cross-row context,
                // by construction (TapTap).
                let dim = self.encoder.dim();
                let mut all_rows: Vec<Vec<f64>> = Vec::new();
                let mut provenance = Vec::new();
                for i in 0..table.num_rows() {
                    let s = serialize_row_template(table, &self.tokenizer, i);
                    if s.is_empty() {
                        continue;
                    }
                    let n = s.tokens.len().min(self.budget());
                    let emb = self.encoder.encode(&s.tokens);
                    for t in 0..n {
                        all_rows.push(emb.row(t).to_vec());
                        provenance.push(s.provenance[t]);
                    }
                }
                let embeddings = if all_rows.is_empty() {
                    Matrix::zeros(1, dim)
                } else {
                    Matrix::from_rows(&all_rows)
                };
                if provenance.is_empty() {
                    provenance.push(TokenProvenance { row: 0, col: 0, special: true });
                }
                ModelEncoding {
                    embeddings,
                    provenance,
                    table_cls: None,
                    column_cls: Vec::new(),
                    rows_encoded: table.num_rows(),
                    cols_encoded: table.num_cols(),
                    column_readout: self.column_readout,
                    table_readout: self.table_readout,
                    capabilities: self.capabilities,
                }
            }
        }
    }

    fn encode_text(&self, text: &str) -> Vec<f64> {
        let ids = self.tokenizer.encode(text);
        let tokens: Vec<TokenInput> = ids.into_iter().map(TokenInput::plain).collect();
        self.encoder.encode(&tokens).row_mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use observatory_table::{Column, Value};

    fn model() -> BaseModel {
        BaseModel::new(
            "testmodel",
            "TestModel",
            TransformerConfig {
                dim: 16,
                n_heads: 2,
                n_layers: 1,
                ffn_dim: 32,
                max_len: 64,
                vocab_size: 512,
                seed_label: "testmodel".into(),
                ..Default::default()
            },
            SerializationKind::RowWise(RowWiseOptions::default()),
            Capabilities::all(),
            Readout::MeanPool,
            Readout::Cls,
            None,
        )
    }

    fn table(rows: usize) -> Table {
        Table::new(
            "t",
            vec![
                Column::new("id", (0..rows as i64).map(Value::Int).collect()),
                Column::new(
                    "name",
                    (0..rows).map(|i| Value::text(format!("entity {i}"))).collect(),
                ),
            ],
        )
    }

    #[test]
    fn encode_table_produces_all_levels() {
        let m = model();
        let enc = m.encode_table(&table(3));
        assert!(enc.table().is_some());
        assert!(enc.column(0).is_some());
        assert!(enc.column(1).is_some());
        assert!(enc.row(0).is_some());
        assert!(enc.cell(2, 1).is_some());
        assert_eq!(enc.dim(), 16);
        assert_eq!(enc.rows_encoded, 3);
    }

    #[test]
    fn deterministic_encoding() {
        let m1 = model();
        let m2 = model();
        let t = table(3);
        assert_eq!(m1.column_embedding(&t, 0), m2.column_embedding(&t, 0));
        assert_eq!(m1.encode_text("hello"), m2.encode_text("hello"));
    }

    #[test]
    fn token_budget_limits_rows() {
        let m = model();
        let enc = m.encode_table(&table(100));
        assert!(enc.rows_encoded < 100, "budget must truncate rows");
        assert!(enc.rows_encoded > 0);
        assert!(enc.embeddings.rows() <= 64);
        // Every encoded row is retrievable; rows beyond the budget are not.
        assert!(enc.row(enc.rows_encoded - 1).is_some());
        assert!(enc.row(enc.rows_encoded).is_none());
    }

    #[test]
    fn max_input_rows_caps_before_budget() {
        let m = BaseModel::new(
            "capped",
            "Capped",
            TransformerConfig {
                dim: 16,
                n_heads: 2,
                n_layers: 1,
                ffn_dim: 32,
                max_len: 64,
                vocab_size: 512,
                seed_label: "capped".into(),
                ..Default::default()
            },
            SerializationKind::RowWise(RowWiseOptions::default()),
            Capabilities::all(),
            Readout::MeanPool,
            Readout::Cls,
            Some(3),
        );
        let enc = m.encode_table(&table(50));
        assert_eq!(enc.rows_encoded, 3);
    }

    #[test]
    fn row_template_rows_are_independent() {
        let m = BaseModel::new(
            "tmpl",
            "Tmpl",
            TransformerConfig {
                dim: 16,
                n_heads: 2,
                n_layers: 1,
                ffn_dim: 32,
                max_len: 64,
                vocab_size: 512,
                seed_label: "tmpl".into(),
                ..Default::default()
            },
            SerializationKind::RowTemplate,
            Capabilities { row: true, ..Capabilities::none() },
            Readout::MeanPool,
            Readout::MeanPool,
            None,
        );
        // Row 0's embedding must not depend on what row 1 contains.
        let a = Table::new(
            "a",
            vec![Column::new("x", vec![Value::text("alpha"), Value::text("beta")])],
        );
        let b = Table::new(
            "b",
            vec![Column::new("x", vec![Value::text("alpha"), Value::text("gamma gamma")])],
        );
        let ra = m.row_embedding(&a, 0).unwrap();
        let rb = m.row_embedding(&b, 0).unwrap();
        assert_eq!(ra, rb);
        // And unsupported levels return None.
        assert!(m.column_embedding(&a, 0).is_none());
        assert!(m.table_embedding(&a).is_none());
    }

    #[test]
    fn empty_table_is_safe() {
        let m = model();
        let t = Table::new("empty", vec![Column::new("a", vec![])]);
        let enc = m.encode_table(&t);
        assert_eq!(enc.rows_encoded, 0);
        assert!(enc.row(0).is_none());
        // Header tokens still exist, so the column embedding is defined.
        assert!(enc.column(0).is_some());
    }

    #[test]
    fn text_encoding_dim() {
        let m = model();
        assert_eq!(m.encode_text("World Championships").len(), 16);
    }
}
