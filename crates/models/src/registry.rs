//! Model registry: construction by name, the full zoo, and the design
//! specifications behind the paper's Table 1.

use crate::adapter::TableEncoder;
use crate::zoo;

/// All stable model names, in the paper's presentation order.
pub const MODEL_NAMES: [&str; 9] =
    ["bert", "roberta", "t5", "tapas", "tabert", "tapex", "turl", "doduo", "taptap"];

/// Whether `name` is a registry model — without constructing it.
///
/// [`model_by_name`] generates the model's deterministic weights, which
/// costs tens of milliseconds; admission paths that only need to
/// *validate* a name (e.g. the serving front door) must use this
/// instead.
pub fn is_known_model(name: &str) -> bool {
    MODEL_NAMES.contains(&name)
}

/// Construct a model by its stable name. Returns `None` for unknown names.
pub fn model_by_name(name: &str) -> Option<Box<dyn TableEncoder>> {
    Some(match name {
        "bert" => Box::new(zoo::bert::bert()),
        "roberta" => Box::new(zoo::roberta::roberta()),
        "t5" => Box::new(zoo::t5::t5()),
        "tapas" => Box::new(zoo::tapas::tapas()),
        "tabert" => Box::new(zoo::tabert::tabert()),
        "tapex" => Box::new(zoo::tapex::tapex()),
        "turl" => Box::new(zoo::turl::turl()),
        "doduo" => Box::new(zoo::doduo::doduo()),
        "taptap" => Box::new(zoo::taptap::taptap()),
        _ => return None,
    })
}

/// Construct every model in the zoo.
pub fn all_models() -> Vec<Box<dyn TableEncoder>> {
    MODEL_NAMES.iter().map(|n| model_by_name(n).expect("registry consistency")).collect()
}

/// Design specification of a model (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelSpec {
    /// Stable name.
    pub name: &'static str,
    /// Display name.
    pub display: &'static str,
    /// Whether it is a vanilla language model (vs specialized table model).
    pub vanilla_lm: bool,
    /// Input specification.
    pub input: &'static str,
    /// Output embedding levels.
    pub output_embedding: &'static str,
    /// Flagship downstream task.
    pub downstream_task: &'static str,
}

/// The specification rows of the paper's Table 1, extended with the three
/// vanilla LMs for completeness.
pub fn specs() -> Vec<ModelSpec> {
    vec![
        ModelSpec {
            name: "bert",
            display: "BERT",
            vanilla_lm: true,
            input: "Text (tables serialized experimentally)",
            output_embedding: "Token / any (aggregated)",
            downstream_task: "General NLP",
        },
        ModelSpec {
            name: "roberta",
            display: "RoBERTa",
            vanilla_lm: true,
            input: "Text (tables serialized experimentally)",
            output_embedding: "Token / any (aggregated)",
            downstream_task: "General NLP",
        },
        ModelSpec {
            name: "t5",
            display: "T5",
            vanilla_lm: true,
            input: "Text (tables serialized experimentally)",
            output_embedding: "Token / any (aggregated)",
            downstream_task: "Text-to-text transfer",
        },
        ModelSpec {
            name: "turl",
            display: "TURL",
            vanilla_lm: false,
            input: "Table + metadata",
            output_embedding: "Entity / Col. / Col. pair",
            downstream_task: "Table interpretation/augmentation",
        },
        ModelSpec {
            name: "doduo",
            display: "DODUO",
            vanilla_lm: false,
            input: "Table",
            output_embedding: "Col. / Col. pair",
            downstream_task: "Column type/relation prediction",
        },
        ModelSpec {
            name: "tapas",
            display: "TAPAS",
            vanilla_lm: false,
            input: "NL question + table",
            output_embedding: "Question / Table",
            downstream_task: "Semantic parsing",
        },
        ModelSpec {
            name: "tabert",
            display: "TaBERT",
            vanilla_lm: false,
            input: "NL question + table",
            output_embedding: "Col. / Table",
            downstream_task: "Semantic parsing",
        },
        ModelSpec {
            name: "tapex",
            display: "TaPEx",
            vanilla_lm: false,
            input: "SQL query + table",
            output_embedding: "Row / Table",
            downstream_task: "Table Question Answering",
        },
        ModelSpec {
            name: "taptap",
            display: "TapTap",
            vanilla_lm: false,
            input: "Table",
            output_embedding: "Row",
            downstream_task: "Data augmentation/imputation",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_check_agrees_with_construction() {
        for name in MODEL_NAMES {
            assert!(is_known_model(name), "{name}");
        }
        for bogus in ["gpt9", "", "BERT", "bert "] {
            assert!(!is_known_model(bogus), "{bogus:?}");
            assert!(model_by_name(bogus).is_none(), "{bogus:?}");
        }
    }

    #[test]
    fn registry_covers_all_names() {
        assert_eq!(all_models().len(), 9);
        for name in MODEL_NAMES {
            let m = model_by_name(name).unwrap();
            assert_eq!(m.name(), name);
        }
        assert!(model_by_name("gpt9").is_none());
    }

    #[test]
    fn specs_align_with_registry() {
        let specs = specs();
        assert_eq!(specs.len(), 9);
        for s in &specs {
            assert!(MODEL_NAMES.contains(&s.name), "{}", s.name);
            let m = model_by_name(s.name).unwrap();
            assert_eq!(m.display_name(), s.display);
        }
    }

    #[test]
    fn six_specialized_three_vanilla() {
        let specs = specs();
        assert_eq!(specs.iter().filter(|s| s.vanilla_lm).count(), 3);
        assert_eq!(specs.iter().filter(|s| !s.vanilla_lm).count(), 6);
    }
}
