//! Embedding levels, capabilities, and the aggregated encoding object.
//!
//! All adapters produce token-level embeddings with *provenance* (which
//! row/column each token came from). Following the paper's embedding-
//! retrieval strategy (§4.3), higher levels are obtained either from a
//! special-token readout (`[CLS]`) or by mean-pooling the tokens of the
//! corresponding span — "we can aggregate token embeddings (by averaging
//! them for example) to embeddings on a level as needed".

use observatory_linalg::Matrix;

/// The level of aggregation of a table embedding (paper Definition 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Level {
    Table,
    Column,
    Row,
    Cell,
    Entity,
}

impl Level {
    /// All levels, in the paper's order.
    pub const ALL: [Level; 5] =
        [Level::Table, Level::Column, Level::Row, Level::Cell, Level::Entity];

    /// Lowercase label.
    pub fn label(&self) -> &'static str {
        match self {
            Level::Table => "table",
            Level::Column => "column",
            Level::Row => "row",
            Level::Cell => "cell",
            Level::Entity => "entity",
        }
    }
}

/// Which embedding levels a model natively exposes (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    pub table: bool,
    pub column: bool,
    pub row: bool,
    pub cell: bool,
    pub entity: bool,
}

impl Capabilities {
    /// All five levels.
    pub fn all() -> Self {
        Self { table: true, column: true, row: true, cell: true, entity: true }
    }

    /// No levels (builder start).
    pub fn none() -> Self {
        Self { table: false, column: false, row: false, cell: false, entity: false }
    }

    /// Whether `level` is supported.
    pub fn supports(&self, level: Level) -> bool {
        match level {
            Level::Table => self.table,
            Level::Column => self.column,
            Level::Row => self.row,
            Level::Cell => self.cell,
            Level::Entity => self.entity,
        }
    }
}

/// How a level is read out of the token embeddings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Readout {
    /// Mean-pool the tokens of the span.
    MeanPool,
    /// Use the span's dedicated `[CLS]`-style token.
    Cls,
    /// Mean-pool the span's *schema* tokens (header row). Contextual
    /// attention still injects value information into header tokens, but
    /// the readout is anchored on the schema. Falls back to mean-pooling
    /// when the span has no header tokens (header-less corpora like SOTAB).
    HeaderMean,
    /// Weighted blend `w · header-mean + (1 − w) · value-mean` — TaBERT's
    /// empirical profile in the paper: schema-dominant (robust to row
    /// order and sampling, least robust to schema renames) yet with enough
    /// value signal for content tasks such as join relationship. Falls
    /// back to the value mean when the span has no header tokens.
    HeaderBiasedMean {
        /// Header weight `w` in `[0, 1]`.
        header_weight: f64,
    },
}

/// Provenance of one input token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenProvenance {
    /// 1-based row, or 0 for structure/metadata tokens.
    pub row: u32,
    /// 1-based column, or 0.
    pub col: u32,
    /// Whether this is a special (non-content) token.
    pub special: bool,
}

/// Token embeddings plus provenance and readout metadata for one encoded
/// table.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelEncoding {
    /// Contextual token embeddings (`n_tokens × dim`).
    pub embeddings: Matrix,
    /// One provenance record per token.
    pub provenance: Vec<TokenProvenance>,
    /// Index of the sequence-level `[CLS]` token, if the serialization has one.
    pub table_cls: Option<usize>,
    /// Per-column `[CLS]` token index (1-based column → token index), for
    /// column-wise serializations (DODUO).
    pub column_cls: Vec<Option<usize>>,
    /// Number of data rows that fit the token budget.
    pub rows_encoded: usize,
    /// Number of columns of the encoded table.
    pub cols_encoded: usize,
    /// Readout strategy for column embeddings.
    pub column_readout: Readout,
    /// Readout strategy for the table embedding.
    pub table_readout: Readout,
    /// Levels the producing model exposes.
    pub capabilities: Capabilities,
}

impl ModelEncoding {
    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.embeddings.cols()
    }

    /// Mean of the token embeddings selected by `pred`, or `None` when no
    /// token matches.
    fn pool<F: Fn(&TokenProvenance) -> bool>(&self, pred: F) -> Option<Vec<f64>> {
        let mut acc = vec![0.0; self.dim()];
        let mut n = 0usize;
        for (i, p) in self.provenance.iter().enumerate() {
            if pred(p) {
                observatory_linalg::vector::add_assign(&mut acc, self.embeddings.row(i));
                n += 1;
            }
        }
        if n == 0 {
            return None;
        }
        observatory_linalg::vector::scale_assign(&mut acc, 1.0 / n as f64);
        Some(acc)
    }

    /// Column embedding of 0-based column `j`.
    ///
    /// Returns `None` if the model does not expose column embeddings or the
    /// column produced no tokens (e.g. it fell outside the token budget).
    pub fn column(&self, j: usize) -> Option<Vec<f64>> {
        if !self.capabilities.column {
            return None;
        }
        let col_id = (j + 1) as u32;
        match self.column_readout {
            Readout::Cls => {
                let idx = *self.column_cls.get(j)?;
                idx.map(|i| self.embeddings.row(i).to_vec())
            }
            Readout::MeanPool => self.pool(|p| p.col == col_id && !p.special),
            Readout::HeaderMean => self
                .pool(|p| p.col == col_id && p.row == 0 && !p.special)
                .or_else(|| self.pool(|p| p.col == col_id && !p.special)),
            Readout::HeaderBiasedMean { header_weight } => {
                let values = self.pool(|p| p.col == col_id && p.row > 0 && !p.special);
                let header = self.pool(|p| p.col == col_id && p.row == 0 && !p.special);
                match (header, values) {
                    (Some(h), Some(v)) => Some(
                        h.iter()
                            .zip(&v)
                            .map(|(h, v)| header_weight * h + (1.0 - header_weight) * v)
                            .collect(),
                    ),
                    (h, v) => h.or(v),
                }
            }
        }
    }

    /// Row embedding of 0-based data row `i`.
    pub fn row(&self, i: usize) -> Option<Vec<f64>> {
        if !self.capabilities.row {
            return None;
        }
        let row_id = (i + 1) as u32;
        self.pool(|p| p.row == row_id && !p.special)
    }

    /// Table embedding.
    pub fn table(&self) -> Option<Vec<f64>> {
        if !self.capabilities.table {
            return None;
        }
        match (self.table_readout, self.table_cls) {
            (Readout::Cls, Some(idx)) => Some(self.embeddings.row(idx).to_vec()),
            _ => self.pool(|p| !p.special),
        }
    }

    /// Cell embedding at 0-based (row, column).
    pub fn cell(&self, i: usize, j: usize) -> Option<Vec<f64>> {
        if !self.capabilities.cell {
            return None;
        }
        let (r, c) = ((i + 1) as u32, (j + 1) as u32);
        self.pool(|p| p.row == r && p.col == c && !p.special)
    }

    /// Entity embedding at 0-based (row, column) — the cell's mention
    /// tokens (models with richer entity handling override at the adapter
    /// level).
    pub fn entity(&self, i: usize, j: usize) -> Option<Vec<f64>> {
        if !self.capabilities.entity {
            return None;
        }
        let (r, c) = ((i + 1) as u32, (j + 1) as u32);
        self.pool(|p| p.row == r && p.col == c && !p.special)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encoding() -> ModelEncoding {
        // 4 tokens: [CLS], cell(1,1), cell(1,1), cell(1,2)
        let embeddings =
            Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 2.0], vec![0.0, 4.0], vec![5.0, 5.0]]);
        let provenance = vec![
            TokenProvenance { row: 0, col: 0, special: true },
            TokenProvenance { row: 1, col: 1, special: false },
            TokenProvenance { row: 1, col: 1, special: false },
            TokenProvenance { row: 1, col: 2, special: false },
        ];
        ModelEncoding {
            embeddings,
            provenance,
            table_cls: Some(0),
            column_cls: vec![None, None],
            rows_encoded: 1,
            cols_encoded: 2,
            column_readout: Readout::MeanPool,
            table_readout: Readout::Cls,
            capabilities: Capabilities::all(),
        }
    }

    #[test]
    fn column_mean_pool() {
        let e = encoding();
        assert_eq!(e.column(0), Some(vec![0.0, 3.0]));
        assert_eq!(e.column(1), Some(vec![5.0, 5.0]));
        assert_eq!(e.column(2), None); // out of range
    }

    #[test]
    fn table_cls_readout() {
        assert_eq!(encoding().table(), Some(vec![1.0, 0.0]));
    }

    #[test]
    fn table_mean_fallback() {
        let mut e = encoding();
        e.table_readout = Readout::MeanPool;
        // Mean of the 3 non-special tokens.
        let t = e.table().unwrap();
        assert!((t[0] - 5.0 / 3.0).abs() < 1e-12);
        assert!((t[1] - 11.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn row_and_cell() {
        let e = encoding();
        let r = e.row(0).unwrap();
        assert!((r[0] - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(e.cell(0, 1), Some(vec![5.0, 5.0]));
        assert_eq!(e.cell(1, 0), None); // no row 2
    }

    #[test]
    fn capabilities_gate_levels() {
        let mut e = encoding();
        e.capabilities = Capabilities { column: false, ..Capabilities::all() };
        assert_eq!(e.column(0), None);
        assert!(e.row(0).is_some());
    }

    #[test]
    fn cls_column_readout() {
        let mut e = encoding();
        e.column_readout = Readout::Cls;
        e.column_cls = vec![Some(3), None];
        assert_eq!(e.column(0), Some(vec![5.0, 5.0]));
        assert_eq!(e.column(1), None);
    }

    #[test]
    fn level_labels() {
        assert_eq!(Level::Column.label(), "column");
        assert_eq!(Level::ALL.len(), 5);
        assert!(Capabilities::all().supports(Level::Entity));
        assert!(!Capabilities::none().supports(Level::Table));
    }
}
