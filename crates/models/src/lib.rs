//! # observatory-models
//!
//! The nine table-embedding model adapters evaluated by Observatory, plus
//! the [`adapter::TableEncoder`] trait through which users plug in their
//! own models (the framework's extensibility point, paper §1/§3.1).
//!
//! Each adapter reproduces the *design specification* of its namesake
//! (paper Table 1 and §4.3): input serialization, positional scheme,
//! structural attention, exposed embedding levels, and aggregation
//! strategy. The weights come from the deterministic encoder substrate
//! (`observatory-transformer`); see DESIGN.md §1 for the substitution
//! rationale and §3 for the per-model knob table.
//!
//! | Adapter | Serialization | Positional | Levels |
//! |---|---|---|---|
//! | [`zoo::bert::bert`] | row-wise + headers | absolute | col/row/cell/table |
//! | [`zoo::roberta::roberta`] | row-wise + headers | absolute (hot) | col/row/cell/table |
//! | [`zoo::t5::t5`] | row-wise + headers | relative bias | col/row/cell/table |
//! | [`zoo::tapas::tapas`] | row-wise + question slot | absolute + row/col ids | col/row/cell/table |
//! | [`zoo::tabert::tabert`] | row-wise, `[SEP]` cells, first 3 rows | absolute + ids + vertical attn | col/table |
//! | [`zoo::tapex::tapex`] | row-wise + SQL slot | absolute | row/table |
//! | [`zoo::turl::turl`] | entity mentions + metadata | absolute + ids | entity/col |
//! | [`zoo::doduo::doduo`] | column-wise, values only, `[CLS]`/col | absolute | col |
//! | [`zoo::taptap::taptap`] | per-row text template | absolute | row |

pub mod adapter;
pub mod encoding;
pub mod partitioned;
pub mod registry;
pub mod serialize;
pub mod zoo;

pub use adapter::TableEncoder;
pub use encoding::{Capabilities, Level, ModelEncoding, Readout, TokenProvenance};
