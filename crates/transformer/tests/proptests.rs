//! Property-based tests for the encoder substrate.

use observatory_transformer::{Encoder, PositionalScheme, TokenInput, TransformerConfig};
use proptest::prelude::*;

fn tiny_config(positional: PositionalScheme) -> TransformerConfig {
    TransformerConfig {
        dim: 16,
        n_heads: 2,
        n_layers: 1,
        ffn_dim: 32,
        max_len: 24,
        vocab_size: 64,
        positional,
        seed_label: "proptest".into(),
        ..Default::default()
    }
}

fn tokens() -> impl Strategy<Value = Vec<TokenInput>> {
    proptest::collection::vec(
        (0u32..64, 0u32..6, 0u32..4, 0u8..3).prop_map(|(id, row, col, segment)| TokenInput {
            id,
            row,
            col,
            segment,
        }),
        1..30,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// The forward pass is total on in-vocabulary inputs and always
    /// produces finite activations of the right shape (truncated to the
    /// budget).
    #[test]
    fn forward_finite_and_shaped(seq in tokens()) {
        for scheme in [
            PositionalScheme::None,
            PositionalScheme::Absolute,
            PositionalScheme::RelativeBias,
            PositionalScheme::TableAware,
        ] {
            let enc = Encoder::new(tiny_config(scheme));
            let out = enc.encode(&seq);
            prop_assert_eq!(out.rows(), seq.len().min(24));
            prop_assert_eq!(out.cols(), 16);
            prop_assert!(out.as_slice().iter().all(|x| x.is_finite()));
        }
    }

    /// Determinism: the encoder is a pure function of (config, input).
    #[test]
    fn forward_deterministic(seq in tokens()) {
        let a = Encoder::new(tiny_config(PositionalScheme::Absolute));
        let b = Encoder::new(tiny_config(PositionalScheme::Absolute));
        prop_assert_eq!(a.encode(&seq), b.encode(&seq));
    }

    /// LayerNorm keeps activations bounded: token vectors cannot blow up,
    /// whatever the composition of inputs.
    #[test]
    fn activations_bounded(seq in tokens()) {
        let enc = Encoder::new(tiny_config(PositionalScheme::Absolute));
        let out = enc.encode(&seq);
        // Post-LN rows have unit variance; |x| stays well under √dim × 4.
        prop_assert!(out.as_slice().iter().all(|x| x.abs() < 16.0));
    }

    /// Without positions, permuting a sequence permutes the outputs
    /// exactly (set-function property).
    #[test]
    fn positionless_is_permutation_equivariant(seq in tokens(), rot in 0usize..30) {
        let enc = Encoder::new(tiny_config(PositionalScheme::None));
        // Keep sequences within budget so truncation doesn't drop tokens.
        let seq: Vec<TokenInput> = seq.into_iter().take(24).collect();
        let n = seq.len();
        let rot = rot % n.max(1);
        let rotated: Vec<TokenInput> = seq.iter().cycle().skip(rot).take(n).copied().collect();
        let a = enc.encode(&seq);
        let b = enc.encode(&rotated);
        for i in 0..n {
            let j = (i + rot) % n;
            for d in 0..16 {
                prop_assert!((a[(j, d)] - b[(i, d)]).abs() < 1e-9);
            }
        }
    }
}
