//! The encoder stack: embeddings + attention layers + optional vertical
//! attention.

use crate::config::{PositionalScheme, TransformerConfig};
use crate::layers::{init_matrix, AttentionBias, FeedForward, LayerNorm, MultiHeadAttention};
use observatory_linalg::{workspace, Matrix, SplitMix64};

/// Standard deviation used for embedding tables. Larger than the weight
/// init so that token identity dominates the residual stream, the regime
/// in which trained encoders operate.
const EMB_STD: f64 = 0.1;
/// Positional/structural embeddings are a fraction of the token scale:
/// position modulates, identity dominates.
const POS_STD: f64 = 0.04;

/// One input token with its structural coordinates.
///
/// `row` and `col` are 1-based data coordinates; `0` means "not part of a
/// data cell" (special tokens, header tokens, question/query tokens).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenInput {
    /// Token id from the tokenizer.
    pub id: u32,
    /// 1-based row id, or 0.
    pub row: u32,
    /// 1-based column id, or 0.
    pub col: u32,
    /// Segment id (0 = structure/metadata, 1 = data values, 2 = auxiliary
    /// text such as an NL question or SQL query).
    pub segment: u8,
}

impl TokenInput {
    /// A token with no structural coordinates (plain text).
    pub fn plain(id: u32) -> Self {
        Self { id, row: 0, col: 0, segment: 1 }
    }
}

struct EncoderLayer {
    attn: MultiHeadAttention,
    ffn: FeedForward,
    ln1: LayerNorm,
    ln2: LayerNorm,
}

/// A deterministic Transformer encoder.
///
/// Construction materializes all weights from a `SplitMix64` stream seeded
/// by `config.seed_label`; two encoders with the same config are bit-for-
/// bit identical.
pub struct Encoder {
    config: TransformerConfig,
    token_emb: Matrix,
    pos_emb: Option<Matrix>,
    row_emb: Option<Matrix>,
    col_emb: Option<Matrix>,
    seg_emb: Matrix,
    rel_bias: Option<Matrix>, // (2*max_rel+1) × n_heads
    layers: Vec<EncoderLayer>,
    vertical: Option<EncoderLayer>,
    ln_emb: LayerNorm,
}

impl Encoder {
    /// Materialize an encoder for the given configuration.
    pub fn new(config: TransformerConfig) -> Self {
        config.validate();
        let mut rng = SplitMix64::from_label(&config.seed_label);
        let pos_std = POS_STD * config.pos_std_scale;
        let token_emb = init_matrix(&mut rng, config.vocab_size, config.dim, EMB_STD);
        let pos_emb = match config.positional {
            PositionalScheme::Absolute | PositionalScheme::TableAware => {
                Some(init_matrix(&mut rng, config.max_len, config.dim, pos_std))
            }
            _ => None,
        };
        let (row_emb, col_emb) = if config.positional == PositionalScheme::TableAware {
            // Structural ids keep the base scale: they are the load-bearing
            // coordinates for table-aware models.
            (
                Some(init_matrix(&mut rng, config.max_rows, config.dim, POS_STD)),
                Some(init_matrix(&mut rng, config.max_cols, config.dim, POS_STD)),
            )
        } else {
            (None, None)
        };
        let seg_emb = init_matrix(&mut rng, 3, config.dim, POS_STD);
        let rel_bias = if config.positional == PositionalScheme::RelativeBias {
            Some(init_matrix(&mut rng, 2 * config.max_relative_distance + 1, config.n_heads, 0.5))
        } else {
            None
        };
        let mut layers = Vec::with_capacity(config.n_layers);
        for _ in 0..config.n_layers {
            layers.push(EncoderLayer {
                attn: MultiHeadAttention::with_sharpness(
                    &mut rng,
                    config.dim,
                    config.n_heads,
                    config.attention_sharpness,
                ),
                ffn: FeedForward::new(&mut rng, config.dim, config.ffn_dim),
                ln1: LayerNorm::new(config.dim),
                ln2: LayerNorm::new(config.dim),
            });
        }
        let vertical = config.vertical_attention.then(|| EncoderLayer {
            attn: MultiHeadAttention::with_sharpness(
                &mut rng,
                config.dim,
                config.n_heads,
                config.attention_sharpness,
            ),
            ffn: FeedForward::new(&mut rng, config.dim, config.ffn_dim),
            ln1: LayerNorm::new(config.dim),
            ln2: LayerNorm::new(config.dim),
        });
        let ln_emb = LayerNorm::new(config.dim);
        Self {
            config,
            token_emb,
            pos_emb,
            row_emb,
            col_emb,
            seg_emb,
            rel_bias,
            layers,
            vertical,
            ln_emb,
        }
    }

    /// The configuration this encoder was built from.
    pub fn config(&self) -> &TransformerConfig {
        &self.config
    }

    /// Hidden dimensionality of produced embeddings.
    pub fn dim(&self) -> usize {
        self.config.dim
    }

    /// Token budget.
    pub fn max_len(&self) -> usize {
        self.config.max_len
    }

    /// Encode a token sequence into contextual embeddings (`n × dim`).
    ///
    /// Sequences longer than `max_len` are truncated — mirroring the hard
    /// input limits of the real models (paper §4.3).
    ///
    /// All intermediates run through the per-thread [`workspace`] pool
    /// and the per-layer attention maps are recycled instead of
    /// collected, so a steady-state call performs **zero heap
    /// allocations** after warmup (the returned matrix itself comes from
    /// the pool; callers on a hot path can hand it back with
    /// [`workspace::recycle_matrix`]).
    ///
    /// # Panics
    /// Panics on an empty input or a token id outside the vocabulary.
    pub fn encode(&self, tokens: &[TokenInput]) -> Matrix {
        self.encode_impl(tokens, None)
    }

    /// Encode and also return the per-layer attention maps (head-averaged,
    /// `n × n`, the vertical layer last when present) — the raw material of
    /// attention-pattern analyses (paper §2.2's Koleva et al. line of
    /// work). Same truncation and panics as [`Encoder::encode`].
    pub fn encode_with_attention(&self, tokens: &[TokenInput]) -> (Matrix, Vec<Matrix>) {
        let mut maps = Vec::with_capacity(self.layers.len() + 1);
        let h = self.encode_impl(tokens, Some(&mut maps));
        (h, maps)
    }

    /// Shared encode body. `maps` collects the per-layer attention maps
    /// when present; when absent the maps (which the attention kernel
    /// produces regardless) are recycled into the workspace pool.
    fn encode_impl(&self, tokens: &[TokenInput], mut maps: Option<&mut Vec<Matrix>>) -> Matrix {
        assert!(!tokens.is_empty(), "encode: empty input");
        let tokens = &tokens[..tokens.len().min(self.config.max_len)];
        let n = tokens.len();
        let d = self.config.dim;
        let mut h = Matrix::from_vec(n, d, workspace::take_f64(n * d));
        for (i, t) in tokens.iter().enumerate() {
            assert!(
                (t.id as usize) < self.config.vocab_size,
                "token id {} out of vocabulary",
                t.id
            );
            let row = h.row_mut(i);
            row.copy_from_slice(self.token_emb.row(t.id as usize));
            if let Some(pos) = &self.pos_emb {
                add_into(row, pos.row(i));
            }
            if let (Some(rows), true) = (&self.row_emb, t.row > 0) {
                add_into(row, rows.row(t.row as usize % self.config.max_rows));
            }
            if let (Some(cols), true) = (&self.col_emb, t.col > 0) {
                add_into(row, cols.row(t.col as usize % self.config.max_cols));
            }
            add_into(row, self.seg_emb.row((t.segment as usize).min(2)));
        }
        self.ln_emb.forward_inplace(&mut h);

        let max_rel = self.config.max_relative_distance as i64;
        let rel = self.rel_bias.as_ref();
        let bias_fn = move |head: usize, i: usize, j: usize| -> f64 {
            let rel = rel.expect("bias_fn only installed when rel_bias exists");
            let dist = (j as i64 - i as i64).clamp(-max_rel, max_rel) + max_rel;
            rel[(dist as usize, head)]
        };
        let extras = if self.rel_bias.is_some() {
            AttentionBias { bias: Some(&bias_fn), mask: None }
        } else {
            AttentionBias::none()
        };

        for layer in &self.layers {
            let weights = apply_layer(layer, &mut h, &extras, self.config.attention_gain);
            match maps.as_deref_mut() {
                Some(m) => m.push(weights),
                None => workspace::recycle_matrix(weights),
            }
        }
        if let Some(vert) = &self.vertical {
            // Vertical attention: a token may attend only tokens in the same
            // column (data tokens), or — for structure tokens (col 0) —
            // other structure tokens.
            let mut cols = workspace::take_u32(n);
            for (c, t) in cols.iter_mut().zip(tokens) {
                *c = t.col;
            }
            let cols_ref = &cols[..];
            let mask = move |i: usize, j: usize| cols_ref[i] == cols_ref[j];
            let extras = AttentionBias { bias: None, mask: Some(&mask) };
            let weights = apply_layer(vert, &mut h, &extras, self.config.attention_gain);
            match maps {
                Some(m) => m.push(weights),
                None => workspace::recycle_matrix(weights),
            }
            workspace::give_u32(cols);
        }
        h
    }
}

/// One encoder layer applied **in place** on the residual stream:
/// `h += attn(h)` then `h += ffn(h)` with layer norms between, the
/// attention and feed-forward intermediates recycled into the workspace
/// pool. `add_assign` performs the exact elementwise `a + b` the old
/// allocating `Matrix::add` did, so outputs are bit-identical to the
/// previous formulation.
fn apply_layer(
    layer: &EncoderLayer,
    h: &mut Matrix,
    extras: &AttentionBias<'_>,
    attention_gain: f64,
) -> Matrix {
    let (mut attn_out, weights) = layer.attn.forward_with_weights(h, extras);
    if attention_gain != 1.0 {
        attn_out.scale_assign(attention_gain);
    }
    h.add_assign(&attn_out);
    workspace::recycle_matrix(attn_out);
    layer.ln1.forward_inplace(h);
    let ffn_out = layer.ffn.forward(h);
    h.add_assign(&ffn_out);
    workspace::recycle_matrix(ffn_out);
    layer.ln2.forward_inplace(h);
    weights
}

fn add_into(dst: &mut [f64], src: &[f64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(label: &str) -> TransformerConfig {
        TransformerConfig {
            dim: 16,
            n_heads: 2,
            n_layers: 2,
            ffn_dim: 32,
            max_len: 32,
            vocab_size: 128,
            seed_label: label.to_string(),
            ..Default::default()
        }
    }

    fn toks(ids: &[u32]) -> Vec<TokenInput> {
        ids.iter().map(|&id| TokenInput::plain(id)).collect()
    }

    #[test]
    fn deterministic_across_instances() {
        let a = Encoder::new(tiny_config("m"));
        let b = Encoder::new(tiny_config("m"));
        let input = toks(&[5, 9, 17]);
        assert_eq!(a.encode(&input), b.encode(&input));
    }

    #[test]
    fn different_seed_labels_differ() {
        let a = Encoder::new(tiny_config("m1"));
        let b = Encoder::new(tiny_config("m2"));
        let input = toks(&[5, 9, 17]);
        assert_ne!(a.encode(&input), b.encode(&input));
    }

    #[test]
    fn output_shape() {
        let e = Encoder::new(tiny_config("m"));
        let out = e.encode(&toks(&[1, 2, 3, 4]));
        assert_eq!(out.rows(), 4);
        assert_eq!(out.cols(), 16);
        assert!(out.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn truncates_to_max_len() {
        let e = Encoder::new(tiny_config("m"));
        let long: Vec<TokenInput> = (0..100).map(|i| TokenInput::plain(i % 64)).collect();
        assert_eq!(e.encode(&long).rows(), 32);
    }

    #[test]
    fn absolute_positions_make_order_matter() {
        let e = Encoder::new(tiny_config("m"));
        let ab = e.encode(&toks(&[5, 9]));
        let ba = e.encode(&toks(&[9, 5]));
        // With absolute positions the first token's embedding depends on
        // where it sits.
        assert_ne!(ab.row(0), ba.row(1));
    }

    #[test]
    fn no_positional_scheme_is_order_invariant_for_mean() {
        let cfg = TransformerConfig { positional: PositionalScheme::None, ..tiny_config("m") };
        let e = Encoder::new(cfg);
        let ab = e.encode(&toks(&[5, 9, 13]));
        let ba = e.encode(&toks(&[13, 9, 5]));
        // Without positions, attention is a set operation: token 5's vector
        // is identical wherever it appears.
        let r0: Vec<f64> = ab.row(0).to_vec();
        let r2: Vec<f64> = ba.row(2).to_vec();
        for (x, y) in r0.iter().zip(&r2) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn table_aware_row_ids_change_embedding() {
        let cfg =
            TransformerConfig { positional: PositionalScheme::TableAware, ..tiny_config("m") };
        let e = Encoder::new(cfg);
        let a = e.encode(&[TokenInput { id: 5, row: 1, col: 1, segment: 1 }]);
        let b = e.encode(&[TokenInput { id: 5, row: 2, col: 1, segment: 1 }]);
        assert_ne!(a.row(0), b.row(0));
    }

    #[test]
    fn relative_bias_is_shift_invariant() {
        // With RelativeBias (and no absolute positions), shifting a whole
        // sequence cannot change anything (there is nothing to shift), but
        // relative order still matters.
        let cfg =
            TransformerConfig { positional: PositionalScheme::RelativeBias, ..tiny_config("m") };
        let e = Encoder::new(cfg);
        let ab = e.encode(&toks(&[5, 9]));
        let ba = e.encode(&toks(&[9, 5]));
        // Token 5 at distance -1 from 9 vs +1 from 9: differs.
        assert_ne!(ab.row(0), ba.row(1));
    }

    #[test]
    fn vertical_attention_isolates_columns() {
        let cfg = TransformerConfig {
            positional: PositionalScheme::None,
            vertical_attention: true,
            n_layers: 1,
            ..tiny_config("m")
        };
        let e = Encoder::new(cfg);
        // Two tokens in col 1, one in col 2. Changing the col-2 token does
        // change col-1 outputs through the shared horizontal layers, but
        // the vertical layer itself must restrict attention. We verify by
        // using zero horizontal layers' worth of influence: with n_layers=1
        // the horizontal layer still mixes, so instead verify determinism +
        // that same-column tokens end closer than cross-column ones.
        let seq = [
            TokenInput { id: 5, row: 1, col: 1, segment: 1 },
            TokenInput { id: 5, row: 2, col: 1, segment: 1 },
            TokenInput { id: 50, row: 1, col: 2, segment: 1 },
        ];
        let out = e.encode(&seq);
        let same = observatory_linalg::vector::cosine(out.row(0), out.row(1));
        let diff = observatory_linalg::vector::cosine(out.row(0), out.row(2));
        assert!(same > diff, "same-column same-token should be closer: {same} vs {diff}");
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn oov_token_panics() {
        let e = Encoder::new(tiny_config("m"));
        e.encode(&toks(&[9999]));
    }

    #[test]
    #[should_panic(expected = "empty input")]
    fn empty_input_panics() {
        let e = Encoder::new(tiny_config("m"));
        e.encode(&[]);
    }
}

#[cfg(test)]
mod attention_tests {
    use super::*;

    fn cfg(vertical: bool) -> TransformerConfig {
        TransformerConfig {
            dim: 16,
            n_heads: 2,
            n_layers: 2,
            ffn_dim: 32,
            max_len: 16,
            vocab_size: 64,
            vertical_attention: vertical,
            seed_label: "attn".into(),
            ..Default::default()
        }
    }

    fn toks(n: u32) -> Vec<TokenInput> {
        (0..n)
            .map(|i| TokenInput { id: i % 32, row: 1 + i / 2, col: 1 + i % 2, segment: 1 })
            .collect()
    }

    #[test]
    fn attention_rows_are_distributions() {
        let e = Encoder::new(cfg(false));
        let (_, maps) = e.encode_with_attention(&toks(6));
        assert_eq!(maps.len(), 2);
        for map in &maps {
            assert_eq!(map.rows(), 6);
            assert_eq!(map.cols(), 6);
            for i in 0..6 {
                let row_sum: f64 = map.row(i).iter().sum();
                assert!((row_sum - 1.0).abs() < 1e-9, "row {i} sums to {row_sum}");
                assert!(map.row(i).iter().all(|&w| w >= 0.0));
            }
        }
    }

    #[test]
    fn vertical_layer_mass_stays_in_column() {
        let e = Encoder::new(cfg(true));
        let seq = toks(6);
        let (_, maps) = e.encode_with_attention(&seq);
        assert_eq!(maps.len(), 3, "two horizontal layers + one vertical");
        let vertical = maps.last().unwrap();
        for (i, ti) in seq.iter().enumerate() {
            for (j, tj) in seq.iter().enumerate() {
                if ti.col != tj.col {
                    assert!(
                        vertical[(i, j)] < 1e-12,
                        "cross-column attention leaked: {} → {}",
                        i,
                        j
                    );
                }
            }
        }
    }

    #[test]
    fn encode_and_encode_with_attention_agree() {
        let e = Encoder::new(cfg(true));
        let seq = toks(5);
        assert_eq!(e.encode(&seq), e.encode_with_attention(&seq).0);
    }
}
