//! Transformer building blocks: linear maps, layer normalization,
//! multi-head self-attention and the GELU feed-forward network.
//!
//! All dense math runs on the fused, tiled, row-parallel kernels in
//! [`observatory_linalg::kernels`]; the worker count comes from
//! [`observatory_linalg::parallel::current_jobs`] (the CLI's `--jobs` /
//! `OBSERVATORY_JOBS`, clamped to 1 inside runtime pool workers so a
//! parallel `encode_batch` never oversubscribes). Kernel-level spans are
//! emitted at `Level::Trace` under the `kernels` target.

use observatory_linalg::{kernels, parallel, workspace, Matrix, SplitMix64};
use observatory_obs as obs;

pub use observatory_linalg::kernels::{gelu, softmax_inplace};

/// Standard deviation of initialized projection weights. Trained encoders
/// are strongly contextual: the attention value/output path must carry
/// enough signal to survive the residual stream, or every model degenerates
/// into a bag-of-tokens. 0.06 at dim 64 puts the attention branch at
/// roughly a third of the residual magnitude per layer, matching the
/// qualitative contextuality of trained checkpoints.
const INIT_STD: f64 = 0.06;

/// Draw an `rows × cols` weight matrix from the stream.
pub fn init_matrix(rng: &mut SplitMix64, rows: usize, cols: usize, std: f64) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            m[(i, j)] = rng.next_normal_with(0.0, std);
        }
    }
    m
}

/// A dense affine map `y = x W + b` applied row-wise.
#[derive(Debug, Clone)]
pub struct Linear {
    w: Matrix,
    b: Vec<f64>,
}

impl Linear {
    /// Initialize with `in_dim × out_dim` weights and zero bias.
    pub fn new(rng: &mut SplitMix64, in_dim: usize, out_dim: usize) -> Self {
        Self::with_std(rng, in_dim, out_dim, INIT_STD)
    }

    /// Initialize with an explicit weight scale.
    pub fn with_std(rng: &mut SplitMix64, in_dim: usize, out_dim: usize, std: f64) -> Self {
        Self { w: init_matrix(rng, in_dim, out_dim, std), b: vec![0.0; out_dim] }
    }

    /// Apply to every row of `x` (`n × in_dim` → `n × out_dim`) through
    /// the fused bias kernel, parallel across row blocks.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let _span = obs::span(obs::Level::Trace, "kernels", "linear")
            .with("rows", x.rows())
            .with("out_dim", self.w.cols());
        kernels::linear_bias(x, &self.w, &self.b, parallel::current_jobs())
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }
}

/// Layer normalization with learned gain and bias.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gamma: Vec<f64>,
    beta: Vec<f64>,
    eps: f64,
}

impl LayerNorm {
    /// Identity-initialized layer norm (γ = 1, β = 0), the standard start.
    pub fn new(dim: usize) -> Self {
        Self { gamma: vec![1.0; dim], beta: vec![0.0; dim], eps: 1e-5 }
    }

    /// Normalize each row of `x` in place.
    pub fn forward_inplace(&self, x: &mut Matrix) {
        let d = self.gamma.len();
        debug_assert_eq!(x.cols(), d, "LayerNorm: dim mismatch");
        for i in 0..x.rows() {
            let row = x.row_mut(i);
            let mean = row.iter().sum::<f64>() / d as f64;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / d as f64;
            let inv = 1.0 / (var + self.eps).sqrt();
            for ((v, g), b) in row.iter_mut().zip(&self.gamma).zip(&self.beta) {
                *v = (*v - mean) * inv * g + b;
            }
        }
    }
}

/// Multi-head self-attention.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    q: Linear,
    k: Linear,
    v: Linear,
    o: Linear,
    n_heads: usize,
    head_dim: usize,
    /// Logit multiplier: > 1 makes attention sharper (more selective),
    /// emulating the peaked attention patterns of trained encoders.
    sharpness: f64,
}

/// Optional per-pair attention-logit adjustments.
pub struct AttentionBias<'a> {
    /// `bias(head, i, j)` added to the logit of query `i` attending key `j`.
    pub bias: Option<&'a dyn Fn(usize, usize, usize) -> f64>,
    /// `mask(i, j)`: whether query `i` may attend key `j` at all.
    pub mask: Option<&'a dyn Fn(usize, usize) -> bool>,
}

impl<'a> AttentionBias<'a> {
    /// No bias, no mask.
    pub fn none() -> Self {
        Self { bias: None, mask: None }
    }
}

impl MultiHeadAttention {
    /// Initialize all four projections from the weight stream.
    pub fn new(rng: &mut SplitMix64, dim: usize, n_heads: usize) -> Self {
        Self::with_sharpness(rng, dim, n_heads, 1.0)
    }

    /// Initialize with an explicit attention sharpness.
    pub fn with_sharpness(
        rng: &mut SplitMix64,
        dim: usize,
        n_heads: usize,
        sharpness: f64,
    ) -> Self {
        assert_eq!(dim % n_heads, 0, "attention: heads must divide dim");
        Self {
            // Q/K are hotter than the default so attention logits are
            // content-selective rather than near-uniform.
            q: Linear::with_std(rng, dim, dim, 2.0 * INIT_STD),
            k: Linear::with_std(rng, dim, dim, 2.0 * INIT_STD),
            v: Linear::new(rng, dim, dim),
            o: Linear::new(rng, dim, dim),
            n_heads,
            head_dim: dim / n_heads,
            sharpness,
        }
    }

    /// Full self-attention over the rows of `x` (`n × dim`).
    pub fn forward(&self, x: &Matrix, extras: &AttentionBias<'_>) -> Matrix {
        self.forward_with_weights(x, extras).0
    }

    /// Self-attention returning both the output and the attention weights
    /// averaged over heads (`n × n`, rows = queries). Used by attention
    /// introspection (the Koleva et al. style analysis the paper's related
    /// work discusses).
    ///
    /// The bias/mask closures in `extras` are evaluated **once** into
    /// flat per-head matrices, then the head-batched
    /// [`kernels::attention`] runs pure slice arithmetic, parallel
    /// across query rows. Fully-masked queries attend only themselves
    /// (see the kernel docs — the former uniform fallback leaked masked
    /// key content into the output).
    pub fn forward_with_weights(&self, x: &Matrix, extras: &AttentionBias<'_>) -> (Matrix, Matrix) {
        let n = x.rows();
        let mut span = obs::span(obs::Level::Trace, "kernels", "attention")
            .with("rows", n)
            .with("heads", self.n_heads);
        let jobs = parallel::current_jobs();
        let q = self.q.forward(x);
        let k = self.k.forward(x);
        let v = self.v.forward(x);
        let scale = self.sharpness / (self.head_dim as f64).sqrt();
        // Materialize the dynamic bias/mask once per forward call into
        // workspace-pooled buffers; the kernel's inner loops never see a
        // closure, and after warmup no allocation happens here.
        let mask_buf: Option<Vec<bool>> = extras.mask.map(|m| {
            let mut buf = workspace::take_bool(n * n);
            for (idx, slot) in buf.iter_mut().enumerate() {
                *slot = m(idx / n, idx % n);
            }
            buf
        });
        let bias_buf: Option<Vec<f64>> = extras.bias.map(|b| {
            let mut buf = workspace::take_f64(self.n_heads * n * n);
            let mut idx = 0;
            for h in 0..self.n_heads {
                for i in 0..n {
                    for j in 0..n {
                        buf[idx] = b(h, i, j);
                        idx += 1;
                    }
                }
            }
            buf
        });
        let spec = kernels::AttentionSpec {
            n_heads: self.n_heads,
            head_dim: self.head_dim,
            scale,
            bias: bias_buf.as_deref(),
            mask: mask_buf.as_deref(),
        };
        let (ctx, mut weights) = kernels::attention(&q, &k, &v, &spec, jobs);
        // The projected Q/K/V are dead once the kernel returns: hand
        // their capacity back to the pool for the next forward.
        workspace::recycle_matrix(q);
        workspace::recycle_matrix(k);
        workspace::recycle_matrix(v);
        if let Some(buf) = bias_buf {
            workspace::give_f64(buf);
        }
        if let Some(buf) = mask_buf {
            workspace::give_bool(buf);
        }
        weights.scale_assign(1.0 / self.n_heads as f64);
        span.record("jobs", jobs);
        let out = self.o.forward(&ctx);
        workspace::recycle_matrix(ctx);
        (out, weights)
    }
}

/// The position-wise feed-forward network `GELU(x W₁ + b₁) W₂ + b₂`.
#[derive(Debug, Clone)]
pub struct FeedForward {
    fc1: Linear,
    fc2: Linear,
}

impl FeedForward {
    /// Initialize both projections.
    pub fn new(rng: &mut SplitMix64, dim: usize, ffn_dim: usize) -> Self {
        Self { fc1: Linear::new(rng, dim, ffn_dim), fc2: Linear::new(rng, ffn_dim, dim) }
    }

    /// Apply to every row: the first projection, bias and GELU run as
    /// one fused kernel pass, then the second fused bias projection.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let _span = obs::span(obs::Level::Trace, "kernels", "ffn")
            .with("rows", x.rows())
            .with("ffn_dim", self.fc1.w.cols());
        let jobs = parallel::current_jobs();
        let h = kernels::linear_bias_gelu(x, &self.fc1.w, &self.fc1.b, jobs);
        let out = kernels::linear_bias(&h, &self.fc2.w, &self.fc2.b, jobs);
        // The hidden activation is dead: recycle its capacity.
        workspace::recycle_matrix(h);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_shape_and_determinism() {
        let mut r1 = SplitMix64::new(1);
        let mut r2 = SplitMix64::new(1);
        let l1 = Linear::new(&mut r1, 4, 6);
        let l2 = Linear::new(&mut r2, 4, 6);
        let x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0]]);
        assert_eq!(l1.forward(&x).cols(), 6);
        assert_eq!(l1.forward(&x), l2.forward(&x));
    }

    #[test]
    fn layernorm_zero_mean_unit_var() {
        let ln = LayerNorm::new(4);
        let mut x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0]]);
        ln.forward_inplace(&mut x);
        let row = x.row(0);
        let mean: f64 = row.iter().sum::<f64>() / 4.0;
        let var: f64 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-4);
    }

    #[test]
    fn layernorm_constant_row_is_finite() {
        let ln = LayerNorm::new(3);
        let mut x = Matrix::from_rows(&[vec![5.0, 5.0, 5.0]]);
        ln.forward_inplace(&mut x);
        assert!(x.row(0).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn gelu_reference_points() {
        assert_eq!(gelu(0.0), 0.0);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!(gelu(-5.0).abs() < 1e-3);
        assert!((gelu(5.0) - 5.0).abs() < 1e-3);
    }

    #[test]
    fn softmax_sums_to_one() {
        let mut xs = vec![1.0, 2.0, 3.0];
        softmax_inplace(&mut xs);
        assert!((xs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(xs[2] > xs[1] && xs[1] > xs[0]);
    }

    #[test]
    fn softmax_handles_extremes() {
        let mut xs = vec![1000.0, -1000.0];
        softmax_inplace(&mut xs);
        assert!((xs[0] - 1.0).abs() < 1e-12);
        let mut masked = vec![f64::NEG_INFINITY, f64::NEG_INFINITY];
        softmax_inplace(&mut masked);
        assert!((masked[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn attention_shape_and_determinism() {
        let mut rng = SplitMix64::new(3);
        let attn = MultiHeadAttention::new(&mut rng, 8, 2);
        let x = Matrix::from_rows(&[vec![0.1; 8], vec![0.2; 8], vec![0.3; 8]]);
        let y1 = attn.forward(&x, &AttentionBias::none());
        let y2 = attn.forward(&x, &AttentionBias::none());
        assert_eq!(y1.rows(), 3);
        assert_eq!(y1.cols(), 8);
        assert_eq!(y1, y2);
    }

    #[test]
    fn attention_mask_blocks_information_flow() {
        let mut rng = SplitMix64::new(3);
        let attn = MultiHeadAttention::new(&mut rng, 8, 2);
        // Token 0 may only attend itself; changing token 1 must not change
        // token 0's output.
        let mask = |i: usize, j: usize| i != 0 || j == 0;
        let a = Matrix::from_rows(&[vec![0.5; 8], vec![1.0; 8]]);
        let b = Matrix::from_rows(&[vec![0.5; 8], vec![-2.0; 8]]);
        let extras = AttentionBias { bias: None, mask: Some(&mask) };
        let ya = attn.forward(&a, &extras);
        let yb = attn.forward(&b, &extras);
        assert_eq!(ya.row(0), yb.row(0));
        assert_ne!(ya.row(1), yb.row(1));

        // Fully-masked query: token 0 may attend *nothing*. The old
        // uniform-softmax fallback attended every key — including the
        // masked ones — leaking token 1's content through the value
        // aggregation. A fully-masked query must now be insensitive to
        // every other token.
        let none_mask = |i: usize, _j: usize| i != 0;
        let extras = AttentionBias { bias: None, mask: Some(&none_mask) };
        let ya = attn.forward(&a, &extras);
        let yb = attn.forward(&b, &extras);
        assert_eq!(
            ya.row(0),
            yb.row(0),
            "fully-masked query leaked masked key content into its output"
        );
    }

    #[test]
    fn fully_masked_query_attends_only_itself() {
        let mut rng = SplitMix64::new(3);
        let attn = MultiHeadAttention::new(&mut rng, 8, 2);
        let x = Matrix::from_rows(&[vec![0.5; 8], vec![1.0; 8], vec![-1.5; 8]]);
        let none_mask = |i: usize, _j: usize| i != 1;
        let extras = AttentionBias { bias: None, mask: Some(&none_mask) };
        let (_, weights) = attn.forward_with_weights(&x, &extras);
        // Head-averaged weights: the fully-masked row is a self-delta.
        assert_eq!(weights.row(1), &[0.0, 1.0, 0.0]);
        // Unmasked rows remain proper distributions.
        for i in [0usize, 2] {
            let sum: f64 = weights.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "row {i} sums to {sum}");
        }
    }

    #[test]
    fn attention_bias_changes_output() {
        let mut rng = SplitMix64::new(3);
        let attn = MultiHeadAttention::new(&mut rng, 8, 2);
        let x = Matrix::from_rows(&[vec![0.5; 8], vec![1.5; 8], vec![-0.5; 8]]);
        let bias = |_h: usize, i: usize, j: usize| (i as f64 - j as f64) * 0.5;
        let plain = attn.forward(&x, &AttentionBias::none());
        let biased = attn.forward(&x, &AttentionBias { bias: Some(&bias), mask: None });
        assert_ne!(plain, biased);
    }

    #[test]
    fn ffn_shape() {
        let mut rng = SplitMix64::new(4);
        let ffn = FeedForward::new(&mut rng, 8, 16);
        let x = Matrix::from_rows(&[vec![0.3; 8]]);
        let y = ffn.forward(&x);
        assert_eq!(y.rows(), 1);
        assert_eq!(y.cols(), 8);
    }
}
