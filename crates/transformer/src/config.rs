//! Encoder configuration.

/// How the encoder injects position information — the knob that drives most
/// of the row/column-order sensitivity Observatory measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PositionalScheme {
    /// No positional information at all: the encoder is a set function of
    /// its tokens (useful as an experimental lower bound).
    None,
    /// Learned absolute position embeddings added to token embeddings
    /// (BERT, RoBERTa, DODUO, TaPEx, TapTap).
    Absolute,
    /// No absolute positions; attention logits receive a learned bias that
    /// depends on the (bucketed) relative distance between tokens (T5).
    RelativeBias,
    /// Absolute positions *plus* learned row-id and column-id embeddings
    /// per token (TAPAS; TaBERT and TURL also carry structural ids).
    TableAware,
}

/// Hyperparameters of an [`crate::Encoder`].
#[derive(Debug, Clone)]
pub struct TransformerConfig {
    /// Model (hidden) dimensionality.
    pub dim: usize,
    /// Number of attention heads; must divide `dim`.
    pub n_heads: usize,
    /// Number of encoder layers.
    pub n_layers: usize,
    /// FFN inner dimensionality.
    pub ffn_dim: usize,
    /// Maximum sequence length (token budget; the paper's analogue is the
    /// ubiquitous 512-token limit, §4.3).
    pub max_len: usize,
    /// Token id space size (must match the tokenizer).
    pub vocab_size: usize,
    /// Positional scheme.
    pub positional: PositionalScheme,
    /// Whether to run a final vertical-attention pass (attention restricted
    /// to tokens sharing a column id), TaBERT-style.
    pub vertical_attention: bool,
    /// Size of the row-id embedding table (row ids are taken modulo this).
    pub max_rows: usize,
    /// Size of the column-id embedding table.
    pub max_cols: usize,
    /// Relative-distance clip for `RelativeBias` (T5-style bucket radius).
    pub max_relative_distance: usize,
    /// Attention-logit multiplier (> 1 = sharper, more selective
    /// attention, as trained encoders exhibit; 1 = vanilla scaled dot
    /// product).
    pub attention_sharpness: f64,
    /// Gain on the attention output before the residual add (> 1 = the
    /// contextual branch carries more of the representation relative to
    /// the token identity — fine-tuned readout tokens like DODUO's
    /// per-column `[CLS]` behave this way).
    pub attention_gain: f64,
    /// Multiplier on the positional/structural embedding scale. Models
    /// whose pretraining makes them lean harder on positions (RoBERTa in
    /// the paper's findings) use > 1; models whose structural ids carry the
    /// burden (TAPAS) use < 1 for the absolute component.
    pub pos_std_scale: f64,
    /// Seed label; weights are a pure function of this string.
    pub seed_label: String,
}

impl Default for TransformerConfig {
    fn default() -> Self {
        Self {
            dim: 64,
            n_heads: 4,
            n_layers: 2,
            ffn_dim: 128,
            max_len: 256,
            vocab_size: 8192,
            positional: PositionalScheme::Absolute,
            vertical_attention: false,
            max_rows: 128,
            max_cols: 64,
            max_relative_distance: 16,
            attention_sharpness: 1.0,
            attention_gain: 1.0,
            pos_std_scale: 1.0,
            seed_label: "default".to_string(),
        }
    }
}

impl TransformerConfig {
    /// Validate invariants; called by the encoder constructor.
    ///
    /// # Panics
    /// Panics when heads do not divide the dimension or any size is zero.
    pub fn validate(&self) {
        assert!(self.dim > 0 && self.n_heads > 0 && self.n_layers > 0, "zero-sized config");
        assert_eq!(self.dim % self.n_heads, 0, "n_heads must divide dim");
        assert!(self.max_len > 0 && self.vocab_size > 0, "zero-sized tables");
        assert!(self.max_rows > 0 && self.max_cols > 0, "zero-sized id tables");
    }

    /// Per-head dimensionality.
    pub fn head_dim(&self) -> usize {
        self.dim / self.n_heads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        TransformerConfig::default().validate();
        assert_eq!(TransformerConfig::default().head_dim(), 16);
    }

    #[test]
    #[should_panic(expected = "n_heads must divide dim")]
    fn bad_heads_panics() {
        TransformerConfig { dim: 10, n_heads: 3, ..Default::default() }.validate();
    }
}
