//! # observatory-transformer
//!
//! A from-scratch Transformer encoder with deterministic, seeded weights —
//! the substrate that substitutes for pretrained checkpoints (DESIGN.md §1).
//!
//! The encoder reproduces the architectural degrees of freedom that
//! Observatory's analysis attributes model behaviour to:
//!
//! - **Positional schemes** ([`config::PositionalScheme`]): none, learned
//!   absolute positions (BERT/RoBERTa-style), relative attention bias
//!   (T5-style), and table-aware row/column id embeddings on top of
//!   absolute positions (TAPAS-style).
//! - **Vertical attention** ([`config::TransformerConfig::vertical_attention`]):
//!   TaBERT's extra attention pass restricted to tokens of the same column
//!   across rows.
//! - **Segment embeddings** distinguishing headers/metadata from data
//!   values.
//!
//! Weights are drawn from a [`observatory_linalg::SplitMix64`] stream
//! seeded by the model label, so every "pretrained model" is a pure
//! function of its name: reproducible across runs, machines and dependency
//! versions.
//!
//! The forward pass is the standard pre-LN free encoder stack:
//! embeddings → [self-attention + residual + LayerNorm → FFN(GELU) +
//! residual + LayerNorm]ⁿ, returning one contextual vector per input token.

pub mod config;
pub mod encoder;
pub mod layers;

pub use config::{PositionalScheme, TransformerConfig};
pub use encoder::{Encoder, TokenInput};
