//! Content-addressed table store for the ingest path.
//!
//! `POST /v1/tables` lands here: a parsed [`Table`] gets the id
//! `tbl-<fingerprint>` where the fingerprint is the runtime's typed
//! 128-bit content hash under a fixed `"ingest"` domain tag — so the
//! same table content always maps to the same id (idempotent uploads,
//! and analyses of a re-uploaded table hit the same encoding cache
//! entries). With a directory attached, every table is persisted in the
//! lossless typed-JSON codec and reloaded on startup, so jobs referring
//! to it keep working across restarts.

use crate::persist;
use observatory_table::Table;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Domain tag for the content address (distinct from any model name, so
/// table ids can never collide with per-model encoding fingerprints).
const INGEST_TAG: &str = "ingest";

/// In-memory map of ingested tables, optionally mirrored to disk.
pub struct TableStore {
    dir: Option<PathBuf>,
    map: Mutex<BTreeMap<String, Arc<Table>>>,
}

impl TableStore {
    /// Open a store. With `Some(dir)`, loads every previously persisted
    /// table (files that fail to parse are skipped, not fatal — one bad
    /// table must not take down the server).
    pub fn open(dir: Option<PathBuf>) -> std::io::Result<Self> {
        let mut map = BTreeMap::new();
        if let Some(dir) = &dir {
            std::fs::create_dir_all(dir)?;
            for entry in std::fs::read_dir(dir)? {
                let path = entry?.path();
                let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                let Some(id) = name.strip_suffix(".json") else { continue };
                if !id.starts_with("tbl-") {
                    continue;
                }
                match std::fs::read_to_string(&path)
                    .map_err(|e| e.to_string())
                    .and_then(|text| persist::parse_table(&text))
                {
                    Ok(table) => {
                        map.insert(id.to_string(), Arc::new(table));
                    }
                    Err(e) => eprintln!("warning: skipping table {name}: {e}"),
                }
            }
        }
        Ok(Self { dir, map: Mutex::new(map) })
    }

    /// The content address a table would get.
    pub fn id_for(table: &Table) -> String {
        format!("tbl-{}", observatory_runtime::fingerprint_table(INGEST_TAG, table).to_hex())
    }

    /// Ingest a table. Returns `(id, newly_added)`; re-ingesting the
    /// same content is a no-op that returns the existing id.
    pub fn add(&self, table: Table) -> std::io::Result<(String, bool)> {
        let id = Self::id_for(&table);
        let mut map = self.map.lock().unwrap();
        if map.contains_key(&id) {
            return Ok((id, false));
        }
        if let Some(dir) = &self.dir {
            persist::write_atomic(&dir.join(format!("{id}.json")), &persist::render_table(&table))?;
        }
        map.insert(id.clone(), Arc::new(table));
        Ok((id, true))
    }

    /// Look a table up by id.
    pub fn get(&self, id: &str) -> Option<Arc<Table>> {
        self.map.lock().unwrap().get(id).cloned()
    }

    /// Number of ingested tables.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// True when nothing has been ingested.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use observatory_table::{Column, Value};

    fn table(x: i64) -> Table {
        Table::new("t", vec![Column::new("a", vec![Value::Int(x), Value::Int(x + 1)])])
    }

    #[test]
    fn ingest_is_content_addressed_and_idempotent() {
        let store = TableStore::open(None).unwrap();
        let (id1, new1) = store.add(table(1)).unwrap();
        let (id2, new2) = store.add(table(1)).unwrap();
        let (id3, _) = store.add(table(2)).unwrap();
        assert!(id1.starts_with("tbl-") && id1.len() == 4 + 32);
        assert_eq!(id1, id2);
        assert!(new1 && !new2);
        assert_ne!(id1, id3);
        assert_eq!(store.len(), 2);
        assert!(store.get(&id1).is_some());
        assert!(store.get("tbl-nope").is_none());
    }

    #[test]
    fn tables_survive_reopen_with_identical_ids() {
        let dir = std::env::temp_dir().join(format!("obs-tblstore-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let id = {
            let store = TableStore::open(Some(dir.clone())).unwrap();
            store.add(table(7)).unwrap().0
        };
        let store = TableStore::open(Some(dir.clone())).unwrap();
        assert_eq!(store.len(), 1);
        let t = store.get(&id).expect("table reloaded");
        // Reloaded content re-addresses to the same id: lossless codec.
        assert_eq!(TableStore::id_for(&t), id);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
