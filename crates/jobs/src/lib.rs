//! # observatory-jobs
//!
//! Characterization-as-a-service: a bounded async job scheduler that
//! runs the paper's properties (P1–P8 where they admit a single-table
//! corpus: P1, P2, P4, P5, P7, P8) over ingested tables, on top of the
//! runtime engine's worker pool and encoding cache.
//!
//! ## Job state machine
//!
//! ```text
//! queued ──▶ running ──▶ done
//!    │          │  ▲
//!    │          │  └─ requeued (capped retry after a panic)
//!    │          ├─────▶ failed     (error / deadline expired)
//!    │          └─────▶ cancelled  (DELETE or drain, at a checkpoint)
//!    ├─────▶ cancelled  (DELETE or drain before start)
//!    └─────▶ failed     (deadline expired before start)
//! ```
//!
//! A single runner thread executes jobs in submit order — each job
//! already parallelizes internally through `Engine::encode_batch`, so a
//! second runner would only thrash the shared pool. Cancellation is
//! cooperative: the runner arms a [`RunControl`] per job, and property
//! evaluators poll it between permutation batches (never mid-encode),
//! so a cancelled or deadline-expired job stops at the next checkpoint
//! with a consistent partial progress fraction. Results persist as JSON
//! next to the embedding store and are reloaded on startup; jobs that
//! were queued or running when the process died come back as `failed`
//! (`interrupted by server restart`) — visible, never silently lost.
//!
//! Determinism: a job runs the exact property constructions the offline
//! `characterize` CLI uses, against the same engine kind, so measures
//! are bit-identical between `/v1/analyze` and the CLI for the same
//! table/model/seed/permutations.

pub mod persist;
pub mod tables;

pub use persist::DownstreamScores;
pub use tables::TableStore;

use observatory_core::downstream::column_type::ColumnTypeClassifier;
use observatory_core::framework::{EvalContext, Property, PropertyReport, RunControl};
use observatory_core::props::col_order::ColumnOrderInsignificance;
use observatory_core::props::fd::FunctionalDependencies;
use observatory_core::props::hetero_context::HeterogeneousContext;
use observatory_core::props::perturbation::PerturbationRobustness;
use observatory_core::props::row_order::RowOrderInsignificance;
use observatory_core::props::sample_fidelity::SampleFidelity;
use observatory_models::registry::model_by_name;
use observatory_obs::{self as obs, flight, FlightKind};
use observatory_runtime::Engine;
use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Properties a job may request (the ones meaningful on a single
/// uploaded table; P3/P6 need specialized pairwise workloads).
pub const SUPPORTED_PROPERTIES: [&str; 6] = ["P1", "P2", "P4", "P5", "P7", "P8"];

/// Is `id` a property the scheduler can run?
pub fn supported_property(id: &str) -> bool {
    SUPPORTED_PROPERTIES.contains(&id)
}

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Bound on *queued* jobs; submits beyond it are rejected (429).
    pub max_jobs: usize,
    /// Deadline applied when a request does not carry its own.
    pub default_deadline: Duration,
    /// Total run attempts per job (first run + retries after a panic).
    pub max_attempts: u32,
    /// Persistence directory (`None` = in-memory only).
    pub dir: Option<PathBuf>,
}

impl Default for JobConfig {
    fn default() -> Self {
        Self {
            max_jobs: 16,
            default_deadline: Duration::from_secs(300),
            max_attempts: 2,
            dir: None,
        }
    }
}

/// Job lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
}

impl JobState {
    /// Wire name (also the on-disk encoding).
    pub fn as_str(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Inverse of [`JobState::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "done" => JobState::Done,
            "failed" => JobState::Failed,
            "cancelled" => JobState::Cancelled,
            _ => return None,
        })
    }

    /// Terminal states never transition again.
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::Cancelled)
    }
}

/// What to analyze and how.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeSpec {
    /// Content-addressed table id from [`TableStore`].
    pub table: String,
    /// Model zoo name.
    pub model: String,
    /// Property ids, run in the given order.
    pub properties: Vec<String>,
    /// Seed for all sampling decisions (same meaning as the CLI flag).
    pub seed: u64,
    /// Permutation budget for P1/P2 (same default as the CLI).
    pub permutations: usize,
    /// Wall-clock budget measured from submission.
    pub deadline: Duration,
    /// Also compute downstream scores (column-type probe predictions).
    pub downstream: bool,
}

impl Default for AnalyzeSpec {
    fn default() -> Self {
        Self {
            table: String::new(),
            model: "bert".to_string(),
            properties: vec!["P1".to_string()],
            seed: 42,
            permutations: 24,
            deadline: Duration::from_secs(300),
            downstream: false,
        }
    }
}

/// Per-job stage timings (microseconds), mirroring the request-path
/// stage vocabulary: time spent queued, running, and persisting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobTimings {
    pub queued_us: u64,
    pub run_us: u64,
    pub persist_us: u64,
}

/// Point-in-time snapshot of one job.
#[derive(Debug, Clone)]
pub struct JobStatus {
    pub id: String,
    pub state: JobState,
    /// Fraction of property×table permutation batches completed, [0, 1].
    pub progress: f64,
    pub spec: AnalyzeSpec,
    pub error: Option<String>,
    pub attempts: u32,
    pub timings: JobTimings,
}

/// Outcome of [`JobScheduler::submit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Submit {
    /// Admitted; `depth` is the queue length after the push.
    Queued { id: String, depth: usize },
    /// Queue at capacity — retry later (the server answers 429).
    Full,
    /// Scheduler is draining; no new work.
    Closed,
    /// The spec references a table id that was never ingested.
    UnknownTable,
}

/// Outcome of [`JobScheduler::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cancel {
    /// No such job.
    Unknown,
    /// Already in a terminal state; nothing to cancel.
    AlreadyTerminal(JobState),
    /// Was queued: cancelled immediately.
    Cancelled,
    /// Is running: cancellation requested, takes effect at the next
    /// cooperative checkpoint (poll the status to observe it land).
    Cancelling,
}

/// Live gauge snapshot (includes jobs reloaded from disk).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobCounts {
    pub queued: u64,
    pub running: u64,
    pub done: u64,
    pub failed: u64,
    pub cancelled: u64,
    pub capacity: u64,
}

/// Monotonic counters for jobs submitted *in this process* — the drain
/// report's accounting basis ("never lose an admitted job").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobTotals {
    pub submitted: u64,
    pub done: u64,
    pub failed: u64,
    pub cancelled: u64,
}

impl JobTotals {
    /// Admitted jobs not yet accounted for by a terminal state. After a
    /// drain this must be zero.
    pub fn outstanding(&self) -> u64 {
        self.submitted.saturating_sub(self.done + self.failed + self.cancelled)
    }
}

struct JobEntry {
    spec: AnalyzeSpec,
    state: JobState,
    control: RunControl,
    error: Option<String>,
    attempts: u32,
    cancel_reason: Option<&'static str>,
    submitted: Instant,
    deadline_at: Instant,
    timings: JobTimings,
    /// Frozen at the terminal transition (and for records loaded from
    /// disk, where the live control is gone).
    final_progress: Option<f64>,
    /// Last persisted record JSON; `GET /v1/jobs/<id>/result` serves it.
    record: Option<Arc<String>>,
    /// Loaded from a previous process: excluded from run totals.
    loaded: bool,
}

impl JobEntry {
    fn progress(&self) -> f64 {
        self.final_progress.unwrap_or_else(|| self.control.fraction())
    }

    fn status(&self, id: &str) -> JobStatus {
        JobStatus {
            id: id.to_string(),
            state: self.state,
            progress: self.progress(),
            spec: self.spec.clone(),
            error: self.error.clone(),
            attempts: self.attempts,
            timings: self.timings,
        }
    }
}

struct SchedState {
    queue: VecDeque<String>,
    jobs: BTreeMap<String, JobEntry>,
    next_id: u64,
    closed: bool,
    running: Option<String>,
    totals: JobTotals,
}

struct Inner {
    config: JobConfig,
    engine: Arc<Engine>,
    tables: Arc<TableStore>,
    state: Mutex<SchedState>,
    cond: Condvar,
}

/// The bounded async job scheduler. One instance per server.
pub struct JobScheduler {
    inner: Arc<Inner>,
    runner: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl JobScheduler {
    /// Open the scheduler: reload persisted records (jobs that were
    /// queued or running when the process died become `failed` with
    /// `interrupted by server restart`), then start the runner thread.
    pub fn start(
        config: JobConfig,
        engine: Arc<Engine>,
        tables: Arc<TableStore>,
    ) -> std::io::Result<Self> {
        let mut jobs = BTreeMap::new();
        let mut next_id: u64 = 1;
        if let Some(dir) = &config.dir {
            std::fs::create_dir_all(dir)?;
            for entry in std::fs::read_dir(dir)? {
                let path = entry?.path();
                let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                let Some(id) = name.strip_suffix(".json") else { continue };
                if !id.starts_with("job-") {
                    continue;
                }
                let Ok(text) = std::fs::read_to_string(&path) else { continue };
                let mut rec = match persist::parse_record(&text) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("warning: skipping job record {name}: {e}");
                        continue;
                    }
                };
                if let Some(n) =
                    id.strip_prefix("job-").and_then(|h| u64::from_str_radix(h, 16).ok())
                {
                    next_id = next_id.max(n + 1);
                }
                let mut record = text;
                if !rec.state.is_terminal() {
                    // The process died with this job admitted: surface
                    // that as a failure rather than dropping the record.
                    rec.state = JobState::Failed;
                    rec.error = Some("interrupted by server restart".to_string());
                    record = persist::render_record(
                        &rec.id,
                        &rec.spec,
                        rec.state,
                        rec.progress,
                        rec.error.as_deref(),
                        rec.attempts,
                        &rec.timings,
                        None,
                    );
                    persist::write_atomic(&path, &record)?;
                }
                let now = Instant::now();
                jobs.insert(
                    rec.id.clone(),
                    JobEntry {
                        spec: rec.spec,
                        state: rec.state,
                        control: RunControl::default(),
                        error: rec.error,
                        attempts: rec.attempts,
                        cancel_reason: None,
                        submitted: now,
                        deadline_at: now,
                        timings: rec.timings,
                        final_progress: Some(rec.progress),
                        record: Some(Arc::new(record)),
                        loaded: true,
                    },
                );
            }
        }
        let inner = Arc::new(Inner {
            config,
            engine,
            tables,
            state: Mutex::new(SchedState {
                queue: VecDeque::new(),
                jobs,
                next_id,
                closed: false,
                running: None,
                totals: JobTotals::default(),
            }),
            cond: Condvar::new(),
        });
        let runner_inner = inner.clone();
        let runner = std::thread::Builder::new()
            .name("jobs-runner".into())
            .spawn(move || runner_loop(runner_inner))
            .expect("spawn jobs runner");
        Ok(Self { inner, runner: Mutex::new(Some(runner)) })
    }

    /// Submit an analysis. Bounded: at most `max_jobs` queued at once.
    pub fn submit(&self, spec: AnalyzeSpec) -> Submit {
        if self.inner.tables.get(&spec.table).is_none() {
            return Submit::UnknownTable;
        }
        let (id, depth, record) = {
            let mut st = self.inner.state.lock().unwrap();
            if st.closed {
                return Submit::Closed;
            }
            if st.queue.len() >= self.inner.config.max_jobs {
                return Submit::Full;
            }
            let id = format!("job-{:08x}", st.next_id);
            st.next_id += 1;
            let now = Instant::now();
            let deadline_at = now + spec.deadline;
            let record = persist::render_record(
                &id,
                &spec,
                JobState::Queued,
                0.0,
                None,
                0,
                &JobTimings::default(),
                None,
            );
            st.jobs.insert(
                id.clone(),
                JobEntry {
                    spec,
                    state: JobState::Queued,
                    control: RunControl::armed(Some(deadline_at)),
                    error: None,
                    attempts: 0,
                    cancel_reason: None,
                    submitted: now,
                    deadline_at,
                    timings: JobTimings::default(),
                    final_progress: None,
                    record: Some(Arc::new(record.clone())),
                    loaded: false,
                },
            );
            st.queue.push_back(id.clone());
            st.totals.submitted += 1;
            let depth = st.queue.len();
            self.inner.cond.notify_all();
            (id, depth, record)
        };
        self.inner.persist(&id, &record);
        flight::record(FlightKind::JobAdmit, &id, [0; 5], depth as u64);
        Submit::Queued { id, depth }
    }

    /// Snapshot one job.
    pub fn status(&self, id: &str) -> Option<JobStatus> {
        let st = self.inner.state.lock().unwrap();
        st.jobs.get(id).map(|j| j.status(id))
    }

    /// The current persisted record JSON (spec + state + result) and
    /// the state it reflects. `Some` for every known job.
    pub fn record_json(&self, id: &str) -> Option<(JobState, Arc<String>)> {
        let st = self.inner.state.lock().unwrap();
        st.jobs.get(id).and_then(|j| j.record.clone().map(|r| (j.state, r)))
    }

    /// Cancel a job. Queued jobs cancel immediately; running jobs stop
    /// at their next cooperative checkpoint.
    pub fn cancel(&self, id: &str) -> Cancel {
        {
            let mut st = self.inner.state.lock().unwrap();
            match st.jobs.get_mut(id) {
                None => return Cancel::Unknown,
                Some(j) if j.state.is_terminal() => return Cancel::AlreadyTerminal(j.state),
                Some(j) if j.state == JobState::Running => {
                    j.cancel_reason.get_or_insert("cancelled by request");
                    j.control.cancel();
                    return Cancel::Cancelling;
                }
                Some(_) => {} // queued: fall through to terminalize
            }
        }
        self.inner.terminalize(
            id,
            JobState::Cancelled,
            Some("cancelled by request before start".to_string()),
            None,
            None,
        );
        Cancel::Cancelled
    }

    /// Live gauges (queued/running/terminal counts incl. reloaded jobs).
    pub fn counts(&self) -> JobCounts {
        let st = self.inner.state.lock().unwrap();
        let mut c = JobCounts { capacity: self.inner.config.max_jobs as u64, ..Default::default() };
        for j in st.jobs.values() {
            match j.state {
                JobState::Queued => c.queued += 1,
                JobState::Running => c.running += 1,
                JobState::Done => c.done += 1,
                JobState::Failed => c.failed += 1,
                JobState::Cancelled => c.cancelled += 1,
            }
        }
        c
    }

    /// This-process admission/terminal counters.
    pub fn totals(&self) -> JobTotals {
        self.inner.state.lock().unwrap().totals
    }

    /// Block until `id` reaches a terminal state (or `timeout` passes);
    /// returns the final status. Used by benches and tests.
    pub fn wait_terminal(&self, id: &str, timeout: Duration) -> Option<JobStatus> {
        let deadline = Instant::now() + timeout;
        let mut st = self.inner.state.lock().unwrap();
        loop {
            match st.jobs.get(id) {
                None => return None,
                Some(j) if j.state.is_terminal() => return Some(j.status(id)),
                Some(_) => {}
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return st.jobs.get(id).map(|j| j.status(id));
            }
            let (guard, _) = self.inner.cond.wait_timeout(st, left).unwrap();
            st = guard;
        }
    }

    /// Graceful drain: close intake, cancel queued jobs, ask the running
    /// job to stop at its next checkpoint, and join the runner. Every
    /// admitted job ends in a persisted terminal state — none are lost.
    pub fn drain(&self) -> JobTotals {
        let queued: Vec<String> = {
            let mut st = self.inner.state.lock().unwrap();
            st.closed = true;
            if let Some(rid) = st.running.clone() {
                if let Some(j) = st.jobs.get_mut(&rid) {
                    j.cancel_reason.get_or_insert("cancelled: server draining");
                    j.control.cancel();
                }
            }
            self.inner.cond.notify_all();
            st.queue
                .iter()
                .filter(|id| st.jobs.get(*id).is_some_and(|j| j.state == JobState::Queued))
                .cloned()
                .collect()
        };
        for id in queued {
            self.inner.terminalize(
                &id,
                JobState::Cancelled,
                Some("cancelled: server draining before start".to_string()),
                None,
                None,
            );
        }
        if let Some(handle) = self.runner.lock().unwrap().take() {
            let _ = handle.join();
        }
        self.totals()
    }
}

impl Inner {
    fn persist(&self, id: &str, record: &str) -> u64 {
        let Some(dir) = &self.config.dir else { return 0 };
        let t0 = Instant::now();
        if let Err(e) = persist::write_atomic(&dir.join(format!("{id}.json")), record) {
            eprintln!("warning: cannot persist job {id}: {e}");
        }
        t0.elapsed().as_micros() as u64
    }

    /// Move a job to a terminal state: freeze progress, render + persist
    /// the record, bump totals, emit the flight event, wake waiters.
    fn terminalize(
        &self,
        id: &str,
        state: JobState,
        error: Option<String>,
        result: Option<(Vec<PropertyReport>, Option<DownstreamScores>)>,
        run_us: Option<u64>,
    ) {
        let (record, stages, progress) = {
            let mut st = self.state.lock().unwrap();
            let (record, stages, progress, loaded) = {
                let Some(j) = st.jobs.get_mut(id) else { return };
                if j.state.is_terminal() {
                    return; // lost the race with another terminal path
                }
                j.state = state;
                j.error = error;
                if let Some(us) = run_us {
                    j.timings.run_us = us;
                }
                let progress = j.control.fraction();
                j.final_progress = Some(progress);
                let record = persist::render_record(
                    id,
                    &j.spec,
                    state,
                    progress,
                    j.error.as_deref(),
                    j.attempts,
                    &j.timings,
                    result.as_ref().map(|(r, d)| (r.as_slice(), d.as_ref())),
                );
                j.record = Some(Arc::new(record.clone()));
                let stages = [j.timings.queued_us, 0, j.timings.run_us, 0, 0];
                (record, stages, progress, j.loaded)
            };
            if st.running.as_deref() == Some(id) {
                st.running = None;
            }
            if !loaded {
                match state {
                    JobState::Done => st.totals.done += 1,
                    JobState::Failed => st.totals.failed += 1,
                    JobState::Cancelled => st.totals.cancelled += 1,
                    _ => unreachable!("terminalize only takes terminal states"),
                }
            }
            self.cond.notify_all();
            (record, stages, progress)
        };
        let persist_us = self.persist(id, &record);
        {
            let mut st = self.state.lock().unwrap();
            if let Some(j) = st.jobs.get_mut(id) {
                j.timings.persist_us = persist_us;
            }
        }
        let kind = match state {
            JobState::Done => FlightKind::JobDone,
            JobState::Failed => FlightKind::JobFail,
            _ => FlightKind::JobCancel,
        };
        let mut stages = stages;
        stages[4] = persist_us;
        flight::record(kind, id, stages, (progress * 1000.0) as u64);
    }
}

fn runner_loop(inner: Arc<Inner>) {
    'outer: loop {
        let id = {
            let mut st = inner.state.lock().unwrap();
            'pick: loop {
                while let Some(cand) = st.queue.pop_front() {
                    if st.jobs.get(&cand).is_some_and(|j| j.state == JobState::Queued) {
                        break 'pick cand;
                    }
                }
                if st.closed {
                    break 'outer;
                }
                st = inner.cond.wait(st).unwrap();
            }
        };
        run_one(&inner, &id);
    }
}

/// Execute one popped job end to end (admission re-checks, the property
/// run, outcome classification, retry-or-terminal).
fn run_one(inner: &Arc<Inner>, id: &str) {
    // Re-check admission under the lock: the job may have been cancelled
    // while queued, the server may have started draining, or the
    // deadline may already be gone.
    enum Gate {
        Run(AnalyzeSpec, RunControl),
        Skip,
        DrainCancel,
        DeadlineFail(u128),
    }
    let gate = {
        let mut st = inner.state.lock().unwrap();
        let closed = st.closed;
        match st.jobs.get_mut(id) {
            None => Gate::Skip,
            Some(j) if j.state != JobState::Queued => Gate::Skip,
            Some(j) if closed => {
                j.cancel_reason.get_or_insert("cancelled: server draining");
                Gate::DrainCancel
            }
            Some(j) if Instant::now() >= j.deadline_at => {
                Gate::DeadlineFail(j.spec.deadline.as_millis())
            }
            Some(j) => {
                j.attempts += 1;
                j.timings.queued_us = j.submitted.elapsed().as_micros() as u64;
                j.state = JobState::Running;
                let gate = Gate::Run(j.spec.clone(), j.control.clone());
                st.running = Some(id.to_string());
                gate
            }
        }
    };
    let (spec, control) = match gate {
        Gate::Run(spec, control) => (spec, control),
        Gate::Skip => return,
        Gate::DrainCancel => {
            inner.terminalize(
                id,
                JobState::Cancelled,
                Some("cancelled: server draining before start".to_string()),
                None,
                None,
            );
            return;
        }
        Gate::DeadlineFail(budget_ms) => {
            inner.terminalize(
                id,
                JobState::Failed,
                Some(format!("deadline expired before start (budget {budget_ms}ms)")),
                None,
                None,
            );
            return;
        }
    };

    let mut span = obs::span(obs::Level::Info, "jobs", "run")
        .with("job", id)
        .with("table", &spec.table)
        .with("model", &spec.model)
        .with("properties", spec.properties.join(","));
    let t0 = Instant::now();
    let outcome =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| execute(inner, &spec, &control)));
    let run_us = t0.elapsed().as_micros() as u64;
    span.record("run_us", run_us);

    match outcome {
        Err(_) => {
            // Transient failure (panic): capped retry, then fail.
            let requeue = {
                let mut st = inner.state.lock().unwrap();
                let retry = !st.closed
                    && st.jobs.get(id).is_some_and(|j| {
                        j.cancel_reason.is_none()
                            && j.attempts < inner.config.max_attempts
                            && Instant::now() < j.deadline_at
                    });
                if retry {
                    if let Some(j) = st.jobs.get_mut(id) {
                        j.state = JobState::Queued;
                    }
                    st.queue.push_back(id.to_string());
                    if st.running.as_deref() == Some(id) {
                        st.running = None;
                    }
                    inner.cond.notify_all();
                }
                retry
            };
            if !requeue {
                let attempts = inner.state.lock().unwrap().jobs.get(id).map_or(0, |j| j.attempts);
                inner.terminalize(
                    id,
                    JobState::Failed,
                    Some(format!("property run panicked (after {attempts} attempts)")),
                    None,
                    Some(run_us),
                );
            }
        }
        Ok(Err(msg)) => {
            inner.terminalize(id, JobState::Failed, Some(msg), None, Some(run_us));
        }
        Ok(Ok((reports, downstream, interrupted))) => {
            if !interrupted {
                inner.terminalize(
                    id,
                    JobState::Done,
                    None,
                    Some((reports, downstream)),
                    Some(run_us),
                );
            } else if control.cancelled() {
                let reason = inner
                    .state
                    .lock()
                    .unwrap()
                    .jobs
                    .get(id)
                    .and_then(|j| j.cancel_reason)
                    .unwrap_or("cancelled");
                inner.terminalize(
                    id,
                    JobState::Cancelled,
                    Some(reason.to_string()),
                    None,
                    Some(run_us),
                );
            } else {
                inner.terminalize(
                    id,
                    JobState::Failed,
                    Some(format!("deadline expired after {}ms", spec.deadline.as_millis())),
                    None,
                    Some(run_us),
                );
            }
        }
    }
}

/// Run the property set. Returns `(reports, downstream, interrupted)`;
/// `interrupted` means a cancel/deadline stopped the run early and the
/// collected reports are partial (never served as a result).
fn execute(
    inner: &Inner,
    spec: &AnalyzeSpec,
    control: &RunControl,
) -> Result<(Vec<PropertyReport>, Option<DownstreamScores>, bool), String> {
    let table = inner
        .tables
        .get(&spec.table)
        .ok_or_else(|| format!("table '{}' disappeared before the run", spec.table))?;
    let model =
        model_by_name(&spec.model).ok_or_else(|| format!("unknown model '{}'", spec.model))?;
    // Single-table corpus: index 0, exactly like a one-`--csv` CLI run,
    // so per-table seeds (and therefore measures) line up bit-for-bit.
    let corpus = vec![(*table).clone()];
    control.set_total((spec.properties.len() * corpus.len()) as u64);
    let ctx =
        EvalContext { seed: spec.seed, engine: inner.engine.clone(), control: control.clone() };
    let mut reports = Vec::new();
    let mut interrupted = false;
    for (i, pid) in spec.properties.iter().enumerate() {
        if control.should_stop() {
            interrupted = true;
            break;
        }
        let prop = make_property(pid, spec.permutations)?;
        let report = prop.evaluate(model.as_ref(), &corpus, &ctx);
        let expect = ((i + 1) * corpus.len()) as u64;
        if control.should_stop() && control.units_done() < expect {
            // The evaluator bailed at an internal checkpoint mid-corpus.
            interrupted = true;
            break;
        }
        // Properties without internal progress hooks land here complete;
        // square the counter so the fraction stays monotone.
        control.advance_to(expect);
        reports.push(report);
    }
    let downstream = if spec.downstream && !interrupted {
        let clf = ColumnTypeClassifier::train(model.as_ref(), 3, spec.seed);
        Some(DownstreamScores {
            classes: clf.num_classes(),
            predictions: clf
                .predict_table(model.as_ref(), &corpus[0])
                .into_iter()
                .map(str::to_string)
                .collect(),
        })
    } else {
        None
    };
    Ok((reports, downstream, interrupted))
}

/// The exact property constructions the `characterize` CLI uses — the
/// bit-identical serve-vs-CLI guarantee rests on this correspondence.
fn make_property(id: &str, permutations: usize) -> Result<Box<dyn Property>, String> {
    Ok(match id {
        "P1" => Box::new(RowOrderInsignificance { max_permutations: permutations }),
        "P2" => Box::new(ColumnOrderInsignificance { max_permutations: permutations }),
        "P4" => Box::new(FunctionalDependencies::default()),
        "P5" => Box::new(SampleFidelity::default()),
        "P7" => Box::new(PerturbationRobustness::default()),
        "P8" => Box::new(HeterogeneousContext),
        other => return Err(format!("unsupported property '{other}'")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use observatory_runtime::EngineConfig;
    use observatory_table::{Column, Table, Value};

    fn engine() -> Arc<Engine> {
        Arc::new(Engine::new(EngineConfig { jobs: 2, cache_bytes: 1 << 22 }))
    }

    fn small_table(tag: i64) -> Table {
        let rows = 5;
        Table::new(
            format!("small-{tag}"),
            vec![
                Column::new("id", (0..rows).map(|i| Value::Int(i + tag)).collect()),
                Column::new(
                    "city",
                    (0..rows).map(|i| Value::Text(format!("c{}", (i + tag) % 3))).collect(),
                ),
            ],
        )
    }

    fn big_table() -> Table {
        let rows = 40;
        Table::new(
            "big",
            (0..4)
                .map(|c| {
                    Column::new(
                        format!("col{c}"),
                        (0..rows).map(|r| Value::Text(format!("v{c}-{r}"))).collect(),
                    )
                })
                .collect(),
        )
    }

    fn sched(max_jobs: usize, dir: Option<PathBuf>) -> (JobScheduler, Arc<TableStore>) {
        let tables = Arc::new(TableStore::open(None).unwrap());
        let config = JobConfig { max_jobs, dir, ..JobConfig::default() };
        let s = JobScheduler::start(config, engine(), tables.clone()).unwrap();
        (s, tables)
    }

    fn spec(table: &str, props: &[&str]) -> AnalyzeSpec {
        AnalyzeSpec {
            table: table.to_string(),
            properties: props.iter().map(|p| p.to_string()).collect(),
            permutations: 4,
            seed: 7,
            ..AnalyzeSpec::default()
        }
    }

    fn submit_ok(s: &JobScheduler, spec: AnalyzeSpec) -> String {
        match s.submit(spec) {
            Submit::Queued { id, .. } => id,
            other => panic!("submit refused: {other:?}"),
        }
    }

    #[test]
    fn lifecycle_done_with_bit_identical_measures() {
        let (s, tables) = sched(4, None);
        let table = small_table(0);
        let (tid, _) = tables.add(table.clone()).unwrap();
        let id = submit_ok(&s, spec(&tid, &["P1", "P2"]));
        let status = s.wait_terminal(&id, Duration::from_secs(120)).expect("job exists");
        assert_eq!(status.state, JobState::Done, "error: {:?}", status.error);
        assert_eq!(status.progress, 1.0);
        assert_eq!(status.attempts, 1);

        // The served record parses and its P1 measures are bit-identical
        // to a direct evaluation with the same seed on a fresh engine.
        let (state, record) = s.record_json(&id).unwrap();
        assert_eq!(state, JobState::Done);
        let json = obs::json::parse(&record).unwrap();
        let reports = json
            .get("result")
            .and_then(|r| r.get("reports"))
            .and_then(obs::json::Json::as_array)
            .expect("reports array");
        assert_eq!(reports.len(), 2);

        let ctx = EvalContext { seed: 7, engine: engine(), control: RunControl::default() };
        let oracle = RowOrderInsignificance { max_permutations: 4 }.evaluate(
            model_by_name("bert").unwrap().as_ref(),
            &[table],
            &ctx,
        );
        let measures = reports[0].get("measures").and_then(obs::json::Json::as_array).unwrap();
        for m in measures {
            let label = m.get("label").and_then(obs::json::Json::as_str).unwrap();
            let served: Vec<f64> = m
                .get("values")
                .and_then(obs::json::Json::as_array)
                .unwrap()
                .iter()
                .map(|v| v.as_f64().unwrap())
                .collect();
            let expect = &oracle.distribution(label).expect("oracle label").values;
            assert_eq!(served.len(), expect.len(), "{label}");
            for (a, b) in served.iter().zip(expect) {
                assert_eq!(a.to_bits(), b.to_bits(), "{label}");
            }
        }
        s.drain();
    }

    #[test]
    fn queue_bound_rejects_when_full() {
        let (s, tables) = sched(1, None);
        let (tid, _) = tables.add(big_table()).unwrap();
        // Fill: one long job may start immediately; the bound applies to
        // the queue, so keep submitting until Full appears.
        let mut saw_full = false;
        for _ in 0..8 {
            match s.submit(AnalyzeSpec { permutations: 64, ..spec(&tid, &["P1"]) }) {
                Submit::Queued { .. } => {}
                Submit::Full => {
                    saw_full = true;
                    break;
                }
                other => panic!("unexpected: {other:?}"),
            }
        }
        assert!(saw_full, "a bounded queue must eventually refuse");
        assert_eq!(s.submit(spec("tbl-unknown", &["P1"])), Submit::UnknownTable);
        let t = s.drain();
        assert_eq!(t.outstanding(), 0, "drain must account for every admitted job: {t:?}");
    }

    #[test]
    fn cancel_queued_is_immediate_and_running_is_cooperative() {
        let (s, tables) = sched(8, None);
        let (tid, _) = tables.add(big_table()).unwrap();
        // A long job occupies the runner; the next one stays queued.
        let long = submit_ok(&s, AnalyzeSpec { permutations: 48, ..spec(&tid, &["P1", "P2"]) });
        let queued = submit_ok(&s, spec(&tid, &["P1"]));
        assert_eq!(s.cancel(&queued), Cancel::Cancelled);
        let qs = s.status(&queued).unwrap();
        assert_eq!(qs.state, JobState::Cancelled);
        assert_eq!(qs.error.as_deref(), Some("cancelled by request before start"));

        match s.cancel(&long) {
            // Usually mid-run by now; either way it must land cancelled.
            Cancel::Cancelling | Cancel::Cancelled => {}
            other => panic!("unexpected: {other:?}"),
        }
        let ls = s.wait_terminal(&long, Duration::from_secs(120)).unwrap();
        assert_eq!(ls.state, JobState::Cancelled, "error: {:?}", ls.error);
        assert!(ls.progress < 1.0 || ls.error.is_some());
        assert_eq!(s.cancel(&long), Cancel::AlreadyTerminal(JobState::Cancelled));
        assert_eq!(s.cancel("job-ffffffff"), Cancel::Unknown);
        s.drain();
    }

    #[test]
    fn deadline_expires_before_start() {
        let (s, tables) = sched(8, None);
        let (tid, _) = tables.add(small_table(1)).unwrap();
        let id = submit_ok(
            &s,
            AnalyzeSpec { deadline: Duration::from_millis(0), ..spec(&tid, &["P1"]) },
        );
        let st = s.wait_terminal(&id, Duration::from_secs(60)).unwrap();
        assert_eq!(st.state, JobState::Failed);
        assert!(
            st.error.as_deref().is_some_and(|e| e.starts_with("deadline expired")),
            "error: {:?}",
            st.error
        );
        s.drain();
    }

    #[test]
    fn drain_never_loses_admitted_jobs() {
        let (s, tables) = sched(16, None);
        let (tid, _) = tables.add(big_table()).unwrap();
        for _ in 0..4 {
            submit_ok(&s, AnalyzeSpec { permutations: 32, ..spec(&tid, &["P1"]) });
        }
        let totals = s.drain();
        assert_eq!(totals.submitted, 4);
        assert_eq!(totals.outstanding(), 0, "{totals:?}");
        assert_eq!(s.submit(spec(&tid, &["P1"])), Submit::Closed);
        let c = s.counts();
        assert_eq!(c.queued + c.running, 0, "{c:?}");
    }

    #[test]
    fn results_survive_restart_and_interrupted_jobs_surface() {
        let dir = std::env::temp_dir().join(format!("obs-jobs-restart-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tables = Arc::new(TableStore::open(None).unwrap());
        let (tid, _) = tables.add(small_table(2)).unwrap();
        let config = JobConfig { max_jobs: 4, dir: Some(dir.clone()), ..JobConfig::default() };
        let done_id = {
            let s = JobScheduler::start(config.clone(), engine(), tables.clone()).unwrap();
            let id = submit_ok(&s, spec(&tid, &["P1"]));
            let st = s.wait_terminal(&id, Duration::from_secs(120)).unwrap();
            assert_eq!(st.state, JobState::Done, "error: {:?}", st.error);
            s.drain();
            id
        };
        // Simulate a crash mid-job: hand-write a running record.
        let fake = persist::render_record(
            "job-000000aa",
            &spec(&tid, &["P1"]),
            JobState::Running,
            0.5,
            None,
            1,
            &JobTimings::default(),
            None,
        );
        persist::write_atomic(&dir.join("job-000000aa.json"), &fake).unwrap();

        let s = JobScheduler::start(config, engine(), tables).unwrap();
        let (state, record) = s.record_json(&done_id).expect("done job reloaded");
        assert_eq!(state, JobState::Done);
        assert!(record.contains("\"reports\""));
        let crashed = s.status("job-000000aa").expect("crashed job visible");
        assert_eq!(crashed.state, JobState::Failed);
        assert_eq!(crashed.error.as_deref(), Some("interrupted by server restart"));
        // New ids keep counting up past everything on disk.
        let next = submit_ok(&s, spec(&tid, &["P1"]));
        let n = u64::from_str_radix(next.strip_prefix("job-").unwrap(), 16).unwrap();
        assert!(n > 0xaa, "id counter must resume past loaded records, got {next}");
        s.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
