//! On-disk JSON codecs for the job subsystem.
//!
//! Two formats live here, both designed to survive a restart with zero
//! information loss:
//!
//! - **Tables** (`tables/<id>.json`): a *typed* encoding of
//!   [`observatory_table::Table`]. Every cell is tagged with its variant
//!   and numeric payloads are stored losslessly (`Int` as a decimal
//!   string, `Float` as its IEEE-754 bit pattern), because the content
//!   address and the encoder both distinguish `Int(3)` from `Float(3.0)`
//!   — a lossy round trip would silently change fingerprints and
//!   measures after a restart.
//!
//! - **Job records** (`<job-id>.json`): spec, state, attempts, timings
//!   and — for completed jobs — the full result (per-property measures
//!   plus optional downstream scores). Measure floats are rendered
//!   shortest-round-trip (like the serve wire format), so parsing them
//!   back reproduces the exact `f64` the property runner computed.
//!
//! Writes are atomic (`.tmp` + rename) so a crash never leaves a torn
//! record where a valid one used to be.

use crate::{AnalyzeSpec, JobState, JobTimings};
use observatory_core::framework::PropertyReport;
use observatory_obs::json::{escape, parse, Json};
use observatory_table::{Column, Table, Value};
use std::path::Path;
use std::time::Duration;

/// Render a finite `f64` shortest-round-trip; non-finite becomes `null`
/// (mirrors the serve wire format).
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

fn push_str(out: &mut String, s: &str) {
    out.push('"');
    out.push_str(&escape(s));
    out.push('"');
}

// ---------------------------------------------------------------------
// Typed table codec
// ---------------------------------------------------------------------

/// Serialize a table to the typed JSON format.
pub fn render_table(table: &Table) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("{\"name\":");
    push_str(&mut out, &table.name);
    out.push_str(",\"columns\":[");
    for (ci, col) in table.columns.iter().enumerate() {
        if ci > 0 {
            out.push(',');
        }
        out.push_str("{\"header\":");
        push_str(&mut out, &col.header);
        out.push_str(",\"semantic_type\":");
        match &col.semantic_type {
            Some(t) => push_str(&mut out, t),
            None => out.push_str("null"),
        }
        out.push_str(",\"is_subject\":");
        out.push_str(if col.is_subject { "true" } else { "false" });
        out.push_str(",\"values\":[");
        for (vi, v) in col.values.iter().enumerate() {
            if vi > 0 {
                out.push(',');
            }
            match v {
                Value::Null => out.push_str("[\"n\"]"),
                Value::Bool(b) => out.push_str(if *b { "[\"b\",true]" } else { "[\"b\",false]" }),
                // Decimal string: the JSON parser holds numbers as f64,
                // which cannot carry a full i64 or the float's bits.
                Value::Int(i) => out.push_str(&format!("[\"i\",\"{i}\"]")),
                Value::Float(f) => out.push_str(&format!("[\"f\",\"{}\"]", f.to_bits())),
                Value::Text(s) => {
                    out.push_str("[\"s\",");
                    push_str(&mut out, s);
                    out.push(']');
                }
                Value::Date { year, month, day } => {
                    out.push_str(&format!("[\"d\",{year},{month},{day}]"))
                }
            }
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Parse a table back from [`render_table`] output.
pub fn parse_table(text: &str) -> Result<Table, String> {
    let json = parse(text).map_err(|e| format!("table json: {e}"))?;
    let name =
        json.get("name").and_then(Json::as_str).ok_or("table json: missing name")?.to_string();
    let cols = json.get("columns").and_then(Json::as_array).ok_or("table json: missing columns")?;
    let mut columns = Vec::with_capacity(cols.len());
    for c in cols {
        let header =
            c.get("header").and_then(Json::as_str).ok_or("table json: column missing header")?;
        let semantic_type = c.get("semantic_type").and_then(Json::as_str).map(str::to_string);
        let is_subject = c.get("is_subject").and_then(Json::as_bool).unwrap_or(false);
        let raw =
            c.get("values").and_then(Json::as_array).ok_or("table json: column missing values")?;
        let mut values = Vec::with_capacity(raw.len());
        for v in raw {
            values.push(parse_value(v)?);
        }
        let mut col = Column::new(header, values);
        col.semantic_type = semantic_type;
        col.is_subject = is_subject;
        columns.push(col);
    }
    Ok(Table::new(name, columns))
}

fn parse_value(v: &Json) -> Result<Value, String> {
    let parts = v.as_array().ok_or("table json: cell is not an array")?;
    let tag = parts.first().and_then(Json::as_str).ok_or("table json: cell missing tag")?;
    let arg = parts.get(1);
    match tag {
        "n" => Ok(Value::Null),
        "b" => Ok(Value::Bool(arg.and_then(Json::as_bool).ok_or("table json: bad bool cell")?)),
        "i" => arg
            .and_then(Json::as_str)
            .and_then(|s| s.parse::<i64>().ok())
            .map(Value::Int)
            .ok_or_else(|| "table json: bad int cell".to_string()),
        "f" => arg
            .and_then(Json::as_str)
            .and_then(|s| s.parse::<u64>().ok())
            .map(|bits| Value::Float(f64::from_bits(bits)))
            .ok_or_else(|| "table json: bad float cell".to_string()),
        "s" => Ok(Value::Text(
            arg.and_then(Json::as_str).ok_or("table json: bad text cell")?.to_string(),
        )),
        "d" => {
            let num = |i: usize| parts.get(i).and_then(Json::as_f64);
            match (num(1), num(2), num(3)) {
                (Some(y), Some(m), Some(d)) => {
                    Ok(Value::Date { year: y as i32, month: m as u8, day: d as u8 })
                }
                _ => Err("table json: bad date cell".to_string()),
            }
        }
        other => Err(format!("table json: unknown cell tag '{other}'")),
    }
}

// ---------------------------------------------------------------------
// Job record codec
// ---------------------------------------------------------------------

/// Downstream scores attached to a completed analysis (opt-in).
#[derive(Debug, Clone, PartialEq)]
pub struct DownstreamScores {
    /// Number of classes the column-type probe was trained on.
    pub classes: usize,
    /// Predicted semantic type per column of the analyzed table.
    pub predictions: Vec<String>,
}

/// Render the full job record. `result` is `Some` only for `done` jobs.
#[allow(clippy::too_many_arguments)]
pub fn render_record(
    id: &str,
    spec: &AnalyzeSpec,
    state: JobState,
    progress: f64,
    error: Option<&str>,
    attempts: u32,
    timings: &JobTimings,
    result: Option<(&[PropertyReport], Option<&DownstreamScores>)>,
) -> String {
    let mut out = String::with_capacity(512);
    out.push_str("{\"job\":");
    push_str(&mut out, id);
    out.push_str(",\"state\":");
    push_str(&mut out, state.as_str());
    out.push_str(",\"spec\":{\"table\":");
    push_str(&mut out, &spec.table);
    out.push_str(",\"model\":");
    push_str(&mut out, &spec.model);
    out.push_str(",\"properties\":[");
    for (i, p) in spec.properties.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str(&mut out, p);
    }
    out.push_str(&format!(
        "],\"seed\":{},\"permutations\":{},\"deadline_ms\":{},\"downstream\":{}}}",
        spec.seed,
        spec.permutations,
        spec.deadline.as_millis(),
        spec.downstream,
    ));
    out.push_str(&format!(",\"attempts\":{attempts},\"progress\":"));
    push_f64(&mut out, progress);
    out.push_str(",\"error\":");
    match error {
        Some(e) => push_str(&mut out, e),
        None => out.push_str("null"),
    }
    out.push_str(&format!(
        ",\"timings\":{{\"queued_us\":{},\"run_us\":{},\"persist_us\":{}}}",
        timings.queued_us, timings.run_us, timings.persist_us
    ));
    out.push_str(",\"result\":");
    match result {
        None => out.push_str("null"),
        Some((reports, downstream)) => {
            out.push_str("{\"reports\":[");
            for (i, r) in reports.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_report(&mut out, r);
            }
            out.push_str("],\"downstream\":");
            match downstream {
                None => out.push_str("null"),
                Some(d) => {
                    out.push_str(&format!(
                        "{{\"column_types\":{{\"classes\":{},\"predictions\":[",
                        d.classes
                    ));
                    for (i, p) in d.predictions.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        push_str(&mut out, p);
                    }
                    out.push_str("]}}");
                }
            }
            out.push('}');
        }
    }
    out.push('}');
    out
}

fn render_report(out: &mut String, r: &PropertyReport) {
    out.push_str("{\"property\":");
    push_str(out, r.property);
    out.push_str(",\"model\":");
    push_str(out, &r.model);
    out.push_str(",\"measures\":[");
    for (i, d) in r.records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"label\":");
        push_str(out, &d.label);
        out.push_str(",\"values\":[");
        for (j, v) in d.values.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            push_f64(out, *v);
        }
        out.push_str("]}");
    }
    out.push_str("],\"scalars\":[");
    for (i, (k, v)) in r.scalars.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        push_str(out, k);
        out.push_str(",\"value\":");
        push_f64(out, *v);
        out.push('}');
    }
    out.push_str("],\"scatters\":[");
    for (i, s) in r.scatters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"label\":");
        push_str(out, &s.label);
        out.push_str(",\"points\":[");
        for (j, (x, y)) in s.points.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push('[');
            push_f64(out, *x);
            out.push(',');
            push_f64(out, *y);
            out.push(']');
        }
        out.push_str("]}");
    }
    out.push_str("]}");
}

/// A job record loaded back from disk at startup. The result stays as
/// raw JSON (`GET /v1/jobs/<id>/result` serves the record verbatim).
#[derive(Debug, Clone)]
pub struct LoadedRecord {
    pub id: String,
    pub spec: AnalyzeSpec,
    pub state: JobState,
    pub progress: f64,
    pub error: Option<String>,
    pub attempts: u32,
    pub timings: JobTimings,
}

/// Parse the envelope of a record written by [`render_record`].
pub fn parse_record(text: &str) -> Result<LoadedRecord, String> {
    let json = parse(text).map_err(|e| format!("job record: {e}"))?;
    let str_field = |key: &str| {
        json.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("job record: missing '{key}'"))
    };
    let id = str_field("job")?;
    let state =
        JobState::parse(&str_field("state")?).ok_or_else(|| "job record: bad state".to_string())?;
    let spec_json = json.get("spec").ok_or("job record: missing spec")?;
    let sstr = |key: &str| {
        spec_json
            .get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("job record: spec missing '{key}'"))
    };
    let snum = |key: &str| spec_json.get(key).and_then(Json::as_f64).unwrap_or(0.0);
    let properties = spec_json
        .get("properties")
        .and_then(Json::as_array)
        .map(|a| a.iter().filter_map(Json::as_str).map(str::to_string).collect())
        .unwrap_or_default();
    let spec = AnalyzeSpec {
        table: sstr("table")?,
        model: sstr("model")?,
        properties,
        seed: snum("seed") as u64,
        permutations: snum("permutations") as usize,
        deadline: Duration::from_millis(snum("deadline_ms") as u64),
        downstream: spec_json.get("downstream").and_then(Json::as_bool).unwrap_or(false),
    };
    let tnum = |key: &str| {
        json.get("timings").and_then(|t| t.get(key)).and_then(Json::as_f64).unwrap_or(0.0) as u64
    };
    Ok(LoadedRecord {
        id,
        spec,
        state,
        progress: json.get("progress").and_then(Json::as_f64).unwrap_or(0.0),
        error: json.get("error").and_then(Json::as_str).map(str::to_string),
        attempts: json.get("attempts").and_then(Json::as_f64).unwrap_or(1.0) as u32,
        timings: JobTimings {
            queued_us: tnum("queued_us"),
            run_us: tnum("run_us"),
            persist_us: tnum("persist_us"),
        },
    })
}

/// Atomic write: `.tmp` sibling + rename, so readers never see a torn
/// record and a crash leaves either the old file or the new one.
pub fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gnarly_table() -> Table {
        let mut c1 = Column::new(
            "a\"b",
            vec![
                Value::Int(i64::MIN),
                Value::Int(i64::MAX),
                Value::Float(-0.0),
                Value::Float(f64::NAN),
                Value::Float(0.1 + 0.2),
            ],
        );
        c1.semantic_type = Some("city".into());
        c1.is_subject = true;
        let c2 = Column::new(
            "b",
            vec![
                Value::Null,
                Value::Bool(true),
                Value::Text("line\nbreak \u{1F600}".into()),
                Value::Date { year: -44, month: 3, day: 15 },
                Value::Text(String::new()),
            ],
        );
        Table::new("t \"quoted\"", vec![c1, c2])
    }

    #[test]
    fn table_round_trip_is_lossless() {
        let t = gnarly_table();
        let back = parse_table(&render_table(&t)).unwrap();
        assert_eq!(back.name, t.name);
        assert_eq!(back.columns.len(), t.columns.len());
        for (a, b) in t.columns.iter().zip(&back.columns) {
            assert_eq!(a.header, b.header);
            assert_eq!(a.semantic_type, b.semantic_type);
            assert_eq!(a.is_subject, b.is_subject);
            assert_eq!(a.values.len(), b.values.len());
            for (x, y) in a.values.iter().zip(&b.values) {
                match (x, y) {
                    // Bit equality, not ==: NaN and -0.0 must survive.
                    (Value::Float(f), Value::Float(g)) => {
                        assert_eq!(f.to_bits(), g.to_bits())
                    }
                    _ => assert_eq!(x, y),
                }
            }
        }
    }

    #[test]
    fn round_trip_preserves_fingerprint() {
        // The content address is computed over the typed cells; a
        // restart must reload a table to the identical address.
        let t = gnarly_table();
        let back = parse_table(&render_table(&t)).unwrap();
        assert_eq!(
            observatory_runtime::fingerprint_table("ingest", &t),
            observatory_runtime::fingerprint_table("ingest", &back),
        );
    }

    #[test]
    fn record_round_trip() {
        let spec = AnalyzeSpec {
            table: "tbl-ff".into(),
            model: "bert".into(),
            properties: vec!["P1".into(), "P2".into()],
            seed: 7,
            permutations: 12,
            deadline: Duration::from_millis(2500),
            downstream: true,
        };
        let mut report = PropertyReport::new("P1", "bert");
        report.push_distribution("column/cosine", vec![0.5, 1.0, 0.1 + 0.2]);
        report.scalars.push(("acc".into(), 0.75));
        let timings = JobTimings { queued_us: 3, run_us: 4, persist_us: 5 };
        let ds = DownstreamScores { classes: 4, predictions: vec!["city".into()] };
        let text = render_record(
            "job-0000002a",
            &spec,
            JobState::Done,
            1.0,
            None,
            2,
            &timings,
            Some((std::slice::from_ref(&report), Some(&ds))),
        );
        let back = parse_record(&text).unwrap();
        assert_eq!(back.id, "job-0000002a");
        assert_eq!(back.state, JobState::Done);
        assert_eq!(back.spec.table, spec.table);
        assert_eq!(back.spec.properties, spec.properties);
        assert_eq!(back.spec.seed, 7);
        assert_eq!(back.spec.permutations, 12);
        assert_eq!(back.spec.deadline, spec.deadline);
        assert!(back.spec.downstream);
        assert_eq!(back.attempts, 2);
        assert_eq!(back.timings.persist_us, 5);
        // Measures parse back bit-exactly (shortest round trip).
        let json = parse(&text).unwrap();
        let vals = json
            .get("result")
            .and_then(|r| r.get("reports"))
            .and_then(Json::as_array)
            .and_then(|r| r[0].get("measures"))
            .and_then(Json::as_array)
            .and_then(|m| m[0].get("values"))
            .and_then(Json::as_array)
            .unwrap();
        assert_eq!(vals[2].as_f64().unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
    }

    #[test]
    fn failed_record_keeps_error_and_no_result() {
        let spec = AnalyzeSpec::default();
        let text = render_record(
            "job-00000001",
            &spec,
            JobState::Failed,
            0.5,
            Some("deadline expired after 10ms"),
            1,
            &JobTimings::default(),
            None,
        );
        let back = parse_record(&text).unwrap();
        assert_eq!(back.state, JobState::Failed);
        assert_eq!(back.error.as_deref(), Some("deadline expired after 10ms"));
        assert!(parse(&text).unwrap().get("result").unwrap() == &Json::Null);
    }
}
