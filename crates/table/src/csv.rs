//! Minimal CSV reading and writing.
//!
//! Enough CSV (RFC 4180 quoting, header row, type inference) to let the
//! examples load user data and dump results, without an external
//! dependency. Not a general-purpose CSV engine: one table per file,
//! UTF-8 only, `\n` or `\r\n` record separators.

use crate::table::{Column, Table};
use crate::value::Value;

/// Parse CSV text into a table. The first record is the header. Fields are
/// type-inferred per cell: empty → NULL, `true`/`false` → bool, integer
/// literal → int, float literal → float, `YYYY-MM-DD` → date, else text.
///
/// Returns an error message for ragged records or unterminated quotes.
pub fn parse_csv(name: &str, text: &str) -> Result<Table, String> {
    let records = split_records(text)?;
    let mut it = records.into_iter();
    let header = it.next().ok_or_else(|| "empty CSV".to_string())?;
    let ncols = header.len();
    let mut columns: Vec<Column> = header.into_iter().map(|h| Column::new(h, Vec::new())).collect();
    for (line_no, rec) in it.enumerate() {
        if rec.len() != ncols {
            return Err(format!(
                "record {} has {} fields, expected {ncols}",
                line_no + 2,
                rec.len()
            ));
        }
        for (col, field) in columns.iter_mut().zip(rec) {
            col.values.push(infer_value(&field));
        }
    }
    Ok(Table::new(name, columns))
}

/// Serialize a table to CSV with RFC 4180 quoting.
pub fn to_csv(table: &Table) -> String {
    let mut out = String::new();
    push_record(&mut out, table.columns.iter().map(|c| c.header.clone()));
    for i in 0..table.num_rows() {
        push_record(&mut out, table.columns.iter().map(|c| c.values[i].to_text()));
    }
    out
}

fn push_record(out: &mut String, fields: impl Iterator<Item = String>) {
    let mut first = true;
    for f in fields {
        if !first {
            out.push(',');
        }
        first = false;
        if f.contains([',', '"', '\n', '\r']) {
            out.push('"');
            out.push_str(&f.replace('"', "\"\""));
            out.push('"');
        } else {
            out.push_str(&f);
        }
    }
    out.push('\n');
}

/// Split CSV text into records of fields, honouring quotes.
fn split_records(text: &str) -> Result<Vec<Vec<String>>, String> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;
    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {
                    if chars.peek() == Some(&'\n') {
                        chars.next();
                    }
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err("unterminated quoted field".into());
    }
    if !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }
    if !any {
        return Err("empty CSV".into());
    }
    Ok(records)
}

fn infer_value(s: &str) -> Value {
    if s.is_empty() {
        return Value::Null;
    }
    match s {
        "true" => return Value::Bool(true),
        "false" => return Value::Bool(false),
        _ => {}
    }
    if let Ok(i) = s.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = s.parse::<f64>() {
        if f.is_finite() {
            return Value::Float(f);
        }
    }
    if let Some(d) = parse_date(s) {
        return d;
    }
    Value::Text(s.to_string())
}

fn parse_date(s: &str) -> Option<Value> {
    let bytes = s.as_bytes();
    if bytes.len() != 10 || bytes[4] != b'-' || bytes[7] != b'-' {
        return None;
    }
    let year: i32 = s[0..4].parse().ok()?;
    let month: u8 = s[5..7].parse().ok()?;
    let day: u8 = s[8..10].parse().ok()?;
    if !(1..=12).contains(&month) || !(1..=31).contains(&day) {
        return None;
    }
    Some(Value::Date { year, month, day })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_simple() {
        let csv = "id,name,score\n1,alice,3.5\n2,bob,4.0\n";
        let t = parse_csv("t", csv).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.cell(0, 1), &Value::text("alice"));
        assert_eq!(t.cell(1, 2), &Value::Float(4.0));
        assert_eq!(to_csv(&t), csv);
    }

    #[test]
    fn type_inference() {
        let t = parse_csv("t", "a,b,c,d,e\n1,2.5,true,2020-01-31,hello\n").unwrap();
        assert_eq!(t.cell(0, 0), &Value::Int(1));
        assert_eq!(t.cell(0, 1), &Value::Float(2.5));
        assert_eq!(t.cell(0, 2), &Value::Bool(true));
        assert_eq!(t.cell(0, 3), &Value::Date { year: 2020, month: 1, day: 31 });
        assert_eq!(t.cell(0, 4), &Value::text("hello"));
    }

    #[test]
    fn empty_field_is_null() {
        let t = parse_csv("t", "a,b\n,x\n").unwrap();
        assert_eq!(t.cell(0, 0), &Value::Null);
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let t = parse_csv("t", "a\n\"x, \"\"y\"\"\"\n").unwrap();
        assert_eq!(t.cell(0, 0), &Value::text("x, \"y\""));
        // Round trip re-quotes.
        let again = parse_csv("t", &to_csv(&t)).unwrap();
        assert_eq!(again, t);
    }

    #[test]
    fn crlf_records() {
        let t = parse_csv("t", "a,b\r\n1,2\r\n").unwrap();
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.cell(0, 1), &Value::Int(2));
    }

    #[test]
    fn missing_trailing_newline_ok() {
        let t = parse_csv("t", "a\n42").unwrap();
        assert_eq!(t.cell(0, 0), &Value::Int(42));
    }

    #[test]
    fn errors() {
        assert!(parse_csv("t", "").is_err());
        assert!(parse_csv("t", "a,b\n1\n").is_err());
        assert!(parse_csv("t", "a\n\"oops\n").is_err());
    }

    #[test]
    fn not_a_date() {
        let t = parse_csv("t", "a\n2020-13-01\n").unwrap();
        assert_eq!(t.cell(0, 0), &Value::text("2020-13-01"));
    }
}
