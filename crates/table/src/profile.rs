//! Column and table profiling.
//!
//! Cheap structural statistics over a table — the information data-lake
//! systems keep per column to route queries (cardinality, nulls, type
//! mix, value-length range). Used by the dataset suites' documentation
//! binaries and available to downstream users sizing workloads for the
//! properties (e.g. which columns are worth sampling, P5).

use crate::table::{Column, Table};
use crate::value::ValueKind;

/// Statistics of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnProfile {
    pub header: String,
    pub rows: usize,
    pub distinct: usize,
    pub nulls: usize,
    /// (kind, count) per value kind present, in ValueKind declaration order.
    pub kind_counts: Vec<(ValueKind, usize)>,
    /// Shortest/longest text form length over non-null values.
    pub text_len_min: usize,
    pub text_len_max: usize,
}

impl ColumnProfile {
    /// Fraction of null cells.
    pub fn null_fraction(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.nulls as f64 / self.rows as f64
        }
    }

    /// Distinct-to-rows ratio (1.0 = key-like).
    pub fn uniqueness(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.distinct as f64 / self.rows as f64
        }
    }

    /// The dominant value kind, if any non-null value exists.
    pub fn dominant_kind(&self) -> Option<ValueKind> {
        self.kind_counts
            .iter()
            .filter(|(k, _)| *k != ValueKind::Null)
            .max_by_key(|(_, n)| *n)
            .map(|(k, _)| *k)
    }
}

/// Profile one column.
pub fn profile_column(column: &Column) -> ColumnProfile {
    const KINDS: [ValueKind; 6] = [
        ValueKind::Null,
        ValueKind::Bool,
        ValueKind::Int,
        ValueKind::Float,
        ValueKind::Text,
        ValueKind::Date,
    ];
    let mut counts = [0usize; 6];
    let mut len_min = usize::MAX;
    let mut len_max = 0usize;
    for v in &column.values {
        let idx = KINDS.iter().position(|k| *k == v.kind()).expect("exhaustive kinds");
        counts[idx] += 1;
        if !v.is_null() {
            let len = v.to_text().chars().count();
            len_min = len_min.min(len);
            len_max = len_max.max(len);
        }
    }
    ColumnProfile {
        header: column.header.clone(),
        rows: column.len(),
        distinct: column.distinct_count(),
        nulls: counts[0],
        kind_counts: KINDS
            .iter()
            .zip(counts)
            .filter(|(_, n)| *n > 0)
            .map(|(k, n)| (*k, n))
            .collect(),
        text_len_min: if len_min == usize::MAX { 0 } else { len_min },
        text_len_max: len_max,
    }
}

/// Profile every column of a table.
pub fn profile_table(table: &Table) -> Vec<ColumnProfile> {
    table.columns.iter().map(profile_column).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn column() -> Column {
        Column::new(
            "mixed",
            vec![
                Value::Int(1),
                Value::Int(1),
                Value::Null,
                Value::text("abcde"),
                Value::Float(2.5),
            ],
        )
    }

    #[test]
    fn counts_and_ratios() {
        let p = profile_column(&column());
        assert_eq!(p.rows, 5);
        assert_eq!(p.nulls, 1);
        assert_eq!(p.distinct, 4); // 1, NULL, "abcde", 2.5
        assert!((p.null_fraction() - 0.2).abs() < 1e-12);
        assert!((p.uniqueness() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn kind_histogram() {
        let p = profile_column(&column());
        let get = |k: ValueKind| p.kind_counts.iter().find(|(kk, _)| *kk == k).map(|(_, n)| *n);
        assert_eq!(get(ValueKind::Int), Some(2));
        assert_eq!(get(ValueKind::Null), Some(1));
        assert_eq!(get(ValueKind::Text), Some(1));
        assert_eq!(get(ValueKind::Float), Some(1));
        assert_eq!(get(ValueKind::Bool), None);
        assert_eq!(p.dominant_kind(), Some(ValueKind::Int));
    }

    #[test]
    fn text_lengths_ignore_nulls() {
        let p = profile_column(&column());
        assert_eq!(p.text_len_min, 1); // "1"
        assert_eq!(p.text_len_max, 5); // "abcde"
    }

    #[test]
    fn key_column_uniqueness() {
        let c = Column::new("id", (0..10).map(Value::Int).collect());
        let p = profile_column(&c);
        assert_eq!(p.uniqueness(), 1.0);
        assert_eq!(p.dominant_kind(), Some(ValueKind::Int));
    }

    #[test]
    fn empty_column() {
        let p = profile_column(&Column::new("e", vec![]));
        assert_eq!(p.rows, 0);
        assert_eq!(p.null_fraction(), 0.0);
        assert_eq!(p.dominant_kind(), None);
        assert_eq!(p.text_len_min, 0);
    }

    #[test]
    fn table_profiling_covers_all_columns() {
        let t = Table::new("t", vec![column(), Column::new("b", vec![Value::Bool(true); 5])]);
        let ps = profile_table(&t);
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[1].dominant_kind(), Some(ValueKind::Bool));
        assert_eq!(ps[1].distinct, 1);
    }
}
