//! # observatory-table
//!
//! The relational table model underneath the whole workspace.
//!
//! Observatory's properties are phrased over relational tables and their
//! invariants (Codd): a table is a *set* of rows over named, typed columns.
//! This crate provides:
//!
//! - [`value`]: a typed cell [`value::Value`] (null/bool/int/float/text/date)
//!   with a total order and display form used for serialization.
//! - [`table`]: column-major [`table::Table`] with schema metadata,
//!   row/column access, projections and mutation helpers.
//! - [`perm`]: row- and column-permutation machinery — applying
//!   permutations and sampling up to *n* distinct permutations, capped at
//!   1000 as in the paper (Properties 1 and 2).
//! - [`sample`]: uniform row sampling at a fraction and column chunking
//!   (Property 5's full-column chunk aggregation).
//! - [`subject`]: subject-column detection — "the first textual column
//!   from the left" proxy used by Property 8.
//! - [`profile`]: per-column structural statistics (cardinality, nulls,
//!   type mix) for workload sizing and corpus documentation.
//! - [`algebra`]: a small relational algebra (select / sort / hash
//!   equijoin / group-count) so applications can execute the joins that
//!   Observatory's search layer discovers.
//! - [`csv`]: minimal CSV read/write for the examples.

pub mod algebra;
pub mod csv;
pub mod perm;
pub mod profile;
pub mod sample;
pub mod subject;
pub mod table;
pub mod value;

pub use table::{Column, Table};
pub use value::Value;
