//! Typed cell values.
//!
//! A [`Value`] is one cell of a relational table. The type mix matters to
//! Observatory: Property 8 (Heterogeneous Context) is specifically about
//! how models embed *non-textual* data (dates, money, quantities, ISBNs)
//! differently with and without context, so values carry their type rather
//! than being pre-flattened to strings. Flattening happens exactly once, at
//! serialization time, via [`Value::to_text`].

use std::fmt;

/// A single cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL / missing.
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Text(String),
    /// A calendar date (year, month, day). Validity of the combination is
    /// the producer's responsibility; the table layer only stores it.
    Date {
        year: i32,
        month: u8,
        day: u8,
    },
}

impl Value {
    /// Convenience constructor for text values.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(s.into())
    }

    /// The coarse type tag of this value.
    pub fn kind(&self) -> ValueKind {
        match self {
            Value::Null => ValueKind::Null,
            Value::Bool(_) => ValueKind::Bool,
            Value::Int(_) => ValueKind::Int,
            Value::Float(_) => ValueKind::Float,
            Value::Text(_) => ValueKind::Text,
            Value::Date { .. } => ValueKind::Date,
        }
    }

    /// Whether this value is textual (for Property 8's textual vs
    /// non-textual split).
    pub fn is_textual(&self) -> bool {
        matches!(self, Value::Text(_))
    }

    /// Whether this value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The canonical text form used for model serialization and for value
    /// overlap computation. Distinct values must map to distinct strings
    /// within a type (floats use shortest round-trip formatting).
    pub fn to_text(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(x) => format_float(*x),
            Value::Text(s) => s.clone(),
            Value::Date { year, month, day } => format!("{year:04}-{month:02}-{day:02}"),
        }
    }

    /// A total order over values (NULL < Bool < Int/Float by numeric value
    /// < Text < Date), used for deterministic grouping and sorting.
    pub fn total_cmp(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering::*;
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Text(_) => 3,
                Date { .. } => 4,
            }
        }
        match (self, other) {
            (Null, Null) => Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Text(a), Text(b)) => a.cmp(b),
            (Date { year: y1, month: m1, day: d1 }, Date { year: y2, month: m2, day: d2 }) => {
                (y1, m1, d1).cmp(&(y2, m2, d2))
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// A hashable key for grouping equal values (FD groups, overlap
    /// measures). Uses the text form prefixed by the kind so e.g.
    /// `Int(1)` and `Text("1")` stay distinct.
    pub fn group_key(&self) -> String {
        format!("{}:{}", self.kind().label(), self.to_text())
    }
}

fn format_float(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        // Shortest representation that round-trips.
        format!("{x}")
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

/// Coarse value types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueKind {
    Null,
    Bool,
    Int,
    Float,
    Text,
    Date,
}

impl ValueKind {
    /// Short lowercase label.
    pub fn label(&self) -> &'static str {
        match self {
            ValueKind::Null => "null",
            ValueKind::Bool => "bool",
            ValueKind::Int => "int",
            ValueKind::Float => "float",
            ValueKind::Text => "text",
            ValueKind::Date => "date",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn text_forms() {
        assert_eq!(Value::Null.to_text(), "");
        assert_eq!(Value::Bool(true).to_text(), "true");
        assert_eq!(Value::Int(-42).to_text(), "-42");
        assert_eq!(Value::Float(2.5).to_text(), "2.5");
        assert_eq!(Value::Float(3.0).to_text(), "3.0");
        assert_eq!(Value::text("abc").to_text(), "abc");
        assert_eq!(Value::Date { year: 1997, month: 7, day: 3 }.to_text(), "1997-07-03");
    }

    #[test]
    fn kinds_and_predicates() {
        assert!(Value::text("x").is_textual());
        assert!(!Value::Int(1).is_textual());
        assert!(Value::Null.is_null());
        assert_eq!(Value::Float(1.0).kind(), ValueKind::Float);
    }

    #[test]
    fn ordering_within_types() {
        assert_eq!(Value::Int(1).total_cmp(&Value::Int(2)), Ordering::Less);
        assert_eq!(Value::text("a").total_cmp(&Value::text("b")), Ordering::Less);
        let d1 = Value::Date { year: 2020, month: 1, day: 2 };
        let d2 = Value::Date { year: 2020, month: 2, day: 1 };
        assert_eq!(d1.total_cmp(&d2), Ordering::Less);
    }

    #[test]
    fn ordering_across_types() {
        assert_eq!(Value::Null.total_cmp(&Value::Int(0)), Ordering::Less);
        assert_eq!(Value::Int(5).total_cmp(&Value::text("a")), Ordering::Less);
        // Numeric cross-type comparison is by value.
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(Value::Float(2.0).total_cmp(&Value::Int(2)), Ordering::Equal);
    }

    #[test]
    fn group_keys_distinguish_kinds() {
        assert_ne!(Value::Int(1).group_key(), Value::text("1").group_key());
        assert_eq!(Value::Int(1).group_key(), Value::Int(1).group_key());
    }

    #[test]
    fn display_matches_to_text() {
        let v = Value::Date { year: 2001, month: 12, day: 31 };
        assert_eq!(format!("{v}"), v.to_text());
    }
}
