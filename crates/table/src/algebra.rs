//! A small relational algebra over [`Table`]: selection, sorting, hash
//! equijoin, and group-by-count.
//!
//! Observatory *finds* joinable columns (Property 3, join discovery); this
//! module lets applications *execute* the joins it finds and validate
//! candidates end-to-end (see `examples/lake_pipeline.rs`). Projection
//! lives on [`Table::project`] already.

use crate::table::{Column, Table};
use crate::value::Value;
use std::collections::HashMap;

/// Rows of `table` satisfying `predicate` (a row-index filter).
pub fn select<F: Fn(&Table, usize) -> bool>(table: &Table, predicate: F) -> Table {
    let keep: Vec<usize> = (0..table.num_rows()).filter(|&i| predicate(table, i)).collect();
    table.select_rows(&keep)
}

/// Rows where column `col` equals `value`.
pub fn select_eq(table: &Table, col: usize, value: &Value) -> Table {
    select(table, |t, i| t.cell(i, col).group_key() == value.group_key())
}

/// Stable sort by column `col` ascending (using the total value order).
pub fn sort_by(table: &Table, col: usize) -> Table {
    let mut idx: Vec<usize> = (0..table.num_rows()).collect();
    idx.sort_by(|&a, &b| table.cell(a, col).total_cmp(table.cell(b, col)));
    table.select_rows(&idx)
}

/// Inner hash equijoin `left ⋈ right` on `left.on_left = right.on_right`.
///
/// Output columns: all of `left`, then all of `right` except the join
/// column (headers from `right` are prefixed with the right table's name
/// when they collide with a left header). Output order: left order, with
/// right matches in right order (standard hash-join determinism).
pub fn equijoin(left: &Table, on_left: usize, right: &Table, on_right: usize) -> Table {
    // Build: hash the right side.
    let mut build: HashMap<String, Vec<usize>> = HashMap::new();
    for i in 0..right.num_rows() {
        build.entry(right.cell(i, on_right).group_key()).or_default().push(i);
    }
    // Probe: collect matched (left, right) row pairs.
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for i in 0..left.num_rows() {
        if let Some(rs) = build.get(&left.cell(i, on_left).group_key()) {
            for &r in rs {
                pairs.push((i, r));
            }
        }
    }
    // Assemble output columns.
    let left_headers: Vec<&str> = left.columns.iter().map(|c| c.header.as_str()).collect();
    let mut columns: Vec<Column> = Vec::new();
    for c in &left.columns {
        columns.push(Column {
            header: c.header.clone(),
            values: pairs.iter().map(|&(l, _)| c.values[l].clone()).collect(),
            semantic_type: c.semantic_type.clone(),
            is_subject: c.is_subject,
        });
    }
    for (j, c) in right.columns.iter().enumerate() {
        if j == on_right {
            continue;
        }
        let header = if left_headers.contains(&c.header.as_str()) {
            format!("{}.{}", right.name, c.header)
        } else {
            c.header.clone()
        };
        columns.push(Column {
            header,
            values: pairs.iter().map(|&(_, r)| c.values[r].clone()).collect(),
            semantic_type: c.semantic_type.clone(),
            is_subject: false,
        });
    }
    Table::new(format!("{}_join_{}", left.name, right.name), columns)
}

/// Group by column `col` and count rows per group, sorted by descending
/// count then by group value (deterministic).
pub fn group_count(table: &Table, col: usize) -> Table {
    let mut counts: HashMap<String, (Value, i64)> = HashMap::new();
    for i in 0..table.num_rows() {
        let v = table.cell(i, col);
        let e = counts.entry(v.group_key()).or_insert_with(|| (v.clone(), 0));
        e.1 += 1;
    }
    let mut rows: Vec<(Value, i64)> = counts.into_values().collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.total_cmp(&b.0)));
    Table::new(
        format!("{}_by_{}", table.name, table.columns[col].header),
        vec![
            Column::new(
                table.columns[col].header.clone(),
                rows.iter().map(|(v, _)| v.clone()).collect(),
            ),
            Column::new("count", rows.iter().map(|&(_, n)| Value::Int(n)).collect()),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> Table {
        Table::from_rows(
            "people",
            &["name", "country"],
            vec![
                vec![Value::text("ada"), Value::text("NL")],
                vec![Value::text("bob"), Value::text("CA")],
                vec![Value::text("eve"), Value::text("NL")],
            ],
        )
    }

    fn countries() -> Table {
        Table::from_rows(
            "countries",
            &["country", "continent"],
            vec![
                vec![Value::text("NL"), Value::text("EU")],
                vec![Value::text("CA"), Value::text("NA")],
                vec![Value::text("JP"), Value::text("AS")],
            ],
        )
    }

    #[test]
    fn selection() {
        let t = select_eq(&people(), 1, &Value::text("NL"));
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.cell(0, 0), &Value::text("ada"));
        assert_eq!(t.cell(1, 0), &Value::text("eve"));
    }

    #[test]
    fn sorting() {
        let t = sort_by(&people(), 0);
        let names: Vec<String> = (0..3).map(|i| t.cell(i, 0).to_text()).collect();
        assert_eq!(names, vec!["ada", "bob", "eve"]);
        // Stable and deterministic.
        assert_eq!(sort_by(&people(), 0), t);
    }

    #[test]
    fn join_matches_and_shapes() {
        let j = equijoin(&people(), 1, &countries(), 0);
        assert_eq!(j.num_rows(), 3); // every person matches
        assert_eq!(j.headers(), vec!["name", "country", "continent"]);
        let ada = select_eq(&j, 0, &Value::text("ada"));
        assert_eq!(ada.cell(0, 2), &Value::text("EU"));
    }

    #[test]
    fn join_drops_unmatched() {
        let mut p = people();
        p.columns[1].values[0] = Value::text("XX"); // ada's country unknown
        let j = equijoin(&p, 1, &countries(), 0);
        assert_eq!(j.num_rows(), 2);
    }

    #[test]
    fn join_duplicates_fan_out() {
        // Two right rows with the same key: left row duplicates.
        let mut c = countries();
        c.columns[0].values[2] = Value::text("NL"); // JP row now keyed NL
        let j = equijoin(&people(), 1, &c, 0);
        assert_eq!(j.num_rows(), 5); // ada×2, eve×2, bob×1
    }

    #[test]
    fn join_renames_colliding_headers() {
        let j = equijoin(&people(), 0, &people(), 0);
        assert_eq!(j.headers(), vec!["name", "country", "people.country"]);
    }

    #[test]
    fn grouping_counts_and_orders() {
        let g = group_count(&people(), 1);
        assert_eq!(g.num_rows(), 2);
        assert_eq!(g.cell(0, 0), &Value::text("NL"));
        assert_eq!(g.cell(0, 1), &Value::Int(2));
        assert_eq!(g.cell(1, 1), &Value::Int(1));
    }

    #[test]
    fn empty_inputs() {
        let empty = Table::new("e", vec![Column::new("country", vec![])]);
        assert_eq!(equijoin(&empty, 0, &countries(), 0).num_rows(), 0);
        assert_eq!(group_count(&empty, 0).num_rows(), 0);
    }
}
