//! Subject-column detection.
//!
//! The *subject column* of a table, if it exists, contains the entities the
//! table is about (paper §3.3, footnote 2). Property 8 uses the subject
//! column as one of its context settings, with the rule: if no column is
//! annotated as the subject, "use the first textual column from the left of
//! a table as the proxy".

use crate::table::Table;

/// Index of the table's subject column.
///
/// Resolution order:
/// 1. a column explicitly annotated `is_subject`;
/// 2. the first predominantly-textual column from the left (the paper's
///    proxy rule);
/// 3. `None` if the table has no textual column at all.
pub fn subject_column(table: &Table) -> Option<usize> {
    if let Some(i) = table.columns.iter().position(|c| c.is_subject) {
        return Some(i);
    }
    table.columns.iter().position(|c| c.is_textual())
}

/// Indices of the immediate left/right neighbours of column `j`
/// (Property 8's "neighboring columns" context setting).
pub fn neighbor_columns(table: &Table, j: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(2);
    if j > 0 {
        out.push(j - 1);
    }
    if j + 1 < table.num_cols() {
        out.push(j + 1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Column;
    use crate::value::Value;

    fn numeric(h: &str) -> Column {
        Column::new(h, vec![Value::Int(1), Value::Int(2)])
    }

    fn textual(h: &str) -> Column {
        Column::new(h, vec![Value::text("a"), Value::text("b")])
    }

    #[test]
    fn annotated_subject_wins() {
        let mut c = textual("name");
        c.is_subject = true;
        let t = Table::new("t", vec![textual("other"), c]);
        assert_eq!(subject_column(&t), Some(1));
    }

    #[test]
    fn first_textual_column_is_proxy() {
        let t = Table::new("t", vec![numeric("id"), textual("name"), textual("city")]);
        assert_eq!(subject_column(&t), Some(1));
    }

    #[test]
    fn no_textual_column_is_none() {
        let t = Table::new("t", vec![numeric("a"), numeric("b")]);
        assert_eq!(subject_column(&t), None);
    }

    #[test]
    fn neighbors_interior_and_edges() {
        let t = Table::new("t", vec![numeric("a"), numeric("b"), numeric("c")]);
        assert_eq!(neighbor_columns(&t, 1), vec![0, 2]);
        assert_eq!(neighbor_columns(&t, 0), vec![1]);
        assert_eq!(neighbor_columns(&t, 2), vec![1]);
    }
}
