//! Column-major relational tables.
//!
//! Storage is column-major because nearly every Observatory operation is
//! per-column: column embeddings, column shuffles, column sampling, FD
//! partitions, overlap measures. Row views are materialized on demand.

use crate::value::Value;

/// A named column: header plus cell values, with optional semantic
/// annotations used by the dataset suites.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Column header (may be empty for header-less corpora like SOTAB).
    pub header: String,
    /// Cell values, one per row.
    pub values: Vec<Value>,
    /// Optional semantic type annotation (e.g. "money", "date") used by
    /// the SOTAB suite and the column-type-prediction downstream task.
    pub semantic_type: Option<String>,
    /// Whether this is the table's subject column (the column containing
    /// the entities the table is about), if known.
    pub is_subject: bool,
}

impl Column {
    /// A plain column with no annotations.
    pub fn new(header: impl Into<String>, values: Vec<Value>) -> Self {
        Self { header: header.into(), values, semantic_type: None, is_subject: false }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the column has no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Fraction of values that are textual.
    pub fn textual_fraction(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().filter(|v| v.is_textual()).count() as f64 / self.values.len() as f64
    }

    /// Whether the column is predominantly textual (> 50% text cells).
    pub fn is_textual(&self) -> bool {
        self.textual_fraction() > 0.5
    }

    /// Number of distinct values (by group key).
    pub fn distinct_count(&self) -> usize {
        let mut keys: Vec<String> = self.values.iter().map(|v| v.group_key()).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.len()
    }
}

/// A relational table: an ordered list of columns of equal length.
///
/// Row and column order are *stored* (tables arrive in some physical
/// order) but per the relational model carry no meaning — that tension is
/// exactly what Properties 1 and 2 measure.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table name / caption.
    pub name: String,
    /// Columns, left to right.
    pub columns: Vec<Column>,
}

impl Table {
    /// Create a table from columns.
    ///
    /// # Panics
    /// Panics if the columns disagree on length.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Self {
        if let Some(first) = columns.first() {
            let n = first.len();
            assert!(columns.iter().all(|c| c.len() == n), "Table::new: ragged columns");
        }
        Self { name: name.into(), columns }
    }

    /// Build from headers and row-major values.
    ///
    /// # Panics
    /// Panics if any row's length differs from the header count.
    pub fn from_rows(name: impl Into<String>, headers: &[&str], rows: Vec<Vec<Value>>) -> Self {
        let mut columns: Vec<Column> =
            headers.iter().map(|h| Column::new(*h, Vec::with_capacity(rows.len()))).collect();
        for row in rows {
            assert_eq!(row.len(), headers.len(), "from_rows: ragged row");
            for (col, v) in columns.iter_mut().zip(row) {
                col.values.push(v);
            }
        }
        Self::new(name, columns)
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.columns.len()
    }

    /// Borrow a cell.
    ///
    /// # Panics
    /// Panics on out-of-bounds indices.
    pub fn cell(&self, row: usize, col: usize) -> &Value {
        &self.columns[col].values[row]
    }

    /// Materialize row `i` as a vector of value references.
    pub fn row(&self, i: usize) -> Vec<&Value> {
        self.columns.iter().map(|c| &c.values[i]).collect()
    }

    /// Column headers in order.
    pub fn headers(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.header.as_str()).collect()
    }

    /// Find a column index by header name.
    pub fn column_index(&self, header: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.header == header)
    }

    /// A new table containing only the given columns (in the given order).
    ///
    /// # Panics
    /// Panics on out-of-bounds column indices.
    pub fn project(&self, col_indices: &[usize]) -> Table {
        let columns = col_indices.iter().map(|&j| self.columns[j].clone()).collect();
        Table { name: self.name.clone(), columns }
    }

    /// A new table containing only the given rows (in the given order;
    /// duplicates allowed, enabling bootstrap-style uses).
    ///
    /// # Panics
    /// Panics on out-of-bounds row indices.
    pub fn select_rows(&self, row_indices: &[usize]) -> Table {
        let columns = self
            .columns
            .iter()
            .map(|c| Column {
                header: c.header.clone(),
                values: row_indices.iter().map(|&i| c.values[i].clone()).collect(),
                semantic_type: c.semantic_type.clone(),
                is_subject: c.is_subject,
            })
            .collect();
        Table { name: self.name.clone(), columns }
    }

    /// Truncate to the first `n` rows (used by TaBERT's first-3-rows input
    /// convention and by token-budget row fitting).
    pub fn head(&self, n: usize) -> Table {
        let n = n.min(self.num_rows());
        self.select_rows(&(0..n).collect::<Vec<_>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        Table::from_rows(
            "athletes",
            &["id", "year", "competition"],
            vec![
                vec![Value::Int(1), Value::Int(1993), Value::text("Asian Championships")],
                vec![Value::Int(2), Value::Int(1994), Value::text("Asian Games")],
                vec![Value::Int(3), Value::Int(1997), Value::text("World Championships")],
            ],
        )
    }

    #[test]
    fn shape_and_access() {
        let t = sample_table();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_cols(), 3);
        assert_eq!(t.cell(1, 2), &Value::text("Asian Games"));
        assert_eq!(t.headers(), vec!["id", "year", "competition"]);
        assert_eq!(t.column_index("year"), Some(1));
        assert_eq!(t.column_index("nope"), None);
    }

    #[test]
    fn row_view() {
        let t = sample_table();
        let r = t.row(0);
        assert_eq!(r[0], &Value::Int(1));
        assert_eq!(r[2], &Value::text("Asian Championships"));
    }

    #[test]
    fn projection_reorders_columns() {
        let t = sample_table().project(&[2, 0]);
        assert_eq!(t.headers(), vec!["competition", "id"]);
        assert_eq!(t.num_rows(), 3);
    }

    #[test]
    fn select_rows_reorders_and_duplicates() {
        let t = sample_table().select_rows(&[2, 0, 0]);
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.cell(0, 0), &Value::Int(3));
        assert_eq!(t.cell(1, 0), &Value::Int(1));
        assert_eq!(t.cell(2, 0), &Value::Int(1));
    }

    #[test]
    fn head_truncates_and_clamps() {
        let t = sample_table();
        assert_eq!(t.head(2).num_rows(), 2);
        assert_eq!(t.head(99).num_rows(), 3);
    }

    #[test]
    fn column_statistics() {
        let t = sample_table();
        assert!(t.columns[2].is_textual());
        assert!(!t.columns[0].is_textual());
        assert_eq!(t.columns[1].distinct_count(), 3);
        let dup = Column::new("d", vec![Value::Int(1), Value::Int(1), Value::Int(2)]);
        assert_eq!(dup.distinct_count(), 2);
    }

    #[test]
    fn empty_table() {
        let t = Table::new("empty", vec![]);
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.num_cols(), 0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_columns_panic() {
        Table::new(
            "bad",
            vec![
                Column::new("a", vec![Value::Int(1)]),
                Column::new("b", vec![Value::Int(1), Value::Int(2)]),
            ],
        );
    }
}
