//! Row and column permutations (Properties 1 and 2).
//!
//! A relational table is a set of rows over a set of attributes, so any
//! permutation of either is the "same" table. Observatory embeds many
//! permutation variants of each table and measures the dispersion of the
//! resulting embeddings. The number of permutations is factorial in the
//! table size, so — exactly like the paper — we sample at most
//! [`PERMUTATION_CAP`] distinct permutations per table, always including
//! the identity (the original order) first.

use crate::table::Table;
use observatory_linalg::SplitMix64;

/// Paper cap: "we use at most 1000 randomly generated permutations of each
/// table" (§3.2, Measure 1).
pub const PERMUTATION_CAP: usize = 1000;

/// Apply a row permutation: row `i` of the result is row `perm[i]` of the
/// input.
///
/// # Panics
/// Panics if `perm` is not a permutation of `0..num_rows`.
pub fn permute_rows(table: &Table, perm: &[usize]) -> Table {
    assert_valid_perm(perm, table.num_rows(), "permute_rows");
    table.select_rows(perm)
}

/// Apply a column permutation: column `j` of the result is column
/// `perm[j]` of the input.
///
/// # Panics
/// Panics if `perm` is not a permutation of `0..num_cols`.
pub fn permute_columns(table: &Table, perm: &[usize]) -> Table {
    assert_valid_perm(perm, table.num_cols(), "permute_columns");
    table.project(perm)
}

fn assert_valid_perm(perm: &[usize], n: usize, what: &str) {
    assert_eq!(perm.len(), n, "{what}: wrong permutation length");
    let mut seen = vec![false; n];
    for &p in perm {
        assert!(p < n && !seen[p], "{what}: not a permutation");
        seen[p] = true;
    }
}

/// Sample up to `max` *distinct* permutations of `0..n`, identity first.
///
/// For small `n` where `n!` does not exceed `max`, every permutation is
/// returned (in a deterministic order). Otherwise permutations are drawn
/// uniformly by Fisher–Yates and deduplicated; for `n ≥ 2` the collision
/// probability is negligible but dedup keeps the contract exact.
pub fn sample_permutations(n: usize, max: usize, seed: u64) -> Vec<Vec<usize>> {
    let max = max.max(1);
    if let Some(total) = factorial_at_most(n, max) {
        // Enumerate all n! permutations (identity is lexicographically first).
        let mut all = Vec::with_capacity(total);
        let mut cur: Vec<usize> = (0..n).collect();
        loop {
            all.push(cur.clone());
            if !next_permutation(&mut cur) {
                break;
            }
        }
        return all;
    }
    let mut rng = SplitMix64::new(seed);
    let mut out: Vec<Vec<usize>> = Vec::with_capacity(max);
    let identity: Vec<usize> = (0..n).collect();
    out.push(identity.clone());
    let mut seen = std::collections::HashSet::new();
    seen.insert(identity);
    // Rejection loop; collisions are vanishingly rare for n! » max.
    let mut attempts = 0usize;
    while out.len() < max && attempts < max * 20 {
        attempts += 1;
        let mut p: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut p);
        if seen.insert(p.clone()) {
            out.push(p);
        }
    }
    out
}

/// `Some(n!)` when `n! <= cap`, else `None`. Avoids overflow for large `n`.
fn factorial_at_most(n: usize, cap: usize) -> Option<usize> {
    let mut f: usize = 1;
    for k in 2..=n {
        f = f.checked_mul(k)?;
        if f > cap {
            return None;
        }
    }
    Some(f)
}

/// In-place lexicographic next permutation; returns `false` after the last.
fn next_permutation(p: &mut [usize]) -> bool {
    if p.len() < 2 {
        return false;
    }
    let mut i = p.len() - 1;
    while i > 0 && p[i - 1] >= p[i] {
        i -= 1;
    }
    if i == 0 {
        return false;
    }
    let mut j = p.len() - 1;
    while p[j] <= p[i - 1] {
        j -= 1;
    }
    p.swap(i - 1, j);
    p[i..].reverse();
    true
}

/// Convenience: generate up to `max` row-shuffled variants of a table
/// (the original order first).
pub fn row_shuffles(table: &Table, max: usize, seed: u64) -> Vec<Table> {
    sample_permutations(table.num_rows(), max, seed)
        .iter()
        .map(|p| permute_rows(table, p))
        .collect()
}

/// Convenience: generate up to `max` column-shuffled variants of a table
/// (the original order first).
pub fn column_shuffles(table: &Table, max: usize, seed: u64) -> Vec<Table> {
    sample_permutations(table.num_cols(), max, seed)
        .iter()
        .map(|p| permute_columns(table, p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn t() -> Table {
        Table::from_rows(
            "t",
            &["a", "b"],
            vec![
                vec![Value::Int(1), Value::text("x")],
                vec![Value::Int(2), Value::text("y")],
                vec![Value::Int(3), Value::text("z")],
            ],
        )
    }

    #[test]
    fn permute_rows_reorders() {
        let p = permute_rows(&t(), &[2, 0, 1]);
        assert_eq!(p.cell(0, 0), &Value::Int(3));
        assert_eq!(p.cell(1, 0), &Value::Int(1));
        assert_eq!(p.cell(2, 1), &Value::text("y"));
    }

    #[test]
    fn permute_columns_reorders() {
        let p = permute_columns(&t(), &[1, 0]);
        assert_eq!(p.headers(), vec!["b", "a"]);
        assert_eq!(p.cell(0, 0), &Value::text("x"));
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn invalid_permutation_panics() {
        permute_rows(&t(), &[0, 0, 1]);
    }

    #[test]
    fn small_n_enumerates_all() {
        let ps = sample_permutations(3, 1000, 42);
        assert_eq!(ps.len(), 6);
        assert_eq!(ps[0], vec![0, 1, 2]); // identity first
        let mut sorted = ps.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
    }

    #[test]
    fn large_n_caps_and_dedups() {
        let ps = sample_permutations(10, 50, 7);
        assert_eq!(ps.len(), 50);
        assert_eq!(ps[0], (0..10).collect::<Vec<_>>());
        let mut sorted = ps.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 50, "permutations must be distinct");
    }

    #[test]
    fn exhaustion_when_factorial_below_max() {
        // 4! = 24 < 100 → all 24 returned even though max is 100.
        assert_eq!(sample_permutations(4, 100, 1).len(), 24);
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(sample_permutations(8, 20, 5), sample_permutations(8, 20, 5));
        assert_ne!(sample_permutations(8, 20, 5), sample_permutations(8, 20, 6));
    }

    #[test]
    fn shuffle_helpers_preserve_content() {
        let shuffles = row_shuffles(&t(), 6, 3);
        assert_eq!(shuffles.len(), 6);
        for s in &shuffles {
            let mut ids: Vec<i64> = (0..3)
                .map(|i| match s.cell(i, 0) {
                    Value::Int(v) => *v,
                    _ => panic!(),
                })
                .collect();
            ids.sort_unstable();
            assert_eq!(ids, vec![1, 2, 3]);
        }
        let cshuffles = column_shuffles(&t(), 10, 3);
        assert_eq!(cshuffles.len(), 2); // 2! = 2
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(sample_permutations(0, 10, 1), vec![Vec::<usize>::new()]);
        assert_eq!(sample_permutations(1, 10, 1), vec![vec![0]]);
    }
}
