//! Row sampling and column chunking (Property 5, Sample Fidelity).
//!
//! Embedding a full large column is often infeasible, so practitioners
//! sample. Property 5 quantifies the fidelity loss: the cosine similarity
//! between the embedding of a uniform sample and the embedding of the full
//! column. Following the paper (and TUTA), the *full* embedding is obtained
//! by splitting the column into chunks that each fit the model input,
//! embedding each chunk with the shared header, and aggregating.

use crate::table::{Column, Table};
use observatory_linalg::SplitMix64;

/// Uniformly sample `⌈fraction × n⌉` distinct rows of a table, preserving
/// their original relative order (sampling should not double as a shuffle —
/// order sensitivity is Property 1's job, not Property 5's).
///
/// `fraction` is clamped to `[0, 1]`; at least one row is kept for
/// non-empty tables.
pub fn sample_rows(table: &Table, fraction: f64, seed: u64) -> Table {
    let n = table.num_rows();
    if n == 0 {
        return table.clone();
    }
    let k = sample_size(n, fraction);
    let mut rng = SplitMix64::new(seed);
    let mut idx = rng.sample_indices(n, k);
    idx.sort_unstable();
    table.select_rows(&idx)
}

/// Uniformly sample values of a single column (order-preserving), returning
/// a new column with the same header and annotations.
pub fn sample_column(column: &Column, fraction: f64, seed: u64) -> Column {
    let n = column.len();
    if n == 0 {
        return column.clone();
    }
    let k = sample_size(n, fraction);
    let mut rng = SplitMix64::new(seed);
    let mut idx = rng.sample_indices(n, k);
    idx.sort_unstable();
    Column {
        header: column.header.clone(),
        values: idx.iter().map(|&i| column.values[i].clone()).collect(),
        semantic_type: column.semantic_type.clone(),
        is_subject: column.is_subject,
    }
}

fn sample_size(n: usize, fraction: f64) -> usize {
    let f = fraction.clamp(0.0, 1.0);
    ((n as f64 * f).ceil() as usize).clamp(1, n)
}

/// Split a column into chunks of at most `chunk_rows` values, each carrying
/// the shared header (paper Measure 5 / TUTA-style full-column embedding).
///
/// # Panics
/// Panics if `chunk_rows == 0`.
pub fn chunk_column(column: &Column, chunk_rows: usize) -> Vec<Column> {
    assert!(chunk_rows > 0, "chunk_column: zero chunk size");
    if column.values.is_empty() {
        return vec![column.clone()];
    }
    column
        .values
        .chunks(chunk_rows)
        .map(|vals| Column {
            header: column.header.clone(),
            values: vals.to_vec(),
            semantic_type: column.semantic_type.clone(),
            is_subject: column.is_subject,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn col(n: usize) -> Column {
        Column::new("c", (0..n as i64).map(Value::Int).collect())
    }

    fn tbl(n: usize) -> Table {
        Table::new("t", vec![col(n)])
    }

    #[test]
    fn sample_sizes_match_fraction() {
        assert_eq!(sample_rows(&tbl(100), 0.25, 1).num_rows(), 25);
        assert_eq!(sample_rows(&tbl(100), 0.5, 1).num_rows(), 50);
        assert_eq!(sample_rows(&tbl(10), 0.33, 1).num_rows(), 4); // ceil
    }

    #[test]
    fn fraction_clamped() {
        assert_eq!(sample_rows(&tbl(10), -1.0, 1).num_rows(), 1);
        assert_eq!(sample_rows(&tbl(10), 2.0, 1).num_rows(), 10);
    }

    #[test]
    fn sample_preserves_relative_order() {
        let s = sample_rows(&tbl(50), 0.4, 9);
        let vals: Vec<i64> = s.columns[0]
            .values
            .iter()
            .map(|v| match v {
                Value::Int(x) => *x,
                _ => panic!(),
            })
            .collect();
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        assert_eq!(vals, sorted, "sampled rows must keep original order");
    }

    #[test]
    fn sample_distinct_rows() {
        let s = sample_rows(&tbl(20), 0.5, 3);
        let mut vals: Vec<String> = s.columns[0].values.iter().map(|v| v.to_text()).collect();
        vals.sort();
        vals.dedup();
        assert_eq!(vals.len(), 10);
    }

    #[test]
    fn sample_deterministic() {
        let a = sample_rows(&tbl(30), 0.5, 77);
        let b = sample_rows(&tbl(30), 0.5, 77);
        assert_eq!(a, b);
    }

    #[test]
    fn sample_column_matches_table_sampling_contract() {
        let c = sample_column(&col(40), 0.25, 5);
        assert_eq!(c.len(), 10);
        assert_eq!(c.header, "c");
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(sample_rows(&tbl(0), 0.5, 1).num_rows(), 0);
        assert_eq!(sample_column(&Column::new("c", vec![]), 0.5, 1).len(), 0);
    }

    #[test]
    fn chunking_covers_all_values_in_order() {
        let c = col(10);
        let chunks = chunk_column(&c, 3);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks[0].len(), 3);
        assert_eq!(chunks[3].len(), 1);
        let rejoined: Vec<Value> = chunks.iter().flat_map(|ch| ch.values.iter().cloned()).collect();
        assert_eq!(rejoined, c.values);
        assert!(chunks.iter().all(|ch| ch.header == "c"));
    }

    #[test]
    fn chunking_exact_division() {
        assert_eq!(chunk_column(&col(9), 3).len(), 3);
    }

    #[test]
    #[should_panic(expected = "zero chunk size")]
    fn chunk_zero_panics() {
        chunk_column(&col(5), 0);
    }
}
