//! Property-based tests for the functional-dependency machinery.

use observatory_fd::approx::g3_error;
use observatory_fd::discovery::{
    discover_unary_fds, holds_unary, holds_unary_naive, DiscoveryOptions,
};
use observatory_fd::partition::StrippedPartition;
use observatory_table::{Column, Table, Value};
use proptest::prelude::*;

/// Random small tables with low-cardinality columns (so FDs actually occur).
fn arb_table() -> impl Strategy<Value = Table> {
    (2usize..5, 3usize..14).prop_flat_map(|(cols, rows)| {
        proptest::collection::vec(
            proptest::collection::vec(0u8..4, rows), // values from a 4-symbol alphabet
            cols,
        )
        .prop_map(|columns| {
            Table::new(
                "t",
                columns
                    .into_iter()
                    .enumerate()
                    .map(|(j, vals)| {
                        Column::new(
                            format!("c{j}"),
                            vals.into_iter().map(|v| Value::Int(i64::from(v))).collect(),
                        )
                    })
                    .collect(),
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Partition refinement agrees with the O(n²) oracle on every pair.
    #[test]
    fn refinement_matches_naive(table in arb_table()) {
        for x in 0..table.num_cols() {
            for y in 0..table.num_cols() {
                if x != y {
                    prop_assert_eq!(
                        holds_unary(&table, x, y),
                        holds_unary_naive(&table, x, y),
                        "{} → {}", x, y
                    );
                }
            }
        }
    }

    /// Every discovered FD genuinely holds, and no holding FD with a
    /// non-key determinant and non-constant dependent is missed.
    #[test]
    fn discovery_sound_and_complete(table in arb_table()) {
        let opts = DiscoveryOptions { skip_key_determinants: false, skip_constant_dependents: false };
        let fds = discover_unary_fds(&table, opts);
        for fd in &fds {
            prop_assert!(holds_unary(&table, fd.determinant, fd.dependent));
        }
        for x in 0..table.num_cols() {
            for y in 0..table.num_cols() {
                if x != y && holds_unary(&table, x, y) {
                    prop_assert!(
                        fds.iter().any(|f| f.determinant == x && f.dependent == y),
                        "missed {} → {}", x, y
                    );
                }
            }
        }
    }

    /// g3 is zero exactly when the FD holds, and always in [0, 1).
    #[test]
    fn g3_consistent_with_exact_check(table in arb_table()) {
        for x in 0..table.num_cols() {
            for y in 0..table.num_cols() {
                if x == y { continue; }
                let e = g3_error(&table, x, y);
                prop_assert!((0.0..1.0).contains(&e), "g3 {}", e);
                prop_assert_eq!(e == 0.0, holds_unary(&table, x, y), "{} → {} e={}", x, y, e);
            }
        }
    }

    /// Partition algebra: the product of a partition with itself is
    /// itself; the product refines both factors.
    #[test]
    fn partition_product_laws(table in arb_table()) {
        let a = StrippedPartition::from_column(&table, 0);
        let b = StrippedPartition::from_column(&table, 1);
        prop_assert_eq!(a.product(&a), a.clone());
        let prod = a.product(&b);
        prop_assert!(prod.refines(&a));
        prop_assert!(prod.refines(&b));
    }

    /// Partition error identity: e(π_X) ≥ e(π_X·π_Y), with equality iff
    /// X → Y.
    #[test]
    fn error_monotone_under_product(table in arb_table()) {
        let a = StrippedPartition::from_column(&table, 0);
        let joint = StrippedPartition::from_columns(&table, &[0, 1]);
        prop_assert!(a.error() >= joint.error());
        prop_assert_eq!(a.error() == joint.error(), holds_unary(&table, 0, 1));
    }
}
