//! Unary functional-dependency discovery.
//!
//! The paper's setup: "we set the size of determinant to 1" when running
//! HyFD over Spider (§4.2). With unary determinants the lattice search of
//! full HyFD collapses to checking every ordered attribute pair, and the
//! partition-refinement check makes each test O(rows). Trivial and
//! key-degenerate dependencies are filtered the way FD miners do:
//! reflexive FDs (`A → A`) are skipped, and key columns (all-distinct
//! determinants) are excluded on request since `key → anything` carries no
//! semantic signal for Property 4 (its FD groups are all singletons).

use crate::partition::StrippedPartition;
use observatory_table::Table;

/// A unary functional dependency `determinant → dependent` (column indices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fd {
    /// Determinant column index (X).
    pub determinant: usize,
    /// Dependent column index (Y).
    pub dependent: usize,
}

/// Options for [`discover_unary_fds`].
#[derive(Debug, Clone, Copy)]
pub struct DiscoveryOptions {
    /// Skip determinants that are keys (all values distinct). Default true:
    /// key-determined FDs have only singleton FD groups and are useless for
    /// Property 4's group-wise variance.
    pub skip_key_determinants: bool,
    /// Skip dependents that are constant columns (a constant is determined
    /// by everything). Default true.
    pub skip_constant_dependents: bool,
}

impl Default for DiscoveryOptions {
    fn default() -> Self {
        Self { skip_key_determinants: true, skip_constant_dependents: true }
    }
}

/// Whether `X → Y` holds exactly, via partition refinement.
pub fn holds_unary(table: &Table, determinant: usize, dependent: usize) -> bool {
    let px = StrippedPartition::from_column(table, determinant);
    let py = StrippedPartition::from_column(table, dependent);
    px.refines(&py)
}

/// Naive verifier: materialize all pairs of rows with equal determinant
/// values and compare dependents. O(rows²) worst case. Kept for the D5
/// ablation bench and as an oracle in tests.
pub fn holds_unary_naive(table: &Table, determinant: usize, dependent: usize) -> bool {
    let det = &table.columns[determinant].values;
    let dep = &table.columns[dependent].values;
    for i in 0..det.len() {
        for j in (i + 1)..det.len() {
            if det[i].group_key() == det[j].group_key() && dep[i].group_key() != dep[j].group_key()
            {
                return false;
            }
        }
    }
    true
}

/// Discover all satisfied unary FDs of a table.
///
/// Partitions are computed once per column and each ordered pair is tested
/// by refinement, so the cost is O(cols · rows) for partitioning plus
/// O(cols² · rows) for testing.
pub fn discover_unary_fds(table: &Table, options: DiscoveryOptions) -> Vec<Fd> {
    let n_cols = table.num_cols();
    let n_rows = table.num_rows();
    if n_rows == 0 || n_cols < 2 {
        return Vec::new();
    }
    let partitions: Vec<StrippedPartition> =
        (0..n_cols).map(|c| StrippedPartition::from_column(table, c)).collect();
    let is_key: Vec<bool> = partitions.iter().map(|p| p.classes.is_empty()).collect();
    let is_constant: Vec<bool> =
        partitions.iter().map(|p| p.classes.len() == 1 && p.classes[0].len() == n_rows).collect();
    let mut fds = Vec::new();
    for x in 0..n_cols {
        if options.skip_key_determinants && is_key[x] {
            continue;
        }
        for y in 0..n_cols {
            if x == y {
                continue;
            }
            if options.skip_constant_dependents && is_constant[y] {
                continue;
            }
            if partitions[x].refines(&partitions[y]) {
                fds.push(Fd { determinant: x, dependent: y });
            }
        }
    }
    fds
}

#[cfg(test)]
mod tests {
    use super::*;
    use observatory_table::{Column, Value};

    fn figure3_table() -> Table {
        let countries =
            ["Netherlands", "Netherlands", "Canada", "USA", "Netherlands", "USA", "USA", "Canada"];
        let continents = [
            "Europe",
            "Europe",
            "North America",
            "North America",
            "Europe",
            "North America",
            "North America",
            "North America",
        ];
        let names = ["Kathryn", "Oscar", "Lee", "Roxanne", "Fern", "Raphael", "Rob", "Ismail"];
        Table::new(
            "people",
            vec![
                Column::new("id", (1..=8).map(Value::Int).collect()),
                Column::new("name", names.iter().map(|s| Value::text(*s)).collect()),
                Column::new("country", countries.iter().map(|s| Value::text(*s)).collect()),
                Column::new("continent", continents.iter().map(|s| Value::text(*s)).collect()),
            ],
        )
    }

    #[test]
    fn figure3_fd_is_discovered() {
        let fds = discover_unary_fds(&figure3_table(), DiscoveryOptions::default());
        assert_eq!(fds, vec![Fd { determinant: 2, dependent: 3 }]);
    }

    #[test]
    fn key_determinants_included_when_requested() {
        let opts = DiscoveryOptions { skip_key_determinants: false, ..Default::default() };
        let fds = discover_unary_fds(&figure3_table(), opts);
        // id and name are keys: each determines the other 3 columns.
        assert_eq!(fds.len(), 1 + 3 + 3);
        assert!(fds.contains(&Fd { determinant: 0, dependent: 3 }));
    }

    #[test]
    fn refinement_check_matches_naive_oracle() {
        let t = figure3_table();
        for x in 0..t.num_cols() {
            for y in 0..t.num_cols() {
                if x == y {
                    continue;
                }
                assert_eq!(
                    holds_unary(&t, x, y),
                    holds_unary_naive(&t, x, y),
                    "disagreement on {x} → {y}"
                );
            }
        }
    }

    #[test]
    fn violated_fd_not_discovered() {
        // b does not determine c (value 1 maps to both x and y).
        let t = Table::new(
            "t",
            vec![
                Column::new("b", vec![Value::Int(1), Value::Int(1), Value::Int(2)]),
                Column::new("c", vec![Value::text("x"), Value::text("y"), Value::text("x")]),
            ],
        );
        assert!(!holds_unary(&t, 0, 1));
        assert!(discover_unary_fds(&t, DiscoveryOptions::default()).is_empty());
    }

    #[test]
    fn constant_dependent_skipped_by_default() {
        let t = Table::new(
            "t",
            vec![
                Column::new("a", vec![Value::Int(1), Value::Int(1), Value::Int(2)]),
                Column::new("k", vec![Value::Int(7), Value::Int(7), Value::Int(7)]),
            ],
        );
        assert!(discover_unary_fds(&t, DiscoveryOptions::default()).is_empty());
        let opts = DiscoveryOptions { skip_constant_dependents: false, ..Default::default() };
        assert_eq!(discover_unary_fds(&t, opts), vec![Fd { determinant: 0, dependent: 1 }]);
    }

    #[test]
    fn empty_and_tiny_tables() {
        let empty = Table::new("e", vec![]);
        assert!(discover_unary_fds(&empty, DiscoveryOptions::default()).is_empty());
        let one_col = Table::new("o", vec![Column::new("a", vec![Value::Int(1)])]);
        assert!(discover_unary_fds(&one_col, DiscoveryOptions::default()).is_empty());
    }

    #[test]
    fn nulls_participate_as_values() {
        // NULL is treated as an ordinary (equal-to-itself) value, as FD
        // miners over SQL dumps commonly do.
        let t = Table::new(
            "t",
            vec![
                Column::new("a", vec![Value::Null, Value::Null, Value::Int(1)]),
                Column::new("b", vec![Value::Int(5), Value::Int(5), Value::Int(6)]),
            ],
        );
        assert!(holds_unary(&t, 0, 1));
    }
}
