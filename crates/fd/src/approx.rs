//! Approximate functional dependencies via the `g3` error measure.
//!
//! Real-world tables (the paper's Spider dumps included) are noisy: an FD
//! that holds for 98% of tuples is often the *intended* dependency with a
//! few dirty rows. TANE's `g3` error — the minimum fraction of tuples that
//! must be removed for the FD to hold exactly — is the standard measure.
//! `g3(X → Y) = (‖π_X‖' − Σ_{c ∈ π_X} max class overlap with π_{X∪Y}) / n`,
//! computable from the stripped partitions alone.

use crate::discovery::Fd;
use crate::partition::StrippedPartition;
use observatory_table::Table;

/// The `g3` error of `X → Y` over a table: the minimum fraction of rows to
/// delete so the dependency holds exactly. `0.0` means the FD is exact.
pub fn g3_error(table: &Table, determinant: usize, dependent: usize) -> f64 {
    let n = table.num_rows();
    if n == 0 {
        return 0.0;
    }
    let px = StrippedPartition::from_column(table, determinant);
    let pxy = StrippedPartition::from_columns(table, &[determinant, dependent]);
    // For every class of π_X, all but the largest sub-class (under the
    // refinement into π_{X∪Y}) must be removed. Rows that are singletons in
    // π_X can never violate.
    let mut class_of = vec![usize::MAX; n];
    for (ci, class) in pxy.classes.iter().enumerate() {
        for &r in class {
            class_of[r] = ci;
        }
    }
    let mut to_remove = 0usize;
    let mut counts: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for class in &px.classes {
        counts.clear();
        let mut singletons = 0usize; // rows singleton in π_{X∪Y}
        for &r in class {
            if class_of[r] == usize::MAX {
                singletons += 1;
            } else {
                *counts.entry(class_of[r]).or_insert(0) += 1;
            }
        }
        let largest = counts.values().copied().max().unwrap_or(0).max(usize::from(singletons > 0));
        to_remove += class.len() - largest.max(1).min(class.len());
    }
    to_remove as f64 / n as f64
}

/// An approximate FD: the dependency plus its `g3` error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxFd {
    pub fd: Fd,
    pub g3: f64,
}

/// Discover all unary FDs with `g3` error at most `max_error`. With
/// `max_error = 0.0` this reduces to exact discovery (minus the key/
/// constant pruning of [`crate::discovery::discover_unary_fds`], which is
/// applied here too).
pub fn discover_approximate_unary_fds(table: &Table, max_error: f64) -> Vec<ApproxFd> {
    let n_cols = table.num_cols();
    let n_rows = table.num_rows();
    if n_rows == 0 || n_cols < 2 {
        return Vec::new();
    }
    let partitions: Vec<StrippedPartition> =
        (0..n_cols).map(|c| StrippedPartition::from_column(table, c)).collect();
    let is_key: Vec<bool> = partitions.iter().map(|p| p.classes.is_empty()).collect();
    let is_constant: Vec<bool> =
        partitions.iter().map(|p| p.classes.len() == 1 && p.classes[0].len() == n_rows).collect();
    let mut out = Vec::new();
    for (x, &key) in is_key.iter().enumerate() {
        if key {
            continue;
        }
        for (y, &constant) in is_constant.iter().enumerate() {
            if x == y || constant {
                continue;
            }
            let g3 = g3_error(table, x, y);
            if g3 <= max_error {
                out.push(ApproxFd { fd: Fd { determinant: x, dependent: y }, g3 });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use observatory_table::{Column, Value};

    fn noisy_table() -> Table {
        // country → continent holds except for one dirty row (row 5).
        let countries = ["NL", "NL", "NL", "CA", "CA", "NL"];
        let continents = ["EU", "EU", "EU", "NA", "NA", "ASIA"];
        Table::new(
            "noisy",
            vec![
                Column::new("country", countries.iter().map(|s| Value::text(*s)).collect()),
                Column::new("continent", continents.iter().map(|s| Value::text(*s)).collect()),
            ],
        )
    }

    #[test]
    fn exact_fd_has_zero_error() {
        let t = noisy_table();
        // continent → country? NA maps to CA only; EU → NL; ASIA → NL: holds!
        assert_eq!(g3_error(&t, 1, 0), 0.0);
    }

    #[test]
    fn one_dirty_row_error() {
        let t = noisy_table();
        // country → continent: the NL class {EU,EU,EU,ASIA} needs 1 removal.
        assert!((g3_error(&t, 0, 1) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn approximate_discovery_thresholds() {
        let t = noisy_table();
        let exact = discover_approximate_unary_fds(&t, 0.0);
        assert!(exact.iter().all(|a| a.g3 == 0.0));
        assert!(exact.iter().any(|a| a.fd.determinant == 1 && a.fd.dependent == 0));
        assert!(!exact.iter().any(|a| a.fd.determinant == 0 && a.fd.dependent == 1));
        let loose = discover_approximate_unary_fds(&t, 0.2);
        assert!(loose.iter().any(|a| a.fd.determinant == 0 && a.fd.dependent == 1));
    }

    #[test]
    fn exact_matches_exact_discovery() {
        use crate::discovery::{discover_unary_fds, DiscoveryOptions};
        let t = crate::partition::tests_support::figure3_table();
        let approx: Vec<Fd> =
            discover_approximate_unary_fds(&t, 0.0).into_iter().map(|a| a.fd).collect();
        let exact = discover_unary_fds(&t, DiscoveryOptions::default());
        for fd in &exact {
            assert!(approx.contains(fd), "{fd:?} missing from approximate discovery");
        }
    }

    #[test]
    fn error_bounded() {
        let t = noisy_table();
        for x in 0..2 {
            for y in 0..2 {
                if x != y {
                    let e = g3_error(&t, x, y);
                    assert!((0.0..=1.0).contains(&e));
                }
            }
        }
    }
}
