//! Binary-determinant FD discovery (`|X| = 2`) — the first lattice level
//! above the paper's configuration.
//!
//! The paper caps determinants at size 1 "to avoid mining a massive number
//! of functional dependencies" (§4.2); this module provides the next level
//! for users who need it, with TANE-style minimality pruning: a binary FD
//! `{A, B} → Y` is only reported when neither `A → Y` nor `B → Y` holds
//! (otherwise it is implied and carries no extra information).

use crate::partition::StrippedPartition;
use observatory_table::Table;

/// A binary functional dependency `{a, b} → dependent` (column indices,
/// `a < b`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BinaryFd {
    pub a: usize,
    pub b: usize,
    pub dependent: usize,
}

/// Discover all *minimal* binary FDs of a table: `{a, b} → y` holds and
/// neither unary projection does. Key pairs (unique `{a, b}` projections)
/// are skipped — every key determines everything, vacuously.
pub fn discover_binary_fds(table: &Table) -> Vec<BinaryFd> {
    let n_cols = table.num_cols();
    if table.num_rows() == 0 || n_cols < 3 {
        return Vec::new();
    }
    let unary: Vec<StrippedPartition> =
        (0..n_cols).map(|c| StrippedPartition::from_column(table, c)).collect();
    let mut out = Vec::new();
    for a in 0..n_cols {
        for b in (a + 1)..n_cols {
            let pab = unary[a].product(&unary[b]);
            if pab.classes.is_empty() {
                // {a, b} is a key: nothing minimal to find here.
                continue;
            }
            for y in 0..n_cols {
                if y == a || y == b {
                    continue;
                }
                // Minimality: skip FDs implied by a unary determinant.
                if unary[a].refines(&unary[y]) || unary[b].refines(&unary[y]) {
                    continue;
                }
                if pab.refines(&unary[y]) {
                    out.push(BinaryFd { a, b, dependent: y });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use observatory_table::{Column, Value};

    /// grade is determined by (student, course) but by neither alone.
    fn enrollment() -> Table {
        let students = ["ada", "ada", "bob", "bob", "ada", "bob"];
        let courses = ["db", "ml", "db", "ml", "os", "os"];
        let grades = ["A", "B", "B", "A", "A", "C"];
        Table::new(
            "enrollment",
            vec![
                Column::new("student", students.iter().map(|s| Value::text(*s)).collect()),
                Column::new("course", courses.iter().map(|s| Value::text(*s)).collect()),
                Column::new("grade", grades.iter().map(|s| Value::text(*s)).collect()),
            ],
        )
    }

    #[test]
    fn finds_genuinely_binary_dependency() {
        // (student, course) is a key here, so it is skipped; make grades
        // repeat so the pair is *not* a key but still determines.
        let mut t = enrollment();
        // Duplicate the first row: the pair partition is non-trivial now.
        for c in &mut t.columns {
            let v = c.values[0].clone();
            c.values.push(v);
        }
        let fds = discover_binary_fds(&t);
        assert!(
            fds.contains(&BinaryFd { a: 0, b: 1, dependent: 2 }),
            "student,course → grade must be discovered: {fds:?}"
        );
    }

    #[test]
    fn implied_binary_fds_are_pruned() {
        // country → continent holds unarily, so {country, X} → continent
        // must not be reported.
        let countries = ["NL", "NL", "CA", "CA"];
        let continents = ["EU", "EU", "NA", "NA"];
        let noise = [1i64, 2, 1, 2];
        let t = Table::new(
            "t",
            vec![
                Column::new("country", countries.iter().map(|s| Value::text(*s)).collect()),
                Column::new("continent", continents.iter().map(|s| Value::text(*s)).collect()),
                Column::new("noise", noise.iter().map(|&v| Value::Int(v)).collect()),
            ],
        );
        let fds = discover_binary_fds(&t);
        assert!(
            !fds.iter().any(|f| f.dependent == 1),
            "{fds:?} contains a non-minimal dependency on continent"
        );
    }

    #[test]
    fn key_pairs_skipped() {
        let t = enrollment(); // (student, course) unique
        let fds = discover_binary_fds(&t);
        assert!(!fds.iter().any(|f| f.a == 0 && f.b == 1), "{fds:?}");
    }

    #[test]
    fn small_tables_empty() {
        let t = Table::new(
            "two",
            vec![Column::new("a", vec![Value::Int(1)]), Column::new("b", vec![Value::Int(2)])],
        );
        assert!(discover_binary_fds(&t).is_empty());
    }
}
