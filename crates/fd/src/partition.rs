//! Stripped partitions (TANE/HyFD's core data structure).
//!
//! The partition `π_X` of a relation under attribute set `X` groups row
//! indices by equal `X`-projections. The *stripped* partition drops
//! singleton groups: they can never violate any FD, and dropping them makes
//! refinement checks and products near-linear in practice.

use observatory_table::Table;
use std::collections::HashMap;

/// A stripped partition: equivalence classes (row-index lists) of size ≥ 2.
#[derive(Debug, Clone, PartialEq)]
pub struct StrippedPartition {
    /// Number of rows of the underlying relation.
    pub n_rows: usize,
    /// Equivalence classes with ≥ 2 members, each sorted ascending.
    pub classes: Vec<Vec<usize>>,
}

impl StrippedPartition {
    /// The stripped partition of a single column.
    pub fn from_column(table: &Table, col: usize) -> Self {
        let column = &table.columns[col];
        let mut by_value: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, v) in column.values.iter().enumerate() {
            by_value.entry(v.group_key()).or_default().push(i);
        }
        Self::from_classes(table.num_rows(), by_value.into_values())
    }

    /// The stripped partition of a set of columns (projection equality).
    pub fn from_columns(table: &Table, cols: &[usize]) -> Self {
        let mut by_value: HashMap<String, Vec<usize>> = HashMap::new();
        for i in 0..table.num_rows() {
            let key = cols
                .iter()
                .map(|&c| table.columns[c].values[i].group_key())
                .collect::<Vec<_>>()
                .join("\u{1f}");
            by_value.entry(key).or_default().push(i);
        }
        Self::from_classes(table.num_rows(), by_value.into_values())
    }

    fn from_classes(n_rows: usize, classes: impl Iterator<Item = Vec<usize>>) -> Self {
        let mut classes: Vec<Vec<usize>> = classes.filter(|c| c.len() >= 2).collect();
        for c in &mut classes {
            c.sort_unstable();
        }
        // Deterministic order (by first member) regardless of hash iteration.
        classes.sort_by_key(|c| c[0]);
        Self { n_rows, classes }
    }

    /// `‖π‖`: total rows covered by non-singleton classes.
    pub fn size(&self) -> usize {
        self.classes.iter().map(Vec::len).sum()
    }

    /// TANE's error `e(π) = ‖π‖ − |π|`: the number of rows that would have
    /// to be removed to make every class a singleton. Key identity:
    /// `X → Y` holds iff `e(π_X) = e(π_{X∪Y})`.
    pub fn error(&self) -> usize {
        self.size() - self.classes.len()
    }

    /// Product partition `π_this ∩ π_other` (rows equal under both),
    /// computed with the standard probe-table algorithm, O(‖π‖).
    pub fn product(&self, other: &StrippedPartition) -> StrippedPartition {
        assert_eq!(self.n_rows, other.n_rows, "product: row-count mismatch");
        // probe[row] = class index in `self`, or usize::MAX.
        let mut probe = vec![usize::MAX; self.n_rows];
        for (ci, class) in self.classes.iter().enumerate() {
            for &r in class {
                probe[r] = ci;
            }
        }
        let mut out: Vec<Vec<usize>> = Vec::new();
        let mut bucket: HashMap<usize, Vec<usize>> = HashMap::new();
        for class in &other.classes {
            bucket.clear();
            for &r in class {
                if probe[r] != usize::MAX {
                    bucket.entry(probe[r]).or_default().push(r);
                }
            }
            for (_, rows) in bucket.drain() {
                if rows.len() >= 2 {
                    out.push(rows);
                }
            }
        }
        Self::from_classes(self.n_rows, out.into_iter())
    }

    /// Whether this partition refines `other`: every class of `self` is
    /// contained in some class of `other`. `π_X` refines `π_Y` iff
    /// `X → Y` holds.
    pub fn refines(&self, other: &StrippedPartition) -> bool {
        assert_eq!(self.n_rows, other.n_rows, "refines: row-count mismatch");
        // class_of[row] = class index in `other` (singletons = MAX).
        let mut class_of = vec![usize::MAX; other.n_rows];
        for (ci, class) in other.classes.iter().enumerate() {
            for &r in class {
                class_of[r] = ci;
            }
        }
        self.classes.iter().all(|class| {
            let first = class_of[class[0]];
            // A row that is a singleton in `other` breaks containment.
            first != usize::MAX && class.iter().all(|&r| class_of[r] == first)
        })
    }
}

/// Shared test fixtures for this crate's test modules.
#[cfg(test)]
pub(crate) mod tests_support {
    use observatory_table::{Column, Table, Value};

    /// The paper's Figure 3 table: country → continent holds.
    pub(crate) fn figure3_table() -> Table {
        let countries =
            ["Netherlands", "Netherlands", "Canada", "USA", "Netherlands", "USA", "USA", "Canada"];
        let continents = [
            "Europe",
            "Europe",
            "North America",
            "North America",
            "Europe",
            "North America",
            "North America",
            "North America",
        ];
        let names = ["Kathryn", "Oscar", "Lee", "Roxanne", "Fern", "Raphael", "Rob", "Ismail"];
        Table::new(
            "people",
            vec![
                Column::new("id", (1..=8).map(Value::Int).collect()),
                Column::new("name", names.iter().map(|s| Value::text(*s)).collect()),
                Column::new("country", countries.iter().map(|s| Value::text(*s)).collect()),
                Column::new("continent", continents.iter().map(|s| Value::text(*s)).collect()),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::figure3_table;
    use super::*;

    #[test]
    fn column_partition_groups_equal_values() {
        let t = figure3_table();
        let p = StrippedPartition::from_column(&t, 2); // country
        assert_eq!(p.classes.len(), 3);
        let sizes: Vec<usize> = p.classes.iter().map(Vec::len).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![2, 3, 3]); // Canada×2, Netherlands×3, USA×3
    }

    #[test]
    fn key_column_partition_is_empty() {
        let t = figure3_table();
        let p = StrippedPartition::from_column(&t, 0); // id (all distinct)
        assert!(p.classes.is_empty());
        assert_eq!(p.error(), 0);
    }

    #[test]
    fn error_identity_for_fd() {
        let t = figure3_table();
        let px = StrippedPartition::from_column(&t, 2);
        let pxy = StrippedPartition::from_columns(&t, &[2, 3]);
        // country → continent: adding the dependent does not split classes.
        assert_eq!(px.error(), pxy.error());
        // continent → country does NOT hold: adding country splits classes.
        let py = StrippedPartition::from_column(&t, 3);
        let pyx = StrippedPartition::from_columns(&t, &[3, 2]);
        assert!(py.error() > pyx.error());
    }

    #[test]
    fn refinement_matches_fd() {
        let t = figure3_table();
        let country = StrippedPartition::from_column(&t, 2);
        let continent = StrippedPartition::from_column(&t, 3);
        assert!(country.refines(&continent)); // country → continent
        assert!(!continent.refines(&country)); // continent ↛ country
    }

    #[test]
    fn product_equals_multi_column_partition() {
        let t = figure3_table();
        let a = StrippedPartition::from_column(&t, 2);
        let b = StrippedPartition::from_column(&t, 3);
        let prod = a.product(&b);
        let joint = StrippedPartition::from_columns(&t, &[2, 3]);
        assert_eq!(prod, joint);
    }

    #[test]
    fn product_is_commutative() {
        let t = figure3_table();
        let a = StrippedPartition::from_column(&t, 1);
        let b = StrippedPartition::from_column(&t, 3);
        assert_eq!(a.product(&b), b.product(&a));
    }

    #[test]
    fn every_partition_refines_itself() {
        let t = figure3_table();
        for c in 0..t.num_cols() {
            let p = StrippedPartition::from_column(&t, c);
            assert!(p.refines(&p));
        }
    }
}
