//! FD groups (paper Measure 4).
//!
//! For an FD `X → Y`, the *FD group* `G_{v_X}` is the set of tuples sharing
//! a determinant value `v_X`; every tuple in the group carries the same
//! dependent value `v_Y`. Property 4 embeds the determinant and dependent
//! cell of every tuple in a group and asks whether the translation vector
//! `E(v_X,i) − E(v_Y,i)` is constant within the group.

use crate::discovery::Fd;
use observatory_table::{Table, Value};
use std::collections::HashMap;

/// One FD group: the tuples (row indices) sharing a determinant value.
#[derive(Debug, Clone, PartialEq)]
pub struct FdGroup {
    /// The shared determinant value `v_X`.
    pub determinant_value: Value,
    /// The dependent value `v_Y` associated with `v_X`.
    pub dependent_value: Value,
    /// Rows of the group, in table order.
    pub rows: Vec<usize>,
}

/// Extract the FD groups of `fd` over `table`, keeping only groups with at
/// least `min_size` members (Measure 4's group-wise variance needs ≥ 2
/// entries per group).
///
/// # Panics
/// Panics if `table` violates the FD — callers must verify first (the
/// measure is undefined on violated dependencies).
pub fn fd_groups(table: &Table, fd: Fd, min_size: usize) -> Vec<FdGroup> {
    let det = &table.columns[fd.determinant].values;
    let dep = &table.columns[fd.dependent].values;
    let mut by_value: HashMap<String, FdGroup> = HashMap::new();
    for i in 0..det.len() {
        let key = det[i].group_key();
        match by_value.get_mut(&key) {
            Some(g) => {
                assert_eq!(
                    g.dependent_value.group_key(),
                    dep[i].group_key(),
                    "fd_groups: table violates {} → {}",
                    table.columns[fd.determinant].header,
                    table.columns[fd.dependent].header,
                );
                g.rows.push(i);
            }
            None => {
                by_value.insert(
                    key,
                    FdGroup {
                        determinant_value: det[i].clone(),
                        dependent_value: dep[i].clone(),
                        rows: vec![i],
                    },
                );
            }
        }
    }
    let mut groups: Vec<FdGroup> =
        by_value.into_values().filter(|g| g.rows.len() >= min_size).collect();
    groups.sort_by_key(|g| g.rows[0]);
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use observatory_table::Column;

    fn figure3_table() -> Table {
        let countries =
            ["Netherlands", "Netherlands", "Canada", "USA", "Netherlands", "USA", "USA", "Canada"];
        let continents = [
            "Europe",
            "Europe",
            "North America",
            "North America",
            "Europe",
            "North America",
            "North America",
            "North America",
        ];
        Table::new(
            "people",
            vec![
                Column::new("country", countries.iter().map(|s| Value::text(*s)).collect()),
                Column::new("continent", continents.iter().map(|s| Value::text(*s)).collect()),
            ],
        )
    }

    #[test]
    fn figure3_has_three_groups() {
        let groups = fd_groups(&figure3_table(), Fd { determinant: 0, dependent: 1 }, 1);
        assert_eq!(groups.len(), 3);
        let nl = groups.iter().find(|g| g.determinant_value == Value::text("Netherlands")).unwrap();
        assert_eq!(nl.rows, vec![0, 1, 4]);
        assert_eq!(nl.dependent_value, Value::text("Europe"));
        let ca = groups.iter().find(|g| g.determinant_value == Value::text("Canada")).unwrap();
        assert_eq!(ca.rows.len(), 2);
    }

    #[test]
    fn min_size_filters_singletons() {
        let t = Table::new(
            "t",
            vec![
                Column::new("x", vec![Value::Int(1), Value::Int(1), Value::Int(2)]),
                Column::new("y", vec![Value::Int(9), Value::Int(9), Value::Int(8)]),
            ],
        );
        let all = fd_groups(&t, Fd { determinant: 0, dependent: 1 }, 1);
        assert_eq!(all.len(), 2);
        let non_singleton = fd_groups(&t, Fd { determinant: 0, dependent: 1 }, 2);
        assert_eq!(non_singleton.len(), 1);
        assert_eq!(non_singleton[0].rows, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "violates")]
    fn violated_fd_panics() {
        let t = Table::new(
            "t",
            vec![
                Column::new("x", vec![Value::Int(1), Value::Int(1)]),
                Column::new("y", vec![Value::Int(9), Value::Int(8)]),
            ],
        );
        fd_groups(&t, Fd { determinant: 0, dependent: 1 }, 1);
    }

    #[test]
    fn groups_ordered_by_first_row() {
        let groups = fd_groups(&figure3_table(), Fd { determinant: 0, dependent: 1 }, 1);
        let firsts: Vec<usize> = groups.iter().map(|g| g.rows[0]).collect();
        let mut sorted = firsts.clone();
        sorted.sort_unstable();
        assert_eq!(firsts, sorted);
    }
}
