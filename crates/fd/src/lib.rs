//! # observatory-fd
//!
//! Functional-dependency machinery: discovery, verification, and the
//! FD-group extraction that Property 4's measure is built on.
//!
//! The paper runs HyFD over the Spider development set with determinant
//! size capped at 1 and finds 713 unary FDs. This crate implements the
//! partition-refinement core that HyFD (and TANE before it) are built on:
//!
//! - [`partition`]: *stripped partitions* — the equivalence classes of rows
//!   under equality on an attribute, with singleton classes removed. An FD
//!   `X → Y` holds iff the partition of `X` *refines* the partition of
//!   `X ∪ Y`, which reduces to an error count of zero.
//! - [`discovery`]: exhaustive unary (`|X| = 1`) FD discovery over a table,
//!   exactly the configuration the paper uses, plus a naive O(n²·pairs)
//!   verifier kept for the D5 ablation bench.
//! - [`approx`]: approximate FDs via TANE's `g3` error (minimum fraction
//!   of tuples to delete), for noisy real-world dumps.
//! - [`binary`]: minimal binary-determinant (`|X| = 2`) discovery, the
//!   lattice level above the paper's configuration.
//! - [`groups`]: FD-group extraction (paper Measure 4): for an FD
//!   `X → Y`, the groups of tuples sharing a determinant value, together
//!   with their dependent value.

pub mod approx;
pub mod binary;
pub mod discovery;
pub mod groups;
pub mod partition;

pub use discovery::{discover_unary_fds, holds_unary, Fd};
pub use groups::{fd_groups, FdGroup};
pub use partition::StrippedPartition;
