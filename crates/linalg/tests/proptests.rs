//! Property-based tests for the linear-algebra kernels.

use observatory_linalg::moments::moments;
use observatory_linalg::pca::Pca;
use observatory_linalg::solve::invert;
use observatory_linalg::vector;
use observatory_linalg::{Matrix, SplitMix64};
use proptest::prelude::*;

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e3f64..1e3, len)
}

proptest! {
    #[test]
    fn cosine_bounds_and_symmetry(a in finite_vec(8), b in finite_vec(8)) {
        let c = vector::cosine(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&c));
        prop_assert!((c - vector::cosine(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn cosine_scale_invariant(a in finite_vec(6), b in finite_vec(6), s in 0.001f64..1000.0) {
        let scaled: Vec<f64> = a.iter().map(|x| x * s).collect();
        let c1 = vector::cosine(&a, &b);
        let c2 = vector::cosine(&scaled, &b);
        prop_assert!((c1 - c2).abs() < 1e-9);
    }

    #[test]
    fn triangle_inequality_l2(a in finite_vec(5), b in finite_vec(5), c in finite_vec(5)) {
        let ab = vector::l2_distance(&a, &b);
        let bc = vector::l2_distance(&b, &c);
        let ac = vector::l2_distance(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-9);
    }

    #[test]
    fn matmul_associative(seed in 0u64..1000) {
        let mut rng = SplitMix64::new(seed);
        let mut m = |r: usize, c: usize| {
            let mut out = Matrix::zeros(r, c);
            for i in 0..r {
                for j in 0..c {
                    out[(i, j)] = rng.next_normal();
                }
            }
            out
        };
        let (a, b, c) = (m(3, 4), m(4, 2), m(2, 5));
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn transpose_involution(rows in proptest::collection::vec(finite_vec(4), 1..6)) {
        let m = Matrix::from_rows(&rows);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn covariance_is_symmetric_psd_diagonal(rows in proptest::collection::vec(finite_vec(3), 2..10)) {
        let m = moments(&Matrix::from_rows(&rows));
        for i in 0..3 {
            prop_assert!(m.cov[(i, i)] >= -1e-9, "negative variance");
            for j in 0..3 {
                prop_assert!((m.cov[(i, j)] - m.cov[(j, i)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn inverse_round_trip_when_invertible(seed in 0u64..500) {
        let mut rng = SplitMix64::new(seed);
        // Diagonally dominant ⇒ invertible.
        let n = 4;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = rng.next_normal() * 0.2;
            }
            a[(i, i)] += 3.0;
        }
        let inv = invert(&a).expect("diagonally dominant");
        let id = a.matmul(&inv);
        for i in 0..n {
            for j in 0..n {
                let want = if i == j { 1.0 } else { 0.0 };
                prop_assert!((id[(i, j)] - want).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn pca_projection_dimensions(rows in proptest::collection::vec(finite_vec(5), 3..12), k in 1usize..5) {
        let m = Matrix::from_rows(&rows);
        let pca = Pca::fit(&m, k);
        prop_assert_eq!(pca.k(), k.min(5));
        let p = pca.project(&rows[0]);
        prop_assert_eq!(p.len(), pca.k());
        prop_assert!(p.iter().all(|x| x.is_finite()));
        // Eigenvalues descending and non-negative.
        for w in pca.explained_variance.windows(2) {
            prop_assert!(w[0] + 1e-9 >= w[1]);
        }
        prop_assert!(pca.explained_variance.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn rng_sample_indices_always_distinct(seed in 0u64..1000, n in 1usize..50, k in 0usize..60) {
        let mut rng = SplitMix64::new(seed);
        let s = rng.sample_indices(n, k);
        prop_assert_eq!(s.len(), k.min(n));
        let mut t = s.clone();
        t.sort_unstable();
        t.dedup();
        prop_assert_eq!(t.len(), s.len());
    }
}
