//! Linear system solving and matrix inversion by Gaussian elimination with
//! partial pivoting.
//!
//! Observatory's headline MCV (Albert–Zhang) deliberately avoids inverting
//! the covariance matrix — that is the point of paper Measure 1: with
//! `n ≤ d` observations `Σ` is singular and inverse-based MCVs are
//! undefined. This module exists so the *ablation* bench (`ablation_mcv`)
//! can demonstrate exactly that failure mode with a Voinov–Nikulin-style
//! estimator, and so tests can validate `Σ` properties.

use crate::matrix::Matrix;

/// Relative pivot threshold under which a matrix is declared singular.
const SINGULARITY_EPS: f64 = 1e-10;

/// Invert a square matrix. Returns `None` if the matrix is (numerically)
/// singular.
///
/// # Panics
/// Panics if the matrix is not square.
pub fn invert(m: &Matrix) -> Option<Matrix> {
    let n = m.rows();
    assert_eq!(n, m.cols(), "invert: matrix not square");
    if n == 0 {
        return Some(Matrix::zeros(0, 0));
    }
    // Scale for a relative singularity test.
    let max_abs = m.as_slice().iter().fold(0.0f64, |a, &x| a.max(x.abs()));
    if max_abs == 0.0 {
        return None;
    }
    let mut a = m.clone();
    let mut inv = Matrix::identity(n);
    for col in 0..n {
        // Partial pivot: the largest |entry| in this column at/below the diagonal.
        let pivot_row = (col..n)
            .max_by(|&i, &j| a[(i, col)].abs().total_cmp(&a[(j, col)].abs()))
            .expect("non-empty range");
        let pivot = a[(pivot_row, col)];
        if pivot.abs() < SINGULARITY_EPS * max_abs {
            return None;
        }
        if pivot_row != col {
            swap_rows(&mut a, pivot_row, col);
            swap_rows(&mut inv, pivot_row, col);
        }
        let inv_pivot = 1.0 / a[(col, col)];
        for j in 0..n {
            a[(col, j)] *= inv_pivot;
            inv[(col, j)] *= inv_pivot;
        }
        for i in 0..n {
            if i == col {
                continue;
            }
            let f = a[(i, col)];
            if f == 0.0 {
                continue;
            }
            for j in 0..n {
                let (av, iv) = (a[(col, j)], inv[(col, j)]);
                a[(i, j)] -= f * av;
                inv[(i, j)] -= f * iv;
            }
        }
    }
    Some(inv)
}

fn swap_rows(m: &mut Matrix, i: usize, j: usize) {
    if i == j {
        return;
    }
    for c in 0..m.cols() {
        let t = m[(i, c)];
        m[(i, c)] = m[(j, c)];
        m[(j, c)] = t;
    }
}

/// Solve `A x = b` for square `A`. Returns `None` when `A` is singular.
pub fn solve(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    Some(invert(a)?.matvec(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: &Matrix, b: &Matrix, eps: f64) -> bool {
        a.rows() == b.rows()
            && a.cols() == b.cols()
            && a.as_slice().iter().zip(b.as_slice()).all(|(x, y)| (x - y).abs() < eps)
    }

    #[test]
    fn invert_known_2x2() {
        let a = Matrix::from_vec(2, 2, vec![4.0, 7.0, 2.0, 6.0]);
        let inv = invert(&a).unwrap();
        let expected = Matrix::from_vec(2, 2, vec![0.6, -0.7, -0.2, 0.4]);
        assert!(approx_eq(&inv, &expected, 1e-12));
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_vec(3, 3, vec![2.0, -1.0, 0.0, -1.0, 2.0, -1.0, 0.0, -1.0, 2.0]);
        let inv = invert(&a).unwrap();
        assert!(approx_eq(&a.matmul(&inv), &Matrix::identity(3), 1e-10));
    }

    #[test]
    fn singular_matrix_returns_none() {
        // Rank-1 matrix.
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(invert(&a).is_none());
    }

    #[test]
    fn zero_matrix_returns_none() {
        assert!(invert(&Matrix::zeros(3, 3)).is_none());
    }

    #[test]
    fn solve_known_system() {
        // x + y = 3; x - y = 1  =>  x = 2, y = 1.
        let a = Matrix::from_vec(2, 2, vec![1.0, 1.0, 1.0, -1.0]);
        let x = solve(&a, &[3.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let inv = invert(&a).unwrap();
        assert!(approx_eq(&inv, &a, 1e-12)); // a permutation matrix is its own inverse
    }
}
