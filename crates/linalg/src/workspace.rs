//! Per-thread scratch-buffer pool for the encoder hot path.
//!
//! PR-3's kernels allocate fresh `Vec`s for every repack panel, attention
//! score block and softmax row. Those allocations are short-lived and
//! identically sized from one encode to the next, so after warmup every
//! one of them is pure allocator overhead (plus page-fault noise on the
//! first touch). This module gives each thread a small free-list of
//! reusable buffers:
//!
//! - [`take_f64`] / [`give_f64`] — zeroed `f64` scratch (score blocks,
//!   repack panels, softmax rows, embedding accumulators).
//! - [`take_bool`] / [`give_bool`], [`take_u32`] / [`give_u32`] — mask
//!   and index scratch for the attention layer.
//! - [`recycle_matrix`] — return a consumed [`Matrix`]'s capacity to the
//!   pool (the encoder recycles its per-layer intermediates).
//!
//! ## Lifecycle
//!
//! The pool is a `thread_local!`, so worker threads in the runtime pool
//! each own one and there is no cross-thread synchronization on the hot
//! path. Buffers are returned *cleared* of logical length but keep their
//! capacity; `take_*` zero-fills to the requested length (`resize` after
//! `clear`), so callers always observe freshly zeroed scratch — the same
//! contract `vec![0.0; n]` gave them. A buffer whose capacity cannot
//! satisfy a request grows once and then stabilizes; steady state does
//! zero heap allocations (asserted by `tests/zero_alloc.rs`).
//!
//! The pool holds at most [`MAX_POOL_BYTES`] per thread (drops the
//! smallest buffers first beyond that) and at most [`MAX_POOL_BUFS`]
//! buffers per type, so pathological shapes cannot pin unbounded memory.
//! [`stats`] exposes hit/miss/held-byte counters for the CLI footer.

use crate::matrix::Matrix;
use std::cell::RefCell;

/// Per-thread cap on pooled bytes (sum across all free-lists).
pub const MAX_POOL_BYTES: usize = 32 << 20; // 32 MiB
/// Per-type cap on the number of pooled buffers.
pub const MAX_POOL_BUFS: usize = 64;

#[derive(Default)]
struct Pool {
    f64s: Vec<Vec<f64>>,
    bools: Vec<Vec<bool>>,
    u32s: Vec<Vec<u32>>,
    held_bytes: usize,
    hits: u64,
    misses: u64,
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::default());
}

/// Snapshot of this thread's pool counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkspaceStats {
    /// `take_*` calls served from a pooled buffer with enough capacity.
    pub hits: u64,
    /// `take_*` calls that had to allocate or grow.
    pub misses: u64,
    /// Bytes currently parked in this thread's free-lists.
    pub held_bytes: usize,
    /// Number of parked buffers across all types.
    pub held_bufs: usize,
}

/// Read this thread's pool counters (for footers / debugging).
pub fn stats() -> WorkspaceStats {
    POOL.with(|p| {
        let p = p.borrow();
        WorkspaceStats {
            hits: p.hits,
            misses: p.misses,
            held_bytes: p.held_bytes,
            held_bufs: p.f64s.len() + p.bools.len() + p.u32s.len(),
        }
    })
}

/// Drop every pooled buffer on this thread (tests; not needed in
/// production — threads reclaim everything at exit).
pub fn clear() {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.f64s.clear();
        p.bools.clear();
        p.u32s.clear();
        p.held_bytes = 0;
    });
}

macro_rules! take_give {
    ($take:ident, $give:ident, $field:ident, $ty:ty, $zero:expr, $doc:literal) => {
        #[doc = concat!("Take a zero-filled `Vec<", stringify!($ty), ">` of length `len` ", $doc)]
        pub fn $take(len: usize) -> Vec<$ty> {
            POOL.with(|p| {
                let mut p = p.borrow_mut();
                // Best-fit: smallest pooled buffer whose capacity suffices
                // (keeps big panels available for big requests).
                let mut best: Option<(usize, usize)> = None;
                for (i, v) in p.$field.iter().enumerate() {
                    let cap = v.capacity();
                    if cap >= len && best.is_none_or(|(_, bc)| cap < bc) {
                        best = Some((i, cap));
                    }
                }
                match best {
                    Some((i, cap)) => {
                        let mut v = p.$field.swap_remove(i);
                        p.held_bytes -= cap * std::mem::size_of::<$ty>();
                        p.hits += 1;
                        v.clear();
                        v.resize(len, $zero);
                        v
                    }
                    None => {
                        p.misses += 1;
                        // Reuse the largest pooled buffer anyway if one
                        // exists (grow it once) rather than allocating a
                        // brand-new Vec alongside parked capacity.
                        if let Some(v0) = p.$field.pop() {
                            p.held_bytes -= v0.capacity() * std::mem::size_of::<$ty>();
                            let mut v = v0;
                            v.clear();
                            v.resize(len, $zero);
                            v
                        } else {
                            vec![$zero; len]
                        }
                    }
                }
            })
        }

        /// Return a buffer to this thread's pool (capacity is kept; the
        /// buffer is dropped instead if the pool is at its byte or count
        /// cap).
        pub fn $give(v: Vec<$ty>) {
            let bytes = v.capacity() * std::mem::size_of::<$ty>();
            if bytes == 0 {
                return;
            }
            POOL.with(|p| {
                let mut p = p.borrow_mut();
                if p.$field.len() >= MAX_POOL_BUFS || p.held_bytes + bytes > MAX_POOL_BYTES {
                    return; // drop: caps exceeded
                }
                p.held_bytes += bytes;
                p.$field.push(v);
            });
        }
    };
}

take_give!(take_f64, give_f64, f64s, f64, 0.0, "from this thread's pool.");
take_give!(take_bool, give_bool, bools, bool, false, "from this thread's pool.");
take_give!(take_u32, give_u32, u32s, u32, 0u32, "from this thread's pool.");

/// Recycle a consumed [`Matrix`]'s backing buffer into the pool.
pub fn recycle_matrix(m: Matrix) {
    give_f64(m.into_vec());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zeroed_and_reuses_capacity() {
        clear();
        let mut v = take_f64(16);
        assert!(v.iter().all(|&x| x == 0.0));
        v[3] = 7.0;
        let cap = v.capacity();
        let ptr = v.as_ptr();
        give_f64(v);
        let v2 = take_f64(10);
        assert_eq!(v2.len(), 10);
        assert!(v2.iter().all(|&x| x == 0.0), "recycled buffer must be re-zeroed");
        assert_eq!(v2.as_ptr(), ptr, "same allocation must be reused");
        assert!(v2.capacity() >= cap);
        give_f64(v2);
        clear();
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient() {
        clear();
        give_f64(Vec::with_capacity(100));
        give_f64(Vec::with_capacity(10));
        let v = take_f64(8);
        assert!(v.capacity() < 100, "should pick the 10-cap buffer, got {}", v.capacity());
        give_f64(v);
        clear();
    }

    #[test]
    fn stats_count_hits_and_misses() {
        clear();
        let base = stats();
        let v = take_f64(4); // miss (empty pool)
        give_f64(v);
        let v = take_f64(4); // hit
        give_f64(v);
        let s = stats();
        assert_eq!(s.misses - base.misses, 1);
        assert_eq!(s.hits - base.hits, 1);
        assert!(s.held_bytes > 0);
        clear();
    }

    #[test]
    fn byte_cap_drops_excess() {
        clear();
        give_f64(vec![0.0; MAX_POOL_BYTES / 8]); // fills the cap exactly
        let before = stats().held_bufs;
        give_f64(vec![0.0; 1024]); // would exceed: dropped
        assert_eq!(stats().held_bufs, before);
        clear();
    }

    #[test]
    fn matrix_recycling_round_trip() {
        clear();
        let m = Matrix::zeros(4, 4);
        recycle_matrix(m);
        let v = take_f64(16);
        assert_eq!(v.len(), 16);
        give_f64(v);
        clear();
    }
}
