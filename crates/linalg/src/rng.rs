//! Deterministic pseudo-random generation for reproducible "pretrained"
//! weights.
//!
//! Observatory substitutes HuggingFace checkpoints with seeded synthetic
//! weights (see DESIGN.md §1). Reproducibility across runs, platforms and
//! dependency versions is therefore part of the *contract*: the same model
//! name must always produce the same embedding space. We implement
//! `SplitMix64` (a well-known 64-bit mixer with provably full period)
//! rather than relying on an external RNG whose stream could change between
//! crate versions.

/// A `SplitMix64` pseudo-random generator.
///
/// Fast, tiny state, full 2⁶⁴ period; statistically strong enough for
/// weight initialization and sampling decisions (we never use it for
/// cryptography).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derive a generator from a string label (e.g. a model name), so that
    /// each model gets an independent, stable stream.
    pub fn from_label(label: &str) -> Self {
        // FNV-1a, then one SplitMix64 round to spread low-entropy labels.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut rng = Self::new(h);
        rng.next_u64();
        rng
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` via rejection-free multiply-shift.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "next_below: zero bound");
        // 128-bit multiply-shift: negligible bias for bound « 2^64.
        ((u128::from(self.next_u64()) * bound as u128) >> 64) as usize
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn next_normal(&mut self) -> f64 {
        // u1 in (0, 1] so that ln(u1) is finite.
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn next_normal_with(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.next_normal()
    }

    /// Fisher–Yates shuffle of a slice, in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `0..n` (reservoir-free partial
    /// Fisher–Yates). If `k >= n`, returns a full permutation of `0..n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        let k = k.min(n);
        for i in 0..k {
            let j = i + self.next_below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn label_derivation_is_stable_and_distinct() {
        let x = SplitMix64::from_label("bert").next_u64();
        let y = SplitMix64::from_label("bert").next_u64();
        let z = SplitMix64::from_label("t5").next_u64();
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_in_range() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(rng.next_below(13) < 13);
        }
    }

    #[test]
    fn normal_moments_roughly_standard() {
        let mut rng = SplitMix64::new(123);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.next_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let mut rng = SplitMix64::new(9);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = SplitMix64::new(11);
        let s = rng.sample_indices(100, 20);
        assert_eq!(s.len(), 20);
        let mut t = s.clone();
        t.sort_unstable();
        t.dedup();
        assert_eq!(t.len(), 20);
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_indices_k_ge_n_is_permutation() {
        let mut rng = SplitMix64::new(11);
        let mut s = rng.sample_indices(5, 99);
        s.sort_unstable();
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
    }
}
