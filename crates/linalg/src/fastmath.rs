//! Branch-light, vectorizable transcendental approximations for the
//! encoder kernels.
//!
//! Profiling the scalar encoder shows `libm` transcendentals dominating
//! both halves of a layer: `exp` is ~40% of attention (the softmax over
//! `n_heads · n` rows of `n` logits) and `tanh` is ~35% of the GELU
//! feed-forward. Both libm calls are precise to < 1 ULP but are opaque
//! function calls the optimizer can neither inline nor vectorize.
//!
//! The replacements here are classic range-reduction + polynomial
//! evaluations written as straight-line arithmetic (no data-dependent
//! branches, no table lookups), so the compiler can inline them into the
//! kernels' loops and auto-vectorize. They are **not** substitutes for
//! `f64::exp`/`f64::tanh` in general numeric code:
//!
//! - [`exp_approx`] is specified on `[-∞, 709]` with a **flush-to-zero
//!   cutoff**: any input below ≈ -708 (including `-∞`, and `NaN` after
//!   the kernels' NaN-saturation) returns exactly `0.0`. This is the
//!   contract softmax needs — masked (`-∞`) logits must contribute *no*
//!   mass, bit-exactly — and it is the only deliberate deviation from
//!   `f64::exp` beyond rounding.
//! - Relative error is bounded and *regression-tested* (see module
//!   tests): ≤ 1e-14 vs `f64::exp` over the full reduced domain, in
//!   practice ≤ ~5e-15. DESIGN.md §9 documents how this ULP bound
//!   surfaces in the kernel-vs-reference equivalence tests.
//!
//! Determinism is unaffected: every approximation is a fixed sequence of
//! IEEE-754 double operations, so identical inputs give identical bits on
//! every run and at every `--jobs` count.

/// Inputs below this return exactly `0.0` from [`exp_approx`].
/// `exp(-708) ≈ 3.3e-308` is the edge of the normal range; anything
/// smaller cannot influence a softmax normalization.
pub const EXP_FLUSH_CUTOFF: f64 = -708.0;

/// `2^52 · 1.5`: adding then subtracting this constant rounds a `f64`
/// with magnitude < 2^51 to the nearest integer using pure FP ops (no
/// `round()` libcall, no SSE4.1 requirement).
const SHIFT: f64 = 6_755_399_441_055_744.0;

/// `ln 2` split hi/lo so `n · LN2_HI` is exact for |n| ≤ 1100. The
/// literals keep their full derivation digits (they round to the
/// intended bit patterns; clippy would truncate the documentation away).
#[allow(clippy::excessive_precision)]
const LN2_HI: f64 = 6.931_471_803_691_238_164_9e-1;
#[allow(clippy::excessive_precision)]
const LN2_LO: f64 = 1.908_214_929_270_587_700_0e-10;

/// Polynomial `exp` with a flush-to-zero cutoff.
///
/// Domain: `x ∈ [-∞, 709]`; larger inputs are clamped to `709` (≈ the
/// overflow edge). `x < `[`EXP_FLUSH_CUTOFF`] — including `-∞` — and
/// `NaN` return exactly `0.0` (the kernels saturate NaN logits to `-∞`
/// before exponentiation, so NaN-as-zero matches that contract).
///
/// Relative error vs `f64::exp` ≤ 1e-14 (tested at ≤ ~5e-15).
///
/// Method: `x = n·ln2 + r` with `|r| ≤ ln2/2`, `e^r` by a degree-13
/// Taylor polynomial (truncation ≈ 4e-18), scaled by `2^n` via exponent
/// bit assembly. All steps are branchless FP/integer ops — the flush is
/// a `0.0/1.0` multiplicative factor, not a select — so the function
/// auto-vectorizes when inlined into a softmax row loop.
#[inline]
#[allow(clippy::manual_clamp)] // `clamp` propagates NaN; `max.min` maps NaN in-domain, which the flush relies on
pub fn exp_approx(x: f64) -> f64 {
    // NaN and the deep-underflow tail flush to an exact zero. `keep` is
    // a 0.0/1.0 factor instead of a late select so the whole function is
    // straight-line FP ops; `f64::max` ignores a NaN operand, so `xc` is
    // always finite and in-domain even for NaN input.
    let keep = (x >= EXP_FLUSH_CUTOFF) as u8 as f64;
    let xc = x.max(EXP_FLUSH_CUTOFF).min(709.0);
    // n = round(x / ln 2) via the shift trick; the rounded integer also
    // sits in the low mantissa bits of `shifted`.
    let shifted = xc * std::f64::consts::LOG2_E + SHIFT;
    let nf = shifted - SHIFT;
    let r = (xc - nf * LN2_HI) - nf * LN2_LO;
    // Degree-13 Taylor for e^r on |r| ≤ ln2/2 (coefficients are
    // reciprocal factorials), evaluated Estrin-style: the dependency
    // chain is ~4 multiply-adds deep instead of Horner's 13, which is
    // what lets out-of-order execution overlap neighbouring softmax
    // lanes (Horner made the fast exp no faster than libm).
    let r2 = r * r;
    let r4 = r2 * r2;
    let r8 = r4 * r4;
    let q0 = 1.0 + r; // c0 + c1·r
    let q1 = 5.0e-1 + 1.666_666_666_666_666_6e-1 * r;
    let q2 = 4.166_666_666_666_666_4e-2 + 8.333_333_333_333_333e-3 * r;
    let q3 = 1.388_888_888_888_889e-3 + 1.984_126_984_126_984e-4 * r;
    let q4 = 2.480_158_730_158_73e-5 + 2.755_731_922_398_589e-6 * r;
    let q5 = 2.755_731_922_398_589e-7 + 2.505_210_838_544_172e-8 * r;
    let q6 = 2.087_675_698_786_81e-9 + 1.605_904_383_682_161_5e-10 * r;
    let p = (q0 + q1 * r2) + (q2 + q3 * r2) * r4 + ((q4 + q5 * r2) + q6 * r4) * r8;
    // 2^n assembled directly into the exponent field. n ∈ [-1022, 1023]
    // for the clamped domain, so the biased exponent stays normal.
    let n = shifted.to_bits() as u32 as i32;
    let scale = f64::from_bits(((1023 + n as i64) as u64) << 52);
    // `p * scale` is finite on the clamped domain, so `* keep` yields an
    // exact `0.0` (not NaN) for flushed inputs.
    p * scale * keep
}

/// Fast `tanh` via [`exp_approx`]: `tanh(x) = sign(x)·(1-e)/(1+e)` with
/// `e = exp(-2|x|) ∈ (0, 1]` — the argument of the inner `exp` is always
/// non-positive, exactly the domain `exp_approx` is specified on. Small
/// inputs (`|x| < 0.05`, where `1-e` would cancel) use the odd Taylor
/// series instead. Saturates to `±1.0` for `|x| ≳ 354`. Finite inputs
/// only.
#[inline]
#[allow(clippy::excessive_precision)] // Taylor coefficients keep derivation digits
pub fn tanh_approx(x: f64) -> f64 {
    let ax = x.abs();
    if ax < 0.05 {
        // tanh x = x - x³/3 + 2x⁵/15 - 17x⁷/315 + 62x⁹/2835 + O(x¹¹);
        // the truncated term is < 1e-15 relative at |x| = 0.05.
        let x2 = x * x;
        return x
            * (1.0
                + x2 * (-3.333_333_333_333_333_3e-1
                    + x2 * (1.333_333_333_333_333_3e-1
                        + x2 * (-5.396_825_396_825_397e-2 + x2 * 2.186_948_853_615_52e-2))));
    }
    let e = exp_approx(-2.0 * ax);
    ((1.0 - e) / (1.0 + e)).copysign(x)
}

/// Fast GELU (tanh form), algebraically rearranged so the negative tail
/// never cancels: with `t = √(2/π)·(x + 0.044715·x³)` and
/// `e = exp(-2|t|)`,
///
/// ```text
/// gelu(x) = 0.5·x·(1 + tanh t) = x · (t ≥ 0 ? 1 : e) / (1 + e)
/// ```
///
/// The `1 + tanh t` form loses all precision for `t ≪ 0` (tanh → -1);
/// this form keeps full relative precision on both tails. Agrees with
/// the reference [`crate::kernels::gelu`] to ≤ 1e-13 relative (tested),
/// the bound coming from [`exp_approx`].
#[inline]
pub fn gelu_approx(x: f64) -> f64 {
    const C: f64 = 0.797_884_560_802_865_4; // sqrt(2/pi)
    let t = C * (x + 0.044_715 * x * x * x);
    let e = exp_approx(-2.0 * t.abs());
    let num = if t >= 0.0 { 1.0 } else { e };
    x * num / (1.0 + e)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_err(got: f64, want: f64) -> f64 {
        if want == 0.0 {
            got.abs()
        } else {
            ((got - want) / want).abs()
        }
    }

    #[test]
    fn exp_matches_libm_within_bound() {
        // Dense sweep over the softmax-relevant range plus the positive
        // side up to the overflow edge.
        let mut worst = 0.0f64;
        let mut x = -700.0;
        while x < 700.0 {
            let e = rel_err(exp_approx(x), x.exp());
            worst = worst.max(e);
            x += 0.000_7 * x.abs().max(1.0);
        }
        assert!(worst <= 1e-14, "exp_approx worst relative error {worst:e} > 1e-14");
    }

    #[test]
    fn exp_flushes_dead_inputs_to_exact_zero() {
        assert_eq!(exp_approx(f64::NEG_INFINITY), 0.0);
        assert_eq!(exp_approx(-1.0e9), 0.0);
        assert_eq!(exp_approx(-709.0), 0.0);
        assert_eq!(exp_approx(f64::NAN), 0.0, "NaN = saturated -inf logit");
        assert!(exp_approx(-707.9) > 0.0, "just above cutoff stays positive");
    }

    #[test]
    fn exp_fixed_points() {
        assert_eq!(exp_approx(0.0), 1.0);
        assert!(rel_err(exp_approx(1.0), std::f64::consts::E) < 1e-15);
        assert!(exp_approx(709.5).is_finite(), "clamped, never overflows to inf");
    }

    #[test]
    fn tanh_matches_libm_within_bound() {
        let mut worst = 0.0f64;
        let mut x = -30.0;
        while x < 30.0 {
            worst = worst.max(rel_err(tanh_approx(x), x.tanh()));
            x += 0.003;
        }
        assert!(worst <= 1e-13, "tanh_approx worst relative error {worst:e}");
        assert_eq!(tanh_approx(0.0), 0.0);
        assert_eq!(tanh_approx(400.0), 1.0);
        assert_eq!(tanh_approx(-400.0), -1.0);
    }

    #[test]
    fn gelu_matches_reference_within_bound() {
        let mut x = -25.0;
        while x < 25.0 {
            let got = gelu_approx(x);
            let want = crate::kernels::gelu(x);
            let err = (got - want).abs() / want.abs().max(1.0);
            assert!(err <= 1e-13, "gelu_approx({x}) = {got}, reference {want}, err {err:e}");
            x += 0.01;
        }
        assert_eq!(gelu_approx(0.0), 0.0);
    }
}
